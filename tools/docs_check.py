#!/usr/bin/env python3
"""Docs gate — relative links, heading anchors, and executable snippets.

CI's ``docs`` job runs this over ``README.md`` and every ``docs/*.md``:

* **links** — every relative markdown link (``[text](path)`` /
  ``[text](path#anchor)``) must point at a file that exists, and an
  anchored link must name a heading that actually slugifies to that
  anchor (GitHub's rules: lowercase, punctuation stripped, spaces to
  hyphens);
* **index** — every ``docs/*.md`` page must be linked from the
  documentation map in ``docs/architecture.md``; an orphan page is a
  page nobody can discover, so it fails the gate;
* **snippets** — fenced ``sh`` blocks in ``docs/tutorial.md`` are
  *executed*: every line starting with ``repro `` runs in-process
  through :func:`repro.cli.main` and must exit 0, so the tutorial's CLI
  examples can never drift from the CLI itself.

Fenced code blocks and inline code spans are stripped before link
extraction — ``[ln = "Clancy"]`` is a query, not a link.

Run it locally::

    PYTHONPATH=src python tools/docs_check.py
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import re
import shlex
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
SNIPPET_FILES = [REPO / "docs" / "tutorial.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")

#: Schemes (and pseudo-targets) the checker does not follow.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def strip_fenced(text: str) -> list[str]:
    """The document's lines with fenced code blocks blanked out."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def strip_inline_code(line: str) -> str:
    return re.sub(r"`[^`]*`", "``", line)


def _rel(path: pathlib.Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:  # test fixtures live outside the repo
        return str(path)


def slugify(heading: str) -> str:
    """GitHub-style anchor for a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep their text
    # Render links as their text before slugifying.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"[\s]+", "-", text)


def anchors_of(path: pathlib.Path) -> set[str]:
    anchors: set[str] = set()
    for line in strip_fenced(path.read_text(encoding="utf-8")):
        match = HEADING_RE.match(line)
        if match:
            slug = slugify(match.group(2))
            if slug in anchors:  # GitHub dedupes with -1, -2, ...
                n = 1
                while f"{slug}-{n}" in anchors:
                    n += 1
                slug = f"{slug}-{n}"
            anchors.add(slug)
    return anchors


def check_links(path: pathlib.Path) -> list[str]:
    problems = []
    for lineno, line in enumerate(
        strip_fenced(path.read_text(encoding="utf-8")), start=1
    ):
        for target in LINK_RE.findall(strip_inline_code(line)):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                if target.startswith("#") and target[1:] not in anchors_of(path):
                    problems.append(
                        f"{_rel(path)}:{lineno}: broken anchor {target!r}"
                    )
                continue
            file_part, _, anchor = target.partition("#")
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{_rel(path)}:{lineno}: "
                    f"broken link {target!r} ({file_part} does not exist)"
                )
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in anchors_of(resolved):
                    problems.append(
                        f"{_rel(path)}:{lineno}: broken anchor "
                        f"{target!r} (no heading slugifies to {anchor!r})"
                    )
    return problems


def check_doc_index() -> list[str]:
    """Every docs page must appear in architecture.md's doc index.

    The index is the ``## Documentation map`` table; a page missing from
    it is an orphan — reachable only by someone who already knows it
    exists — and the gate treats that as documentation drift.
    """
    index_page = REPO / "docs" / "architecture.md"
    if not index_page.exists():
        return ["missing documentation index: docs/architecture.md"]
    indexed: set[str] = set()
    for line in strip_fenced(index_page.read_text(encoding="utf-8")):
        for target in LINK_RE.findall(strip_inline_code(line)):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.partition("#")[0]
            indexed.add((index_page.parent / file_part).resolve().name)
    return [
        f"docs/{page.name}: orphan page — not linked from "
        "docs/architecture.md's documentation map"
        for page in sorted((REPO / "docs").glob("*.md"))
        if page.name != "architecture.md" and page.name not in indexed
    ]


def snippet_commands(path: pathlib.Path) -> list[str]:
    """``repro ...`` lines inside the file's fenced ``sh`` blocks."""
    commands, in_sh = [], False
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if FENCE_RE.match(stripped):
            in_sh = stripped in ("```sh", "```bash") and not in_sh
            continue
        if in_sh and stripped.startswith("repro "):
            commands.append(stripped)
    return commands


def run_snippets(path: pathlib.Path) -> list[str]:
    sys.path.insert(0, str(REPO / "src"))
    from repro.cli import main as cli_main

    problems = []
    for command in snippet_commands(path):
        argv = shlex.split(command)[1:]
        out = io.StringIO()
        try:
            with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
                code = cli_main(argv)
        except SystemExit as exc:
            code = exc.code if isinstance(exc.code, int) else 1
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            problems.append(
                f"{_rel(path)}: snippet crashed: {command!r} ({exc!r})"
            )
            continue
        if code not in (0, None):
            tail = "\n".join(out.getvalue().splitlines()[-3:])
            problems.append(
                f"{_rel(path)}: snippet exited {code}: "
                f"{command!r}\n      {tail}"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    checked_links = 0
    for path in DOC_FILES:
        if not path.exists():
            problems.append(f"missing documentation file: {_rel(path)}")
            continue
        found = check_links(path)
        problems.extend(found)
        checked_links += sum(
            1
            for line in strip_fenced(path.read_text(encoding="utf-8"))
            for _ in LINK_RE.findall(strip_inline_code(line))
        )
    problems.extend(check_doc_index())
    executed = 0
    for path in SNIPPET_FILES:
        commands = snippet_commands(path)
        executed += len(commands)
        problems.extend(run_snippets(path))

    if problems:
        print(f"docs-check: FAIL ({len(problems)} problem(s)):", file=sys.stderr)
        for message in problems:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print(
        f"docs-check: OK ({len(DOC_FILES)} files, {checked_links} links, "
        f"{executed} executed snippets)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
