#!/usr/bin/env python3
"""Benchmark regression gate — diff BENCH_*.json against committed baselines.

CI's ``bench`` job runs the pinned quick-mode bench subset (which writes
``benchmarks/results/BENCH_*.json``) and then this gate, which compares
every trajectory against its committed twin in
``benchmarks/results/baseline/``:

* **latency fields** (any numeric field named ``seconds`` or ending in
  ``_seconds``): the median across the file's points must not exceed the
  baseline median by more than ``--threshold`` (default 25%).  An
  absolute floor (default 1 ms) suppresses noise on sub-millisecond
  medians — a 0.1ms -> 0.14ms wobble on a shared runner is not a
  regression.
* **speedup fields** (``speedup`` / ``*_speedup``): the median must not
  drop below ``threshold``'s mirror image (base x 0.75 by default) —
  this is what catches "the cache stopped hitting" even when absolute
  latencies drift together.

A baseline with no matching result fails (a bench silently disappeared);
a result with no baseline is reported but passes (a new bench — refresh
the baselines to start gating it).

Refreshing baselines (after an intentional perf change)::

    REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_scm_scaling.py \
        benchmarks/bench_tdqm_vs_dnf.py benchmarks/bench_mediator.py \
        benchmarks/bench_cache.py --benchmark-disable -q
    python tools/bench_gate.py --update-baseline
    git add benchmarks/results/baseline/

See docs/performance.md for the full procedure and field semantics.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import statistics
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO / "benchmarks" / "results"
BASELINE_DIR = RESULTS_DIR / "baseline"

#: Sub-millisecond medians wobble on shared runners; ignore deltas below this.
DEFAULT_ABS_FLOOR = 0.001  # seconds


def _is_latency_field(name: str) -> bool:
    return name == "seconds" or name.endswith("_seconds")


def _is_speedup_field(name: str) -> bool:
    return name == "speedup" or name.endswith("_speedup")


def _field_medians(payload: dict) -> dict[str, float]:
    """Median per gated numeric field across a trajectory's points."""
    series: dict[str, list[float]] = {}
    for point in payload.get("points", []):
        for name, value in point.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if _is_latency_field(name) or _is_speedup_field(name):
                series.setdefault(name, []).append(float(value))
    return {name: statistics.median(values) for name, values in series.items()}


def _load(path: pathlib.Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def compare_file(
    baseline: pathlib.Path,
    result: pathlib.Path,
    threshold: float,
    abs_floor: float,
) -> list[str]:
    """Human-readable failure messages for one baseline/result pair."""
    base = _field_medians(_load(baseline))
    new = _field_medians(_load(result))
    failures = []
    for name, base_value in sorted(base.items()):
        if name not in new:
            failures.append(f"{result.name}: field {name!r} vanished from results")
            continue
        new_value = new[name]
        if _is_latency_field(name):
            limit = base_value * (1.0 + threshold)
            if new_value > limit and (new_value - base_value) > abs_floor:
                failures.append(
                    f"{result.name}: {name} regressed "
                    f"{base_value * 1e3:.3f}ms -> {new_value * 1e3:.3f}ms "
                    f"(+{(new_value / base_value - 1) * 100:.0f}%, "
                    f"limit +{threshold * 100:.0f}%)"
                )
        else:  # speedup: lower is worse
            limit = base_value * (1.0 - threshold)
            if new_value < limit:
                failures.append(
                    f"{result.name}: {name} dropped "
                    f"{base_value:.2f}x -> {new_value:.2f}x "
                    f"(limit {limit:.2f}x)"
                )
    return failures


def update_baseline() -> int:
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    copied = 0
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        shutil.copy2(path, BASELINE_DIR / path.name)
        copied += 1
    print(f"bench-gate: baseline refreshed from {copied} BENCH_*.json file(s)")
    return 0 if copied else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression (0.25 = 25%%)",
    )
    parser.add_argument(
        "--abs-floor",
        type=float,
        default=DEFAULT_ABS_FLOOR,
        help="ignore latency deltas smaller than this many seconds",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy current BENCH_*.json results over the baselines and exit",
    )
    args = parser.parse_args(argv)

    if args.update_baseline:
        return update_baseline()

    baselines = sorted(BASELINE_DIR.glob("BENCH_*.json"))
    if not baselines:
        print(
            f"bench-gate: no baselines in {BASELINE_DIR}; "
            "run with --update-baseline first",
            file=sys.stderr,
        )
        return 1

    failures: list[str] = []
    compared = 0
    for baseline in baselines:
        result = RESULTS_DIR / baseline.name
        if not result.exists():
            failures.append(
                f"{baseline.name}: baseline exists but the bench run produced "
                "no result (bench removed or failed?)"
            )
            continue
        compared += 1
        failures.extend(
            compare_file(baseline, result, args.threshold, args.abs_floor)
        )

    baseline_names = {p.name for p in baselines}
    for result in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if result.name not in baseline_names:
            print(f"bench-gate: note: {result.name} has no baseline (not gated)")

    if failures:
        print(f"bench-gate: FAIL ({len(failures)} regression(s)):", file=sys.stderr)
        for message in failures:
            print(f"  - {message}", file=sys.stderr)
        print(
            "\nIf the change is intentional, refresh the baselines "
            "(see docs/performance.md):\n"
            "  python tools/bench_gate.py --update-baseline",
            file=sys.stderr,
        )
        return 1
    print(f"bench-gate: OK ({compared} trajectories within threshold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
