#!/usr/bin/env python
"""CI smoke check for continuous telemetry on a *real* server process.

Starts ``repro serve --tcp --metrics`` as a subprocess (ephemeral port),
drives a few requests over TCP, then exercises the admin ops the way an
operator would:

* ``health`` — must answer ``status: ok`` with the exact request count;
* ``slowlog`` — must rank the issued fingerprints;
* ``metrics`` (JSON) — counters/histograms must carry the exact totals;
* ``metrics`` (``format: prometheus``) — the text must parse cleanly
  with :func:`repro.obs.export.parse_prometheus` and reproduce the same
  numbers.

Exits non-zero with a diagnostic on any mismatch.  Run from the repo
root::

    PYTHONPATH=src python tools/metrics_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.export import parse_prometheus  # noqa: E402

QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '[ln = "Smith"]',
]


def fail(message: str) -> None:
    print(f"metrics-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "K_Amazon",
            "--tcp", "--port", "0", "--metrics",
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO,
    )
    try:
        banner = proc.stderr.readline().strip()
        if " on " not in banner:
            fail(f"unexpected serve banner: {banner!r}")
        address = banner.split(" on ")[1].split(" ")[0]
        host, _, port = address.rpartition(":")
        print(f"metrics-smoke: server up at {address} ({banner})")

        with socket.create_connection((host, int(port)), timeout=10.0) as conn:
            handle = conn.makefile("rw", encoding="utf-8")

            def ask(request: dict) -> dict:
                handle.write(json.dumps(request) + "\n")
                handle.flush()
                return json.loads(handle.readline())

            for query in QUERIES:
                response = ask({"op": "translate", "query": query})
                if not response.get("ok"):
                    fail(f"translate failed: {response}")
            response = ask({"op": "mediate", "query": QUERIES[0]})
            if not response.get("ok"):
                fail(f"mediate failed: {response}")
            total = len(QUERIES) + 1

            health = ask({"op": "health"})
            if not health.get("ok") or health["health"]["status"] != "ok":
                fail(f"health not ok: {health}")
            if health["health"]["requests"] != total:
                fail(f"health.requests != {total}: {health['health']}")

            slowlog = ask({"op": "slowlog", "n": 10})
            if not slowlog.get("ok"):
                fail(f"slowlog failed: {slowlog}")
            if sum(e["count"] for e in slowlog["slowlog"]) != total:
                fail(f"slowlog counts != {total}: {slowlog['slowlog']}")

            metrics = ask({"op": "metrics"})
            if not metrics.get("ok"):
                fail(f"metrics failed: {metrics}")
            snapshot = metrics["metrics"]
            if snapshot["counters"]["serve.requests"]["total"] != total:
                fail(f"serve.requests != {total}: {snapshot['counters']}")
            histogram = snapshot["histograms"]["serve.request.latency"]
            if histogram["count"] != total:
                fail(f"latency histogram count != {total}: {histogram}")
            if not histogram["p50"] <= histogram["p95"] <= histogram["p99"]:
                fail(f"percentiles not monotone: {histogram}")

            prometheus = ask({"op": "metrics", "format": "prometheus"})
            if not prometheus.get("ok"):
                fail(f"prometheus metrics failed: {prometheus}")
            try:
                samples = parse_prometheus(prometheus["text"])
            except ValueError as exc:
                fail(f"malformed Prometheus exposition: {exc}")
            if samples[("repro_serve_requests_total", ())] != total:
                fail("Prometheus serve.requests total mismatch")
            if samples[("repro_serve_request_latency_seconds_count", ())] != total:
                fail("Prometheus latency histogram count mismatch")
            source_keys = [k for k in samples if k[0] == "repro_source_calls_total"]
            if not source_keys:
                fail("no per-source scorecard series in Prometheus output")

        print(
            f"metrics-smoke: OK ({total} requests; "
            f"{len(samples)} Prometheus samples; "
            f"{len(source_keys)} source(s) on scorecards)"
        )
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=10.0)


if __name__ == "__main__":
    raise SystemExit(main())
