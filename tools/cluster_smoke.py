#!/usr/bin/env python
"""CI smoke check for the sharded cluster on a *real* server process.

Starts ``repro serve --processes 2 --tcp --metrics`` as a subprocess
(ephemeral port, snapshot dir in a tempdir), then exercises the cluster
the way an operator would:

* protocol ops — ``ping``/``translate``/``mediate`` answer over TCP and
  the aggregated ``stats``/``metrics`` carry the exact request totals;
* ``shards`` — both workers report alive with real pids;
* worker death — ``SIGKILL`` one worker by pid; every query must still
  answer via ring failover, ``health`` must degrade (not fail), and the
  front-end must account the death;
* rolling recovery — ``restart`` the dead shard; it must come back warm
  from its snapshot and ``health`` must return to ``ok``;
* hot reload — ``repro registry publish`` a spec variant, ``reload``
  it into the running cluster (no restart), observe the answers change;
  ``repro registry rollback`` + ``reload`` must restore the prior
  answers bit-identically;
* shutdown — ``SIGINT`` must stop the front-end cleanly (exit code 0)
  and leave no orphaned worker processes behind.

Exits non-zero with a diagnostic on any mismatch.  Run from the repo
root::

    PYTHONPATH=src python tools/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent

QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    '[ln = "Smith"]',
    '([ln = "King"] or [ln = "Koontz"]) and [pyear = 1996]',
]

#: The hot-reload probe and two K_Amazon variants that answer it
#: differently (``author-word`` vs plain ``author``).
RELOAD_QUERY = '[ln = "Clancy"]'

RELOAD_V1 = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author-word", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "smoke variant: ln -> author-word",
        }
    ],
}

RELOAD_V2 = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "smoke variant: ln -> author",
        }
    ],
}


def fail(message: str) -> None:
    print(f"cluster-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def wait_until(predicate, timeout: float = 15.0, what: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    fail(f"timed out after {timeout}s waiting for {what}")


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as snapshot_dir:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "K_Amazon",
                "--tcp", "--port", "0", "--processes", "2", "--metrics",
                "--snapshot-dir", snapshot_dir,
            ],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO,
        )
        try:
            banner = proc.stderr.readline().strip()
            if " on " not in banner or "2 worker processes" not in banner:
                fail(f"unexpected serve banner: {banner!r}")
            address = banner.split(" on ")[1].split(" ")[0]
            host, _, port = address.rpartition(":")
            print(f"cluster-smoke: cluster up at {address} ({banner})")

            with socket.create_connection((host, int(port)), timeout=15.0) as conn:
                handle = conn.makefile("rw", encoding="utf-8")

                def ask(request: dict) -> dict:
                    handle.write(json.dumps(request) + "\n")
                    handle.flush()
                    line = handle.readline()
                    if not line:
                        fail(f"connection dropped answering {request}")
                    return json.loads(line)

                if ask({"op": "ping"}).get("pong") is not True:
                    fail("ping did not pong")
                for query in QUERIES:
                    response = ask({"op": "translate", "query": query})
                    if not response.get("ok"):
                        fail(f"translate failed: {response}")
                response = ask({"op": "mediate", "query": QUERIES[0]})
                if not response.get("ok"):
                    fail(f"mediate failed: {response}")
                total = len(QUERIES) + 1

                # Exact aggregated accounting across both shards.
                stats = ask({"op": "stats"})["stats"]
                if stats["frontend"]["processes"] != 2:
                    fail(f"frontend.processes != 2: {stats['frontend']}")
                if stats["requests"] != total:
                    fail(f"aggregated requests != {total}: {stats['requests']}")
                shard_requests = [
                    entry["stats"]["requests"]
                    for entry in stats["shards"]
                    if "stats" in entry
                ]
                if len(shard_requests) != 2 or sum(shard_requests) != total:
                    fail(f"per-shard requests do not sum to {total}: {shard_requests}")

                metrics = ask({"op": "metrics"})
                if not metrics.get("ok"):
                    fail(f"metrics failed: {metrics}")
                counters = metrics["metrics"]["aggregated"]["counters"]
                if counters.get("serve.requests") != total:
                    fail(f"aggregated serve.requests != {total}: {counters}")

                shards = ask({"op": "shards"})["shards"]
                if [s["shard"] for s in shards] != [0, 1]:
                    fail(f"unexpected topology: {shards}")
                if not all(s["alive"] for s in shards):
                    fail(f"not all shards alive at start: {shards}")
                pids = {s["shard"]: s["pid"] for s in shards}

                # Persist the warm cache, then kill one worker outright.
                snapshot = ask({"op": "snapshot"})
                if not snapshot.get("ok"):
                    fail(f"snapshot failed: {snapshot}")
                victim = 0
                os.kill(pids[victim], signal.SIGKILL)
                # The pid lingers as a zombie until the front-end reaps
                # it, so wait for the cluster's own view of the death.
                wait_until(
                    lambda: not next(
                        s for s in ask({"op": "shards"})["shards"]
                        if s["shard"] == victim
                    )["alive"],
                    what=f"front-end to notice worker {pids[victim]} died",
                )

                # Graceful degradation: every query still answers, health
                # says degraded, and the death is accounted.
                for query in QUERIES:
                    response = ask({"op": "translate", "query": query})
                    if not response.get("ok"):
                        fail(f"translate failed after worker death: {response}")
                wait_until(
                    lambda: ask({"op": "health"})["health"]["status"] == "degraded",
                    what="health to report degraded",
                )
                stats = ask({"op": "stats"})["stats"]
                if stats["frontend"]["worker_deaths"] != 1:
                    fail(f"worker_deaths != 1: {stats['frontend']}")
                print(
                    f"cluster-smoke: worker {pids[victim]} killed; "
                    "cluster degraded but serving"
                )

                # Rolling recovery: the replacement restores its snapshot.
                restarted = ask({"op": "restart", "shard": victim})
                if not restarted.get("ok") or not restarted["restart"]["alive"]:
                    fail(f"restart failed: {restarted}")
                restored = restarted["restart"]["restored"]
                if not restored or restored.get("restored", 0) <= 0:
                    fail(f"replacement did not restore warm: {restarted}")
                if ask({"op": "health"})["health"]["status"] != "ok":
                    fail("health did not return to ok after restart")
                for query in QUERIES:
                    if not ask({"op": "translate", "query": query}).get("ok"):
                        fail(f"translate failed after restart: {query}")
                print(
                    f"cluster-smoke: shard {victim} restarted warm "
                    f"({restored['restored']} cached translations restored)"
                )

                # Hot reload through the registry lifecycle: publish a
                # variant, reload the live cluster, verify the answers
                # change with zero restarts, then rollback + reload and
                # verify the prior answers return bit-identically.
                registry_dir = pathlib.Path(snapshot_dir) / "registry"

                def registry_cli(*argv: str) -> None:
                    command = [
                        sys.executable, "-m", "repro", "registry", *argv,
                    ]
                    done = subprocess.run(
                        command, env=env, cwd=REPO, capture_output=True, text=True
                    )
                    if done.returncode != 0:
                        fail(f"{' '.join(argv)} exited {done.returncode}: "
                             f"{done.stderr.strip()}")

                def canonical_translate() -> str:
                    response = ask({"op": "translate", "query": RELOAD_QUERY})
                    if not response.get("ok"):
                        fail(f"translate failed during reload check: {response}")
                    return json.dumps(response, sort_keys=True)

                pids_before_reload = {
                    s["shard"]: s["pid"] for s in ask({"op": "shards"})["shards"]
                }
                v1_file = pathlib.Path(snapshot_dir) / "v1.json"
                v2_file = pathlib.Path(snapshot_dir) / "v2.json"
                v1_file.write_text(json.dumps(RELOAD_V1), encoding="utf-8")
                v2_file.write_text(json.dumps(RELOAD_V2), encoding="utf-8")

                registry_cli("publish", str(registry_dir), "-f", str(v1_file))
                reloaded = ask({"op": "reload", "registry": str(registry_dir)})
                if not reloaded.get("ok"):
                    fail(f"reload failed: {reloaded}")
                if len(reloaded["reload"]) != 2 or not all(
                    entry.get("ok") for entry in reloaded["reload"]
                ):
                    fail(f"not every shard reloaded: {reloaded}")
                v1_answer = canonical_translate()
                if "author-word" not in v1_answer:
                    fail(f"published spec not serving: {v1_answer}")

                registry_cli("publish", str(registry_dir), "-f", str(v2_file))
                if not ask({"op": "reload", "registry": str(registry_dir)}).get("ok"):
                    fail("second reload failed")
                v2_answer = canonical_translate()
                if v2_answer == v1_answer or "author-word" in v2_answer:
                    fail(f"second publish not serving: {v2_answer}")

                registry_cli("rollback", str(registry_dir), "K_Amazon")
                if not ask({"op": "reload", "registry": str(registry_dir)}).get("ok"):
                    fail("post-rollback reload failed")
                if canonical_translate() != v1_answer:
                    fail("rollback + reload did not restore the prior answers")

                pids_after_reload = {
                    s["shard"]: s["pid"] for s in ask({"op": "shards"})["shards"]
                }
                if pids_after_reload != pids_before_reload:
                    fail(
                        "reload restarted workers: "
                        f"{pids_before_reload} -> {pids_after_reload}"
                    )
                print(
                    "cluster-smoke: hot reload OK "
                    "(publish -> new answers, rollback -> prior answers, "
                    "same worker pids)"
                )

                shards = ask({"op": "shards"})["shards"]
                worker_pids = [s["pid"] for s in shards]

            # Operator shutdown: SIGINT stops the front-end cleanly and
            # reaps every worker (no orphans surviving the parent).
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=30.0)
            if code != 0:
                fail(f"serve exited {code} on SIGINT")
            wait_until(
                lambda: not any(pid_alive(pid) for pid in worker_pids),
                what="workers to exit with the front-end",
            )
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10.0)

    print(
        f"cluster-smoke: OK (2 shards, {total} initial requests, "
        "worker death + warm restart + hot reload/rollback + clean shutdown)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
