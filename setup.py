"""Setup shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` works on offline machines whose
setuptools predates bundled bdist_wheel (PEP 660 editable installs need the
separate ``wheel`` package there).
"""

from setuptools import setup

setup()
