"""Relational engine substrate: relations, evaluation, capabilities, sources."""

from repro.engine.capabilities import Capability
from repro.engine.eval import RowEnv, Virtual, evaluate, evaluate_row
from repro.engine.grammar import QueryGrammar, Wrapper
from repro.engine.relation import Relation
from repro.engine.source import Source
from repro.engine.sources_builtin import (
    DEFAULT_AUBIB,
    DEFAULT_BOOKS,
    DEFAULT_PAPERS,
    DEFAULT_POINTS,
    DEFAULT_PROF,
    MAP_MEDIATOR_VIRTUALS,
    make_amazon,
    make_clbooks,
    make_map_source,
    make_t1,
    make_t2,
)
from repro.engine.views import BaseRef, ViewDef

__all__ = [
    "Relation", "Source", "Capability", "QueryGrammar", "Wrapper",
    "RowEnv", "Virtual",
    "evaluate", "evaluate_row", "BaseRef", "ViewDef",
    "make_amazon", "make_clbooks", "make_t1", "make_t2", "make_map_source",
    "DEFAULT_BOOKS", "DEFAULT_PAPERS", "DEFAULT_AUBIB", "DEFAULT_PROF",
    "DEFAULT_POINTS", "MAP_MEDIATOR_VIRTUALS",
]
