"""Grammar-restricted native interfaces and the wrapper that drives them.

Section 3 contrasts vocabmap with capability-description frameworks
(QDTL, RQDL, CFG, ODL) whose templates capture *grammatic* restrictions:
"allowing conjunctions of two constraints, disallowing disjunctions,
etc.".  Those restrictions are real — web forms accept one value per
field, many APIs take only conjunctions — and they are orthogonal to the
vocabulary mapping this library is about.  This module adds them to the
simulated sources:

* :class:`QueryGrammar` — the template: may the native call contain
  disjunctions?  how many constraints at most?  which attributes *must*
  be bound (mandatory binding patterns, §3's related work)?
* :class:`Wrapper` — the paper's wrapper role (§2): given a translated
  query that conforms to the source's *vocabulary* but not its *grammar*,
  it splits disjunctions into several native calls, pushes the largest
  conforming prefix of each conjunction, and re-applies the full query
  locally (the wrapper runs at the source, so it can evaluate anything in
  the source's own vocabulary).  The combined result equals what an
  unrestricted source would return.

The wrapper's local re-check makes every compensation *sound*: dropping a
constraint from a native call only widens it, and the re-check narrows
the result back.  Result bags are de-duplicated across the per-disjunct
calls by tuple value, which is exact whenever the underlying relations
are duplicate-free (the simulated stores are).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.ast import And, BoolConst, Constraint, Or, Query, conj
from repro.core.dnf import dnf_terms
from repro.core.errors import CapabilityError
from repro.engine.eval import RowEnv, evaluate

__all__ = ["QueryGrammar", "Wrapper"]


@dataclass(frozen=True)
class QueryGrammar:
    """Native query-form restrictions (a QDTL/RQDL-style template).

    * ``allow_disjunction`` — may a native call contain ``OR``?
    * ``max_constraints`` — cap on constraints per native call
      (``None`` = unlimited);
    * ``required_attrs`` — attributes every native call must bind (a web
      form with a mandatory author field, the binding patterns of §3's
      related work).
    """

    allow_disjunction: bool = True
    max_constraints: int | None = None
    required_attrs: frozenset = frozenset()

    def violations(self, query: Query) -> list[str]:
        """Human-readable reasons the query doesn't fit the template."""
        problems: list[str] = []
        if not self.allow_disjunction and _has_disjunction(query):
            problems.append("native interface accepts no disjunctions")
        count = len(list(query.iter_constraints()))
        if self.max_constraints is not None and count > self.max_constraints:
            problems.append(
                f"native interface accepts at most {self.max_constraints} "
                f"constraints, got {count}"
            )
        bound = {c.lhs.attr for c in query.constraints()}
        missing = set(self.required_attrs) - bound
        if missing:
            problems.append(
                f"native interface requires bindings for {sorted(missing)}"
            )
        return problems

    def check(self, query: Query, target: str = "target") -> None:
        problems = self.violations(query)
        if problems:
            raise CapabilityError(f"{target}: " + "; ".join(problems))


def _has_disjunction(query: Query) -> bool:
    if isinstance(query, Or):
        return True
    if isinstance(query, And):
        return any(_has_disjunction(child) for child in query.children)
    return False


class Wrapper:
    """Drives a grammar-restricted source with arbitrary translated queries.

    The compensation strategy (all steps subsuming, then re-filtered):

    1. if the query has disjunctions the grammar forbids, plan one native
       call per DNF disjunct;
    2. within each call, keep at most ``max_constraints`` constraints
       (preferring the call's own order) — the dropped remainder widens
       the call;
    3. a call that cannot satisfy ``required_attrs`` degrades to a full
       scan (``true``) — maximally wide but still sound;
    4. re-evaluate the *full* original query on every returned
       combination using the source's own virtuals, and de-duplicate
       across calls.
    """

    def __init__(self, source, grammar: QueryGrammar):
        self.source = source
        self.grammar = grammar

    # -- planning ----------------------------------------------------------------

    def plan_calls(self, query: Query) -> list[Query]:
        """The native calls used to answer ``query`` (before re-filtering)."""
        if not self.grammar.violations(query):
            return [query]

        if self.grammar.allow_disjunction:
            branches: list[Query] = [query]
        else:
            branches = [
                conj(sorted(term, key=str)) if term else _true()
                for term in dnf_terms(query)
            ]
            if not branches:
                return []

        calls = []
        for branch in branches:
            calls.append(self._fit(branch))
        return calls

    def _fit(self, branch: Query) -> Query:
        """Shrink one conjunctive branch into the template, subsumingly."""
        if isinstance(branch, BoolConst):
            return branch
        constraints = (
            list(branch.children)
            if isinstance(branch, And)
            else [branch]
        )
        constraints = [c for c in constraints if isinstance(c, Constraint)]

        if self.grammar.required_attrs:
            bound = {c.lhs.attr for c in constraints}
            if set(self.grammar.required_attrs) - bound:
                # Cannot form a legal native call: degrade to a scan.
                return _true()

        limit = self.grammar.max_constraints
        if limit is not None and len(constraints) > limit:
            # Keep required bindings first, then the leading constraints.
            required = [
                c for c in constraints if c.lhs.attr in self.grammar.required_attrs
            ]
            rest = [c for c in constraints if c not in required]
            constraints = (required + rest)[:limit]
        return conj(constraints)

    # -- execution ----------------------------------------------------------------

    def select(self, instances: Mapping[tuple, str], query: Query) -> list[dict]:
        """Answer ``query`` exactly, through grammar-conforming calls."""
        calls = self.plan_calls(query)
        seen: set = set()
        out: list[dict] = []
        for call in calls:
            self.grammar.check(call, target=f"wrapper for {self.source.name!r}")
            for bound in self.source.select(instances, call):
                key = _row_key(bound)
                if key in seen:
                    continue
                env = RowEnv(bound, self.source.virtuals)
                if evaluate(query, env):
                    seen.add(key)
                    out.append(bound)
        return out

    def select_rows(self, relation: str, query: Query) -> list[dict]:
        key = ((), None)
        return [bound[key] for bound in self.select({key: relation}, query)]


def _true() -> Query:
    from repro.core.ast import TRUE

    return TRUE


def _row_key(bound: Mapping) -> tuple:
    return tuple(
        (key, tuple(sorted((k, str(v)) for k, v in row.items())))
        for key, row in sorted(bound.items(), key=str)
    )
