"""Simulated sources: relations + capability + a native query executor.

A :class:`Source` stands in for a remote system (a web bookstore, an IR
server, a legacy database).  Its executor

* **enforces its capability**: a query using unsupported vocabulary is
  rejected with :class:`~repro.core.errors.CapabilityError`, exactly the
  way a remote interface would refuse an unknown operator — this is what
  makes the expressibility requirement of Definition 1 testable;
* evaluates the query over the **cross product of the relation instances**
  the mediator names (the σ_{S_i(Q)}(R_i) factor of Eq. 2), honouring the
  source's virtual search attributes.
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import product

from repro.core.ast import Query
from repro.core.errors import EvaluationError
from repro.engine.capabilities import Capability
from repro.engine.eval import RowEnv, Virtual, evaluate
from repro.engine.relation import Relation
from repro.obs import trace as obs

__all__ = ["Source"]


class Source:
    """One heterogeneous source: named relations behind a native interface."""

    def __init__(
        self,
        name: str,
        relations: Mapping[str, Relation],
        capability: Capability,
        virtuals: Mapping[str, Virtual] | None = None,
        grammar: "object | None" = None,
    ):
        self.name = name
        self.relations = dict(relations)
        self.capability = capability
        self.virtuals = dict(virtuals or {})
        #: Optional :class:`~repro.engine.grammar.QueryGrammar` restricting
        #: the *form* (not the vocabulary) of native calls.
        self.grammar = grammar

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise EvaluationError(
                f"source {self.name!r} has no relation {name!r}"
            ) from None

    def select(
        self,
        instances: Mapping[tuple, str],
        query: Query,
    ) -> list[dict]:
        """Run a translated query over named relation instances.

        ``instances`` maps environment keys ``(qualifier, index)`` (see
        :class:`~repro.engine.eval.RowEnv`) to relation names of this
        source.  The result is one dict per surviving combination, keyed
        the same way — the source's contribution to Eq. 2's cross product.
        """
        with obs.span("source.select", source=self.name):
            self.capability.check(query, target=f"source {self.name!r}")
            if self.grammar is not None:
                self.grammar.check(query, target=f"source {self.name!r}")
            keys = list(instances)
            pools = [self.relation(instances[key]).rows() for key in keys]
            out: list[dict] = []
            for combo in product(*pools):
                bound = dict(zip(keys, combo))
                env = RowEnv(bound, self.virtuals)
                if evaluate(query, env):
                    out.append(bound)
            if obs.enabled():
                scanned = 1
                for pool in pools:
                    scanned *= len(pool)
                obs.count("source.rows_scanned", scanned)
                obs.count("source.rows_emitted", len(out))
            return out

    def execute(
        self,
        instances: Mapping[tuple, str],
        query: Query,
    ) -> list[dict]:
        """Answer ``query`` regardless of grammar restrictions.

        For grammar-free sources this is :meth:`select`.  For restricted
        interfaces a :class:`~repro.engine.grammar.Wrapper` splits the
        query into conforming native calls and compensates locally — the
        mediation pipeline always goes through here.
        """
        if self.grammar is None:
            return self.select(instances, query)
        from repro.engine.grammar import Wrapper

        return Wrapper(self, self.grammar).select(instances, query)

    def select_rows(self, relation: str, query: Query) -> list[dict]:
        """Single-relation convenience: rows of ``relation`` matching query."""
        key = ((), None)
        return [
            bound[key] for bound in self.select({key: relation}, query)
        ]

    def execute_rows(self, relation: str, query: Query) -> list[dict]:
        """Single-relation convenience over :meth:`execute`."""
        key = ((), None)
        return [bound[key] for bound in self.execute({key: relation}, query)]

    def ping(self) -> dict:
        """Health probe: relation row counts, no query involved.

        Deliberately bypasses :meth:`select` — a grammar-restricted
        interface would reject an unconstrained probe query, but a health
        check only needs to prove the source answers at all.  The
        resilience layer (``repro sources``) runs this through a
        :class:`~repro.resilience.SourceAdapter` so probes get the same
        retry/breaker treatment as real calls.
        """
        counts = {name: len(rel.rows()) for name, rel in sorted(self.relations.items())}
        return {
            "source": self.name,
            "relations": counts,
            "rows": sum(counts.values()),
        }

    def __str__(self) -> str:
        rels = ", ".join(sorted(self.relations))
        return f"Source({self.name}: {rels})"
