"""The paper's concrete sources, simulated.

The paper evaluates against live 1999 web sources (www.amazon.com,
www.clbooks.com) and two sketched sources T1/T2 plus the map source G of
Example 8.  We rebuild each as an in-memory :class:`Source` with the same
schema, the same native operators, and the same capability restrictions —
the algorithms only ever see rules and capabilities, so translation
behaviour is identical, and execution becomes checkable.

Each factory takes rows (defaulting to a small curated dataset mirroring
the paper's running examples) and returns a ready :class:`Source`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.errors import EvaluationError
from repro.core.values import Date, DatePeriod, Point, Range
from repro.engine.capabilities import Capability
from repro.engine.relation import Relation
from repro.engine.source import Source
from repro.rules.library import AMAZON_TEXT, CLBOOKS_TEXT, T1_TEXT
from repro.text import TextPattern, matches, tokenize

__all__ = [
    "make_amazon",
    "make_clbooks",
    "make_t1",
    "make_t2",
    "make_map_source",
    "DEFAULT_BOOKS",
    "DEFAULT_PAPERS",
    "DEFAULT_AUBIB",
    "DEFAULT_PROF",
    "DEFAULT_POINTS",
]


def _text_match(value: object, pattern: object) -> bool:
    text = value if isinstance(value, str) else str(value)
    if isinstance(pattern, TextPattern):
        return matches(pattern, text)
    if isinstance(pattern, str):
        wanted = tokenize(pattern)
        have = tokenize(text)
        return bool(wanted) and all(token in have for token in wanted)
    raise EvaluationError(f"text match needs a pattern or string, got {pattern!r}")


# ---------------------------------------------------------------------------
# Amazon
# ---------------------------------------------------------------------------

#: Default catalog rows shared by the Amazon/Clbooks factories.  Authors are
#: stored in Amazon's "Last, First" format; subjects are single headings.
DEFAULT_BOOKS = (
    {"title": "The Java JDK Handbook", "author": "Smith, John", "year": 1997,
     "month": 5, "publisher": "oreilly", "isbn": "081815181Y",
     "subject": "programming"},
    {"title": "JDK for Java", "author": "Smith", "year": 1997, "month": 6,
     "publisher": "oreilly", "isbn": "123450001X", "subject": "programming"},
    {"title": "WWW and Web Services", "author": "Clancy, Tom", "year": 1997,
     "month": 5, "publisher": "wiley", "isbn": "123450002X",
     "subject": "networking"},
    {"title": "Hunt for Data Mining", "author": "Clancy, Tom", "year": 1994,
     "month": 11, "publisher": "putnam", "isbn": "123450003X",
     "subject": "databases"},
    {"title": "Deep Queries", "author": "Klancy, Tom", "year": 1997,
     "month": 5, "publisher": "wiley", "isbn": "123450004X",
     "subject": "databases"},
    {"title": "Java Web Programming", "author": "Clancy, Joe Tom",
     "year": 1996, "month": 2, "publisher": "oreilly", "isbn": "123450005X",
     "subject": "programming"},
    {"title": "Operating Systems Today", "author": "Tanen, Andy",
     "year": 1997, "month": 5, "publisher": "prentice",
     "isbn": "123450006X", "subject": "operating systems"},
)


def _amazon_author(row: Mapping, op: str, value: object) -> bool:
    """Amazon's author search: full 'Last, First' match, or last name alone.

    'a name can be "Clancy, Tom", or simply "Clancy" if the first name is
    not known' (Example 2) — so ``[author = "Clancy"]`` matches every
    Clancy regardless of first name, which is what makes rule R3 exact for
    a lone ``ln`` constraint.
    """
    if op != "=":
        raise EvaluationError(f"Amazon author does not support {op!r}")
    if not isinstance(value, str):
        return False
    stored = str(row["author"]).strip().lower()
    wanted = value.strip().lower()
    if "," in wanted:
        return stored == wanted
    return stored == wanted or stored.split(",")[0].strip() == wanted


def _amazon_pdate(row: Mapping, op: str, value: object) -> bool:
    if op != "during" or not isinstance(value, DatePeriod):
        raise EvaluationError("Amazon pdate supports only 'during <period>'")
    return value.covers(Date(int(row["year"]), int(row["month"])))


def make_amazon(rows: Iterable[Mapping] = DEFAULT_BOOKS) -> Source:
    """The Amazon-style bookstore behind ``K_Amazon`` (Figure 3)."""
    catalog = Relation(
        "catalog",
        ("title", "author", "year", "month", "publisher", "isbn", "subject"),
        rows,
    )
    capability = Capability.of(
        selections=[
            ("author", "="),
            ("ti-word", "contains"),
            ("subject-word", "contains"),
            ("title", "starts"),
            ("pdate", "during"),
            ("publisher", "="),
            ("isbn", "="),
            ("subject", "="),
        ],
        text=AMAZON_TEXT,
    )
    virtuals = {
        "author": _amazon_author,
        "ti-word": lambda row, op, v: _text_match(row["title"], v),
        "subject-word": lambda row, op, v: _text_match(row["subject"], v),
        "pdate": _amazon_pdate,
    }
    return Source("Amazon", {"catalog": catalog}, capability, virtuals)


# ---------------------------------------------------------------------------
# Clbooks (Computer Literacy)
# ---------------------------------------------------------------------------


def make_clbooks(rows: Iterable[Mapping] = DEFAULT_BOOKS) -> Source:
    """Example 1's Clbooks: only word containment over author names."""
    catalog = Relation(
        "catalog",
        ("title", "author", "year", "month", "publisher", "isbn", "subject"),
        rows,
    )
    capability = Capability.of(
        selections=[
            ("author", "contains"),
            ("ti", "contains"),
            ("publisher", "="),
        ],
        text=CLBOOKS_TEXT,
    )
    virtuals = {
        "author": lambda row, op, v: _text_match(row["author"], v),
        "ti": lambda row, op, v: _text_match(row["title"], v),
    }
    return Source("Clbooks", {"catalog": catalog}, capability, virtuals)


# ---------------------------------------------------------------------------
# T1: paper(ti, au) + aubib(name, bib)   (Example 3 / Figure 5)
# ---------------------------------------------------------------------------

DEFAULT_PAPERS = (
    {"ti": "Efficient Data Mining over Streams", "au": "Ullman, Jeff"},
    {"ti": "Mediators for the Web", "au": "Molina, Hector"},
    {"ti": "Mining Frequent Patterns", "au": "Han, Jia"},
    {"ti": "Query Translation in Practice", "au": "Chang, Kevin"},
    {"ti": "Socks and Sandals", "au": "Smith, John"},
)

DEFAULT_AUBIB = (
    {"name": "Ullman, Jeff", "bib": "databases logic data mining textbook"},
    {"name": "Molina, Hector", "bib": "mediators warehouses data mining integration"},
    {"name": "Han, Jia", "bib": "data mining warehouse olap patterns"},
    {"name": "Chang, Kevin", "bib": "query translation heterogeneous sources"},
    {"name": "Smith, John", "bib": "footwear comfort studies"},
)


def make_t1(
    papers: Iterable[Mapping] = DEFAULT_PAPERS,
    aubib: Iterable[Mapping] = DEFAULT_AUBIB,
) -> Source:
    """Source T1 of Example 3: paper titles/authors and bibliographies."""
    capability = Capability.of(
        selections=[
            ("ti", "="),
            ("au", "="),
            ("au", "contains"),
            ("name", "="),
            ("name", "contains"),
            ("bib", "contains"),
        ],
        joins=[("name", "au", "=")],
        text=T1_TEXT,
    )
    virtuals = {
        "bib": lambda row, op, v: _text_match(row["bib"], v),
    }
    # au/name use stored equality plus word-containment through the generic
    # contains operator, so no virtual is needed for them.
    return Source(
        "T1",
        {
            "paper": Relation("paper", ("ti", "au"), papers),
            "aubib": Relation("aubib", ("name", "bib"), aubib),
        },
        capability,
        virtuals,
    )


# ---------------------------------------------------------------------------
# T2: prof(ln, fn, dept)   (Example 3 / Figure 5)
# ---------------------------------------------------------------------------

DEFAULT_PROF = (
    {"ln": "Ullman", "fn": "Jeff", "dept": 230},
    {"ln": "Molina", "fn": "Hector", "dept": 230},
    {"ln": "Han", "fn": "Jia", "dept": 230},
    {"ln": "Chang", "fn": "Kevin", "dept": 210},
    {"ln": "Smith", "fn": "John", "dept": 220},
)


def make_t2(rows: Iterable[Mapping] = DEFAULT_PROF) -> Source:
    """Source T2 of Example 3: professors with coded departments."""
    capability = Capability.of(
        selections=[("ln", "="), ("fn", "="), ("dept", "=")],
        joins=[("ln", "ln", "="), ("fn", "fn", "=")],
    )
    return Source(
        "T2",
        {"prof": Relation("prof", ("ln", "fn", "dept"), rows)},
        capability,
    )


# ---------------------------------------------------------------------------
# Map source G (Example 8)
# ---------------------------------------------------------------------------

DEFAULT_POINTS = tuple(
    {"id": f"p{x}_{y}", "x": x, "y": y}
    for x in range(0, 60, 10)
    for y in range(0, 60, 10)
)


def _range_pred(coord: str):
    def virtual(row: Mapping, op: str, value: object) -> bool:
        if op != "=" or not isinstance(value, Range):
            raise EvaluationError(f"{coord}_range expects '= (lo:hi)'")
        return value.contains(float(row[coord]))

    return virtual


def _corner_pred(lower: bool):
    def virtual(row: Mapping, op: str, value: object) -> bool:
        if op != "=" or not isinstance(value, Point):
            raise EvaluationError("corner attributes expect '= (x, y)'")
        x, y = float(row["x"]), float(row["y"])
        if lower:
            return x >= value.x and y >= value.y
        return x <= value.x and y <= value.y

    return virtual


#: The map source's native region predicates, exposed so the Figure 9
#: subsumption experiments can evaluate G-vocabulary queries directly.
MAP_SOURCE_VIRTUALS = {
    "X_range": _range_pred("x"),
    "Y_range": _range_pred("y"),
    "C_ll": _corner_pred(lower=True),
    "C_ur": _corner_pred(lower=False),
}


def make_map_source(rows: Iterable[Mapping] = DEFAULT_POINTS) -> Source:
    """Example 8's map source G: rectangle queries over stored points.

    ``[X_range = (10:30)]`` selects points with 10 <= x <= 30;
    ``[C_ll = (10, 20)]`` selects the open region x >= 10 ∧ y >= 20 — the
    shaded area of Figure 9.
    """
    capability = Capability.of(
        selections=[
            ("X_range", "="),
            ("Y_range", "="),
            ("C_ll", "="),
            ("C_ur", "="),
        ],
    )
    return Source(
        "G",
        {"points": Relation("points", ("id", "x", "y"), rows)},
        capability,
        dict(MAP_SOURCE_VIRTUALS),
    )


#: Mediator-side virtuals for the map context F of Example 8, so original
#: queries over x_min/x_max/y_min/y_max can be evaluated directly for the
#: subsumption experiments of Figure 9.
MAP_MEDIATOR_VIRTUALS = {
    "x_min": lambda row, op, v: op == "=" and float(row["x"]) >= float(v),
    "x_max": lambda row, op, v: op == "=" and float(row["x"]) <= float(v),
    "y_min": lambda row, op, v: op == "=" and float(row["y"]) >= float(v),
    "y_max": lambda row, op, v: op == "=" and float(row["y"]) <= float(v),
}

__all__.extend(["MAP_MEDIATOR_VIRTUALS", "MAP_SOURCE_VIRTUALS"])
