"""Source capability descriptions (Section 2's *capability difference*).

A :class:`Capability` records which (attribute, operator) combinations a
source's native query interface accepts, plus — for text operators — which
pattern connectives its search engine understands.  The mapping rules are
*supposed* to emit only supported vocabulary; the simulated sources
enforce it anyway, so a broken rule set fails loudly instead of silently
returning garbage (the expressibility requirement of Definition 1).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.ast import And, AttrRef, BoolConst, Constraint, Or, Query
from repro.core.errors import CapabilityError
from repro.text import TextCapability, pattern_operators
from repro.text.patterns import TextPattern

__all__ = ["Capability"]


@dataclass(frozen=True)
class Capability:
    """What one target's native interface supports.

    * ``selections`` — supported ``(attribute, operator)`` pairs;
    * ``joins`` — supported ``(attribute, attribute, operator)`` triples
      (attribute order irrelevant);
    * ``text`` — pattern connectives accepted where the operator takes a
      text pattern.

    Attribute names are matched on the final path component, since rule
    emissions qualify them with view/relation context the interface
    doesn't see.
    """

    selections: frozenset
    joins: frozenset = frozenset()
    text: TextCapability = field(default_factory=TextCapability)

    @staticmethod
    def of(
        selections: Iterable[tuple[str, str]],
        joins: Iterable[tuple[str, str, str]] = (),
        text: TextCapability | None = None,
    ) -> Capability:
        """Convenience constructor from plain iterables."""
        return Capability(
            selections=frozenset(selections),
            joins=frozenset(
                (min(a1, a2), max(a1, a2), op) for a1, a2, op in joins
            ),
            text=text or TextCapability(),
        )

    def supports(self, constraint: Constraint) -> bool:
        """Can the native interface evaluate this constraint?"""
        if isinstance(constraint.rhs, AttrRef):
            a1, a2 = constraint.lhs.attr, constraint.rhs.attr
            key = (min(a1, a2), max(a1, a2), constraint.op)
            return key in self.joins
        if (constraint.lhs.attr, constraint.op) not in self.selections:
            return False
        if isinstance(constraint.rhs, TextPattern):
            return all(
                self.text.supports(kind)
                for kind in pattern_operators(constraint.rhs)
            )
        return True

    def violations(self, query: Query) -> list[Constraint]:
        """All constraints of ``query`` the interface cannot evaluate."""
        bad: list[Constraint] = []
        self._collect(query, bad)
        return bad

    def _collect(self, query: Query, bad: list[Constraint]) -> None:
        if isinstance(query, BoolConst):
            return
        if isinstance(query, Constraint):
            if not self.supports(query):
                bad.append(query)
            return
        if isinstance(query, (And, Or)):
            for child in query.children:
                self._collect(child, bad)
            return
        from repro.core.ast import Not

        if isinstance(query, Not):
            # Negation never reaches a native interface (it is eliminated
            # before translation); for direct checks, judge the
            # complemented form the source would actually see.
            from repro.core.negation import push_negations

            self._collect(push_negations(query), bad)
            return
        raise CapabilityError(f"unknown query node: {query!r}")

    def check(self, query: Query, target: str = "target") -> None:
        """Raise :class:`CapabilityError` when the query is inexpressible."""
        bad = self.violations(query)
        if bad:
            listing = "; ".join(str(c) for c in bad)
            raise CapabilityError(
                f"{target} cannot evaluate: {listing}"
            )
