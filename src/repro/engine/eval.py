"""Query evaluation over bound row instances.

The engine evaluates constraint queries against an *environment* binding
each referenced instance (a view instance like ``fac[1]``, or a relation
instance like ``fac.aubib``) to one tuple.  Evaluating over the cross
product of relations/views then means enumerating environments — exactly
the σ_Q(R1 × ... × Rn × X) of Eq. 1.

Sources may register **virtual attributes**: search fields computed from
stored attributes with operator-specific semantics.  Amazon's ``ti-word``
(words of the title), ``pdate`` (computed from year/month), or the map
source's ``X_range``/``C_ll`` (region predicates over point coordinates,
Example 8) are all virtuals.  A virtual is a callable
``fn(row, op, value) -> bool`` consulted before stored attributes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.core.ast import And, AttrRef, BoolConst, Constraint, Not, Or, Query
from repro.core.errors import EvaluationError
from repro.core.operators import evaluate_op, get_operator

__all__ = ["RowEnv", "evaluate", "evaluate_row", "Virtual"]

#: A virtual-attribute evaluator: (row, op, value) -> bool.
Virtual = Callable[[Mapping, str, object], bool]


class RowEnv:
    """An environment binding instance qualifiers to rows.

    ``rows`` maps ``(qualifier, index)`` to a tuple dict, where
    ``qualifier`` is the reference path minus the attribute name — e.g.
    ``(("fac",), 1)`` for view instance ``fac[1]``, ``(("fac", "aubib"),
    None)`` for the relation instance ``fac.aubib``, or ``((), None)`` for
    a bare single-table context like Amazon's catalog.
    """

    def __init__(
        self,
        rows: Mapping[tuple, Mapping],
        virtuals: Mapping[str, Virtual] | None = None,
    ):
        self.rows = dict(rows)
        self.virtuals = dict(virtuals or {})

    def resolve(self, ref: AttrRef) -> tuple[Mapping, str]:
        """Find the row an attribute reference lives in.

        Resolution order: exact ``(qualifier, index)`` key; the paper's
        ``fac.bib`` ≡ ``fac[i].bib`` abbreviation when unambiguous; a bare
        attribute against a sole instance; and finally *hierarchical
        descent* — an instance whose qualifier is a proper prefix of the
        reference's, with the remaining components walked through nested
        sub-documents (the hierarchical data of reference [17]:
        ``doc.author.ln`` against a ``doc`` instance holding
        ``{"author": {"ln": ...}}``).
        """
        qualifier = ref.qualifier
        key = (qualifier, ref.index)
        if key in self.rows:
            return self.rows[key], ref.attr
        if ref.index is None:
            # ``fac.bib`` abbreviates ``fac[i].bib`` for any i (Section
            # 4.2) — unambiguous only when a single instance matches.
            candidates = [
                row for (qual, _idx), row in self.rows.items() if qual == qualifier
            ]
            if len(candidates) == 1:
                return candidates[0], ref.attr
            if len(candidates) > 1:
                raise EvaluationError(
                    f"ambiguous reference {ref}: {len(candidates)} instances match"
                )
        if not qualifier and len(self.rows) == 1:
            # Bare attribute in a single-instance context.
            return next(iter(self.rows.values())), ref.attr
        nested = self._descend(ref)
        if nested is not None:
            return nested, ref.attr
        raise EvaluationError(f"unresolvable reference {ref} in environment")

    def _descend(self, ref: AttrRef) -> Mapping | None:
        """Hierarchical fallback: prefix-match an instance, then walk
        the remaining qualifier components through nested dicts."""
        qualifier = ref.qualifier
        matches: list[Mapping] = []
        for (qual, idx), row in self.rows.items():
            if len(qual) >= len(qualifier) or qualifier[: len(qual)] != qual:
                continue
            if ref.index is not None and idx is not None and idx != ref.index:
                continue
            node: object = row
            for part in qualifier[len(qual):]:
                if isinstance(node, Mapping) and part in node:
                    node = node[part]
                else:
                    node = None
                    break
            if isinstance(node, Mapping) and ref.attr in node:
                matches.append(node)
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise EvaluationError(
                f"ambiguous hierarchical reference {ref}: "
                f"{len(matches)} paths match"
            )
        return None

    def lookup(self, ref: AttrRef) -> object:
        """The stored value of a reference (no virtual dispatch)."""
        row, attr = self.resolve(ref)
        if attr not in row:
            raise EvaluationError(f"attribute {attr!r} not in tuple for {ref}")
        return row[attr]


def evaluate(query: Query, env: RowEnv) -> bool:
    """Evaluate a constraint query in an environment."""
    if isinstance(query, BoolConst):
        return query.value
    if isinstance(query, And):
        return all(evaluate(child, env) for child in query.children)
    if isinstance(query, Or):
        return any(evaluate(child, env) for child in query.children)
    if isinstance(query, Not):
        return not evaluate(query.child, env)
    if isinstance(query, Constraint):
        return _evaluate_constraint(query, env)
    raise EvaluationError(f"unknown query node: {query!r}")


def _evaluate_constraint(constraint: Constraint, env: RowEnv) -> bool:
    rhs = constraint.rhs
    if isinstance(rhs, AttrRef):
        rhs_value = env.lookup(rhs)
    else:
        rhs_value = rhs

    virtual = env.virtuals.get(constraint.lhs.attr)
    if virtual is not None:
        row, _attr = env.resolve(constraint.lhs)
        op = constraint.op
        if op.startswith("not-"):
            # Complement operators produced by negation push-down: let the
            # virtual answer the base operator and invert.
            base = get_operator(op).complement
            if base is not None:
                return not virtual(row, base, rhs_value)
        return virtual(row, op, rhs_value)

    lhs_value = env.lookup(constraint.lhs)
    return evaluate_op(constraint.op, lhs_value, rhs_value)


def evaluate_row(
    query: Query,
    row: Mapping,
    virtuals: Mapping[str, Virtual] | None = None,
) -> bool:
    """Evaluate a selection query against one bare tuple."""
    return evaluate(query, RowEnv({((), None): row}, virtuals))
