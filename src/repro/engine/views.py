"""Mediator views over source relations (Section 2).

A view is an SPJ query over source relations plus conversion functions —
``fac(ln, fn, bib, dept)`` joins ``aubib`` (T1) with ``prof`` (T2) through
the ``NameLnFn`` conceptual relation.  :class:`ViewDef` captures this as a
set of base relation instances plus a ``combine`` function that applies
the join predicate and the conversion functions in one step, returning the
view tuple (or ``None`` when the bases do not join).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from itertools import product

from repro.core.errors import SchemaError
from repro.engine.source import Source

__all__ = ["BaseRef", "ViewDef", "UnionViewDef"]


@dataclass(frozen=True)
class BaseRef:
    """One relation instance contributed to a view by a source.

    The relation name doubles as the alias rule emissions use: rule R1
    writes ``fac.aubib.bib``, so the ``fac`` view's T1 base must be named
    ``aubib``.
    """

    source: str
    relation: str


@dataclass(frozen=True)
class ViewDef:
    """An integrated mediator view."""

    name: str
    attributes: tuple[str, ...]
    bases: tuple[BaseRef, ...]
    combine: Callable[[Mapping[str, Mapping]], Mapping | None]

    def sources(self) -> frozenset[str]:
        return frozenset(base.source for base in self.bases)

    def materialize(self, sources: Mapping[str, Source]) -> list[dict]:
        """The full view extension — the unpushed baseline of Eq. 1."""
        pools = [
            sources[base.source].relation(base.relation).rows()
            for base in self.bases
        ]
        out: list[dict] = []
        for combo in product(*pools):
            by_alias = {
                base.relation: row for base, row in zip(self.bases, combo)
            }
            view_row = self.combine(by_alias)
            if view_row is None:
                continue
            if set(view_row) != set(self.attributes):
                raise SchemaError(
                    f"view {self.name!r}: combine produced attributes "
                    f"{sorted(view_row)}, expected {sorted(self.attributes)}"
                )
            out.append(dict(view_row))
        return out


@dataclass(frozen=True)
class UnionViewDef:
    """A view that is a *union* of SPJ components (Section 2).

    "In general a view can be a union of SPJ components; e.g., a book view
    can be a union of two relations from two bookstore sources.  In this
    case, we can process each component separately and union the results"
    — which is exactly what :class:`~repro.mediator.mediator.Mediator`
    does: queries run once per component choice, with the residue filter
    recomputed for each choice's sources.
    """

    name: str
    components: tuple[ViewDef, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise SchemaError(f"union view {self.name!r} needs >= 1 component")
        first = set(self.components[0].attributes)
        for component in self.components[1:]:
            if set(component.attributes) != first:
                raise SchemaError(
                    f"union view {self.name!r}: component {component.name!r} "
                    f"has a different attribute set"
                )

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.components[0].attributes

    def sources(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for component in self.components:
            out |= component.sources()
        return out

    def materialize(self, sources: Mapping[str, Source]) -> list[dict]:
        """Bag union of the component extensions."""
        rows: list[dict] = []
        for component in self.components:
            rows.extend(component.materialize(sources))
        return rows
