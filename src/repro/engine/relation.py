"""Relations: the storage substrate (Section 2's source relations).

A :class:`Relation` is a named, schema-checked bag of tuples (dicts).  It
is deliberately minimal — the paper's algorithms never touch storage; the
engine exists so translations can be *executed* and verified end-to-end
(Eq. 1 vs Eq. 2).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.errors import SchemaError

__all__ = ["Relation"]


class Relation:
    """A named relation with a fixed attribute schema."""

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        rows: Iterable[Mapping] = (),
    ):
        self.name = name
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {name!r} has duplicate attributes")
        self._rows: list[dict] = []
        for row in rows:
            self.insert(row)

    def insert(self, row: Mapping) -> None:
        """Add a tuple; its keys must exactly match the schema."""
        if set(row) != set(self.attributes):
            missing = set(self.attributes) - set(row)
            extra = set(row) - set(self.attributes)
            raise SchemaError(
                f"relation {self.name!r}: bad tuple "
                f"(missing {sorted(missing)}, extra {sorted(extra)})"
            )
        self._rows.append(dict(row))

    def rows(self) -> list[dict]:
        """A copy-safe view of the tuples."""
        return list(self._rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)}) [{len(self)} rows]"
