"""The vocablint check suite (codes VM001–VM012).

Each check is a function ``(LintContext) -> list[Diagnostic]`` over a
prepared :class:`LintContext` (the spec, its synthesized rule samples,
and the optional vocabulary/capability/oracle).  The registry at the
bottom maps codes to checks; :func:`repro.analysis.linter.
lint_specification` runs them all and merges the findings.

Soundness verdicts (Definition 3) are three-valued:

* ``CONFIRMED`` — the violation is provable: the emission is built from
  the matched constraints themselves (same atoms, so propositional
  implication is decisive, the Theorem 1 setting) yet fails to subsume
  them; or a caller-supplied semantic oracle produced a counterexample.
* ``SUSPECTED`` — the emission shares *some* atoms with the group and
  fails propositionally; unshared atoms could semantically rescue it,
  so a human should look.
* ``UNVERIFIABLE`` — the emission lives entirely in the target's
  vocabulary; without a semantic oracle no mechanical check applies
  (the "only a human expert can certify" residue of Definition 3).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.ast import AttrRef, Constraint, Query, conj
from repro.core.matching import AttrPattern, Matching, Rule
from repro.core.subsume import prop_equivalent, prop_implies, prop_satisfiable
from repro.engine.capabilities import Capability
from repro.rules.spec import MappingSpecification, audit_vocabulary
from repro.rules.vocabulary import ContextVocabulary

from repro.analysis.diagnostics import Diagnostic, Severity, catalog_entry
from repro.analysis.sampling import RuleSamples, harvest_literals, sample_rule

__all__ = [
    "LintContext",
    "SubsumptionVerdict",
    "classify_subsumption",
    "prepare_context",
    "ALL_CHECKS",
]

#: ``oracle(broad, narrow) -> bool | None`` — semantic subsumption when the
#: caller can decide it (e.g. empirically over a dataset); ``None`` = unknown.
Oracle = Callable[[Query, Query], bool | None]


class SubsumptionVerdict(enum.Enum):
    """Outcome of checking one matching's emission against its group."""

    SOUND = "sound"
    CONFIRMED = "confirmed"
    SUSPECTED = "suspected"
    UNVERIFIABLE = "unverifiable"


@dataclass
class LintContext:
    """Everything the checks need, prepared once per lint run."""

    spec: MappingSpecification
    samples: dict[str, RuleSamples]
    vocabulary: ContextVocabulary | None = None
    capability: Capability | None = None
    oracle: Oracle | None = None
    counters: dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def diagnostic(
        self,
        code: str,
        message: str,
        rule: str | None = None,
        where: str = "",
        severity: Severity | None = None,
        **details: object,
    ) -> Diagnostic:
        info = catalog_entry(code)
        return Diagnostic(
            code=code,
            severity=severity if severity is not None else info.severity,
            spec=self.spec.name,
            message=message,
            rule=rule,
            field=where,
            details=tuple(sorted((k, str(v)) for k, v in details.items())),
        )


def prepare_context(
    spec: MappingSpecification,
    vocabulary: ContextVocabulary | None = None,
    capability: Capability | None = None,
    oracle: Oracle | None = None,
) -> LintContext:
    """Harvest literals and synthesize samples for every rule."""
    literals = harvest_literals(spec)
    samples = {
        rule.name: sample_rule(rule, literals, vocabulary) for rule in spec.rules
    }
    context = LintContext(
        spec=spec,
        samples=samples,
        vocabulary=vocabulary,
        capability=capability,
        oracle=oracle,
    )
    context.bump("lint.rules", len(spec.rules))
    context.bump(
        "lint.sampled_matchings",
        sum(len(s.matchings) for s in samples.values()),
    )
    context.bump(
        "lint.sample_combos",
        sum(s.combos_tried for s in samples.values()),
    )
    return context


# ---------------------------------------------------------------------------
# VM001 / VM002 — vocabulary reference checks
# ---------------------------------------------------------------------------


def _vocab_names(vocabulary: ContextVocabulary) -> set[str]:
    names = set()
    for spec in vocabulary.attributes:
        names.add(spec.name)
        names.add(spec.name.split(".")[-1])
    return names


def _head_attr_names(rule: Rule) -> list[str]:
    """Literal attribute names a rule head can match (patterns + hints)."""
    names: list[str] = []
    for pattern in rule.patterns:
        if isinstance(pattern.lhs, AttrPattern) and isinstance(pattern.lhs.attr, str):
            names.append(pattern.lhs.attr)
        if isinstance(pattern.rhs, AttrPattern) and isinstance(pattern.rhs.attr, str):
            names.append(pattern.rhs.attr)
    for condition in rule.conditions:
        hint = getattr(condition, "vocablint_hint", None)
        if isinstance(hint, dict) and hint.get("kind") == "attr_in":
            names.extend(sorted(hint.get("allowed", ())))
    return names


def check_vocabulary_references(context: LintContext) -> list[Diagnostic]:
    """VM001 unknown attributes, VM002 undeclared operators."""
    if context.vocabulary is None:
        return []
    known = _vocab_names(context.vocabulary)
    by_attr = {
        spec.name.split(".")[-1]: set(spec.operators)
        for spec in context.vocabulary.attributes
    }
    out: list[Diagnostic] = []
    for rule in context.spec.rules:
        unknown = sorted(
            {name for name in _head_attr_names(rule) if name not in known}
        )
        for name in unknown:
            out.append(
                context.diagnostic(
                    "VM001",
                    f"head references attribute {name!r}, which the declared "
                    f"vocabulary does not contain",
                    rule=rule.name,
                    where="head",
                    attribute=name,
                )
            )
        for pattern in rule.patterns:
            if not isinstance(pattern.op, str):
                continue
            lhs = pattern.lhs
            if not (isinstance(lhs, AttrPattern) and isinstance(lhs.attr, str)):
                continue
            declared = by_attr.get(lhs.attr)
            if declared is not None and pattern.op not in declared:
                out.append(
                    context.diagnostic(
                        "VM002",
                        f"head constrains {lhs.attr!r} with {pattern.op!r}, "
                        f"but the vocabulary declares only "
                        f"{sorted(declared)}",
                        rule=rule.name,
                        where="head",
                        attribute=lhs.attr,
                        operator=pattern.op,
                    )
                )
    return out


# ---------------------------------------------------------------------------
# VM003 / VM004 — emission-subsumption soundness
# ---------------------------------------------------------------------------


def classify_subsumption(
    matching: Matching, oracle: Oracle | None = None
) -> SubsumptionVerdict:
    """Does the emission subsume the matched group (Definition 3)?

    The matched group conjoined must imply the emission.  Propositional
    reasoning is decisive only where atoms coincide; a semantic oracle
    extends the verdict across vocabularies.
    """
    group = conj(sorted(matching.constraints, key=str))
    emission = matching.emission
    emission_atoms = emission.constraints()

    if oracle is not None:
        answer = oracle(emission, group)
        if answer is True:
            return SubsumptionVerdict.SOUND
        if answer is False:
            return SubsumptionVerdict.CONFIRMED

    if not emission_atoms:
        # A constant emission: True subsumes everything, False nothing.
        if prop_implies(group, emission):
            return SubsumptionVerdict.SOUND
        return SubsumptionVerdict.CONFIRMED

    shared = emission_atoms & matching.constraints
    if not shared:
        return SubsumptionVerdict.UNVERIFIABLE
    if prop_implies(group, emission):
        return SubsumptionVerdict.SOUND
    if emission_atoms <= matching.constraints:
        # Emission built purely from the matched constraints — the
        # propositional counterexample is genuine (Theorem 1 setting).
        return SubsumptionVerdict.CONFIRMED
    return SubsumptionVerdict.SUSPECTED


def check_emission_soundness(context: LintContext) -> list[Diagnostic]:
    """VM003 confirmed / VM004 suspected soundness violations."""
    out: list[Diagnostic] = []
    for rule in context.spec.rules:
        samples = context.samples[rule.name]
        flagged: set[str] = set()
        for matching in samples.matchings:
            verdict = classify_subsumption(matching, context.oracle)
            context.bump(f"lint.subsumption.{verdict.value}")
            if verdict is SubsumptionVerdict.CONFIRMED and "VM003" not in flagged:
                flagged.add("VM003")
                out.append(
                    context.diagnostic(
                        "VM003",
                        "emission does not subsume the matched group "
                        f"(CONFIRMED on sampled binding): "
                        f"{matching.emission} fails for group "
                        f"{{{', '.join(sorted(map(str, matching.constraints)))}}}",
                        rule=rule.name,
                        where="emit",
                        emission=matching.emission,
                        group=sorted(map(str, matching.constraints)),
                    )
                )
            elif verdict is SubsumptionVerdict.SUSPECTED and "VM004" not in flagged:
                flagged.add("VM004")
                out.append(
                    context.diagnostic(
                        "VM004",
                        "emission shares constraints with the matched group "
                        "but does not propositionally subsume it (SUSPECTED; "
                        f"verify semantically): {matching.emission}",
                        rule=rule.name,
                        where="emit",
                        emission=matching.emission,
                        group=sorted(map(str, matching.constraints)),
                    )
                )
    return out


# ---------------------------------------------------------------------------
# VM005 / VM011 — dead and crashing rules
# ---------------------------------------------------------------------------


def check_dead_rules(context: LintContext) -> list[Diagnostic]:
    """VM005 rules that never fired, VM011 rules that only crashed."""
    out: list[Diagnostic] = []
    for rule in context.spec.rules:
        samples = context.samples[rule.name]
        if samples.fired:
            continue
        if samples.raised:
            combo, exc = samples.raised[0]
            out.append(
                context.diagnostic(
                    "VM011",
                    f"every sampled head binding raised instead of matching; "
                    f"e.g. {type(exc).__name__}: {exc} on "
                    f"{{{', '.join(map(str, combo))}}} — conversion "
                    f"functions should veto via RejectMatch",
                    rule=rule.name,
                    where="let",
                    exception=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        severity = (
            Severity.WARNING if context.vocabulary is not None else Severity.INFO
        )
        out.append(
            context.diagnostic(
                "VM005",
                f"no matching found across {samples.combos_tried} synthesized "
                "head bindings — the rule looks unreachable"
                + (
                    ""
                    if context.vocabulary is not None
                    else " (no vocabulary declared; sampled from defaults)"
                ),
                rule=rule.name,
                where="head",
                severity=severity,
                combos_tried=samples.combos_tried,
            )
        )
    return out


# ---------------------------------------------------------------------------
# VM006 / VM007 / VM008 — same-group interactions
# ---------------------------------------------------------------------------


def _matchings_by_group(
    context: LintContext,
) -> dict[frozenset[Constraint], list[Matching]]:
    by_group: dict[frozenset[Constraint], list[Matching]] = {}
    for samples in context.samples.values():
        for matching in samples.matchings:
            by_group.setdefault(matching.constraints, []).append(matching)
    return by_group


def check_group_conflicts(context: LintContext) -> list[Diagnostic]:
    """VM007 duplicate and VM008 conflicting matchings on one group."""
    out: list[Diagnostic] = []
    seen_pairs: set[tuple[str, str, str]] = set()
    for group, matchings in _matchings_by_group(context).items():
        rules = {m.rule_name for m in matchings}
        if len(rules) < 2:
            continue
        group_text = ", ".join(sorted(map(str, group)))
        for i, left in enumerate(matchings):
            for right in matchings[i + 1 :]:
                if left.rule_name == right.rule_name:
                    continue
                a, b = sorted((left.rule_name, right.rule_name))
                if prop_equivalent(left.emission, right.emission):
                    key = ("VM007", a, b)
                    if key in seen_pairs:
                        continue
                    seen_pairs.add(key)
                    out.append(
                        context.diagnostic(
                            "VM007",
                            f"rules {a} and {b} emit equivalent mappings for "
                            f"the same group {{{group_text}}} — one is "
                            "redundant",
                            rule=a,
                            where="emit",
                            other_rule=b,
                            group=group_text,
                        )
                    )
                elif not prop_satisfiable(
                    conj([left.emission, right.emission])
                ):
                    key = ("VM008", a, b)
                    if key in seen_pairs:
                        continue
                    seen_pairs.add(key)
                    out.append(
                        context.diagnostic(
                            "VM008",
                            f"rules {a} and {b} emit contradictory mappings "
                            f"for the same group {{{group_text}}}: "
                            f"({left.emission}) and ({right.emission}) "
                            "cannot hold together",
                            rule=a,
                            where="emit",
                            other_rule=b,
                            group=group_text,
                        )
                    )
    return out


def check_shadowed_rules(context: LintContext) -> list[Diagnostic]:
    """VM006: every matching of a rule is absorbed by some other rule's."""
    by_group = _matchings_by_group(context)
    out: list[Diagnostic] = []
    for rule in context.spec.rules:
        samples = context.samples[rule.name]
        if not samples.fired:
            continue
        shadowers: set[str] = set()
        for matching in samples.matchings:
            absorbed_by = None
            for other in by_group[matching.constraints]:
                if other.rule_name == rule.name:
                    continue
                # ``other`` makes ``matching`` redundant when its emission
                # is at least as strong: conjoining both adds nothing.
                if prop_implies(other.emission, matching.emission):
                    absorbed_by = other.rule_name
                    break
            if absorbed_by is None:
                shadowers = set()
                break
            shadowers.add(absorbed_by)
        if shadowers:
            others = ", ".join(sorted(shadowers))
            out.append(
                context.diagnostic(
                    "VM006",
                    f"every sampled matching is absorbed by {others}; the "
                    "rule never changes a minimal subsuming mapping",
                    rule=rule.name,
                    where="head",
                    shadowed_by=others,
                )
            )
    return out


# ---------------------------------------------------------------------------
# VM009 — vocabulary coverage gaps
# ---------------------------------------------------------------------------


def check_coverage(context: LintContext) -> list[Diagnostic]:
    """VM009: declared constraints no rule can touch (maps to True)."""
    if context.vocabulary is None:
        return []
    report = audit_vocabulary(context.spec, context.vocabulary.all_constraints())
    out = []
    for constraint in report.uncovered:
        out.append(
            context.diagnostic(
                "VM009",
                f"vocabulary constraint {constraint} participates in no "
                "matching; every query using it silently maps it to True",
                rule=None,
                where="vocabulary",
                constraint=constraint,
            )
        )
    return out


# ---------------------------------------------------------------------------
# VM010 — cross-matching hazards
# ---------------------------------------------------------------------------


def check_cross_matching_hazards(context: LintContext) -> list[Diagnostic]:
    """VM010: attribute pairs whose joint rules break conjunct safety.

    For every sampled matching spanning >= 2 distinct attributes, splitting
    the group across conjuncts yields a cross-matching (Definition 5): a
    conjunction placing those attributes in different conjuncts is unsafe
    and TDQM must Disjunctivize.  Reported per attribute pair.
    """
    out: list[Diagnostic] = []
    seen: set[tuple[str, str]] = set()
    for rule in context.spec.rules:
        for matching in context.samples[rule.name].matchings:
            attrs = sorted({str(c.lhs) for c in matching.constraints})
            if len(attrs) < 2:
                continue
            for i, left in enumerate(attrs):
                for right in attrs[i + 1 :]:
                    pair = (left, right)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    out.append(
                        context.diagnostic(
                            "VM010",
                            f"rule {matching.rule_name} matches "
                            f"{left!r} and {right!r} jointly: conjunctions "
                            "separating them have cross-matchings "
                            "(Definition 5) and translate via Disjunctivize",
                            rule=matching.rule_name,
                            where="head",
                            attributes=f"{left}, {right}",
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# VM012 — inexpressible emissions
# ---------------------------------------------------------------------------


def tautological(constraint: Constraint) -> bool:
    """A constraint trivially true regardless of data, e.g. ``x = x``.

    Sampled join bindings can collapse both sides of a join pattern onto
    the same attribute instance; the resulting self-equality never needs
    native support because it is equivalent to ``true`` and droppable
    before translation.
    """
    return (
        constraint.op == "="
        and isinstance(constraint.rhs, AttrRef)
        and constraint.rhs == constraint.lhs
    )


def check_inexpressible(context: LintContext) -> list[Diagnostic]:
    """VM012: emissions the target capability cannot evaluate."""
    if context.capability is None:
        return []
    out: list[Diagnostic] = []
    for rule in context.spec.rules:
        reported: set[Constraint] = set()
        for matching in context.samples[rule.name].matchings:
            for bad in context.capability.violations(matching.emission):
                if bad in reported or tautological(bad):
                    continue
                reported.add(bad)
                out.append(
                    context.diagnostic(
                        "VM012",
                        f"emission {bad} is not supported by the target "
                        "capability; the rule would fail at query time",
                        rule=rule.name,
                        where="emit",
                        constraint=bad,
                    )
                )
    return out


#: Check registry in execution order; codes listed for documentation.
ALL_CHECKS: tuple[tuple[str, Callable[[LintContext], list[Diagnostic]]], ...] = (
    ("VM001/VM002", check_vocabulary_references),
    ("VM003/VM004", check_emission_soundness),
    ("VM005/VM011", check_dead_rules),
    ("VM007/VM008", check_group_conflicts),
    ("VM006", check_shadowed_rules),
    ("VM009", check_coverage),
    ("VM010", check_cross_matching_hazards),
    ("VM012", check_inexpressible),
)
