"""SARIF 2.1.0 export for vocablint and federation-audit reports.

SARIF (Static Analysis Results Interchange Format) is what CI systems —
GitHub code scanning in particular — ingest to render findings as inline
annotations.  ``repro lint --format sarif`` and ``repro audit --format
sarif`` emit one SARIF log per invocation:

* every VM/VF code becomes a ``reportingDescriptor`` (stable ``id``,
  human ``name`` from the catalog, default severity level);
* every diagnostic becomes a ``result`` with a logical location
  (``spec:rule[field]``) and, when the specification came from a JSON
  file, a physical location pointing at the rule's line in that file.

Only the subset of SARIF that annotation consumers read is produced; the
output validates against the 2.1.0 schema.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    catalog_entry,
    diagnostic_order,
)

__all__ = ["diagnostics_to_sarif", "locate_rule_lines"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def locate_rule_lines(path: str) -> dict[str, int]:
    """Best-effort ``rule name -> 1-based line`` map for a JSON spec file.

    Declarative specifications name each rule exactly once (uniqueness
    is enforced at load time), so the first line containing the quoted
    name is the rule's definition site.
    """
    lines: dict[str, int] = {}
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                if '"name"' not in line:
                    continue
                _, _, rest = line.partition('"name"')
                _, _, tail = rest.partition('"')
                name, quote, _ = tail.partition('"')
                if quote and name and name not in lines:
                    lines[name] = number
    except OSError:
        return {}
    return lines


def _rule_descriptor(code: str) -> dict:
    info = catalog_entry(code)
    return {
        "id": code,
        "name": info.title,
        "shortDescription": {"text": info.title},
        "fullDescription": {"text": info.summary},
        "defaultConfiguration": {"level": _LEVELS[info.severity]},
        "help": {"text": f"See docs/static_analysis.md#{code.lower()}."},
    }


def _result(
    diagnostic: Diagnostic, files: Mapping[str, str], lines: Mapping[str, dict]
) -> dict:
    location: dict = {
        "logicalLocations": [
            {
                "fullyQualifiedName": diagnostic.location,
                "kind": "member",
            }
        ]
    }
    uri = files.get(diagnostic.spec)
    if uri is not None:
        physical: dict = {"artifactLocation": {"uri": uri}}
        line = lines.get(diagnostic.spec, {}).get(diagnostic.rule or "")
        if line is not None:
            physical["region"] = {"startLine": line}
        location["physicalLocation"] = physical
    return {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": f"{diagnostic.location}: {diagnostic.message}"},
        "locations": [location],
        "properties": {
            "spec": diagnostic.spec,
            "rule": diagnostic.rule,
            "field": diagnostic.field,
            "details": dict(diagnostic.details),
        },
    }


def diagnostics_to_sarif(
    diagnostics: Iterable[Diagnostic],
    tool_name: str = "vocablint",
    files: Mapping[str, str] | None = None,
) -> dict:
    """One SARIF 2.1.0 log from an iterable of diagnostics.

    ``files`` optionally maps specification names to the JSON files they
    were loaded from; diagnostics for those specs gain physical
    locations (file + rule definition line) so CI can annotate the spec
    source itself.
    """
    ordered = sorted(diagnostics, key=diagnostic_order)
    files = dict(files or {})
    lines = {spec: locate_rule_lines(path) for spec, path in files.items()}
    codes = sorted({d.code for d in ordered})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": [_rule_descriptor(code) for code in codes],
                    }
                },
                "results": [_result(d, files, lines) for d in ordered],
            }
        ],
    }
