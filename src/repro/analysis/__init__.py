"""Static analysis: vocablint (per spec) and the federation audit.

The paper (Definitions 3/4) leaves soundness and completeness of a
mapping specification ``K`` to human judgement.  This package mechanizes
everything short of that judgement: it synthesizes head bindings for
every rule, replays the matcher over them, and checks the results
against the subsumption, safety, and capability machinery — *without
executing a single query*.

Two analyzers share the diagnostic model:

* **vocablint** — one specification in isolation; stable ``VM0xx``
  codes (:data:`~repro.analysis.diagnostics.CATALOG`).  Surface:
  :func:`lint_specification` / ``repro lint``.
* **federation audit** — every spec/vocabulary/capability of a
  federation together; ``VF0xx`` codes
  (:data:`~repro.analysis.diagnostics.FEDERATION_CATALOG`), a coverage
  matrix, and semantics-preserving merge proposals from
  :mod:`repro.analysis.consolidate`.  Surface:
  :func:`audit_federation` / ``repro audit``.

Both export SARIF 2.1.0 via :func:`diagnostics_to_sarif` for CI
annotations.  See ``docs/static_analysis.md`` for the catalogs and the
audit-as-publish-gate workflow.
"""

from repro.analysis.checks import (
    LintContext,
    SubsumptionVerdict,
    classify_subsumption,
    prepare_context,
)
from repro.analysis.consolidate import (
    ConsolidationResult,
    MergeProposal,
    PairingStats,
    apply_proposals,
    candidate_pairs,
    consolidate_spec,
)
from repro.analysis.diagnostics import (
    CATALOG,
    FEDERATION_CATALOG,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
    catalog_entry,
    diagnostic_order,
)
from repro.analysis.federation import (
    CoverageMatrix,
    Federation,
    FederationReport,
    FederationSource,
    audit_federation,
    builtin_federations,
    federation_from_dict,
    federation_from_mediator,
    load_federation,
)
from repro.analysis.linter import (
    capability_from_dict,
    lint_many,
    lint_specification,
    vocabulary_from_dict,
)
from repro.analysis.sampling import (
    RuleSamples,
    SpecLiterals,
    harvest_literals,
    sample_rule,
)
from repro.analysis.sarif import diagnostics_to_sarif

__all__ = [
    "CATALOG",
    "FEDERATION_CATALOG",
    "CodeInfo",
    "ConsolidationResult",
    "CoverageMatrix",
    "Diagnostic",
    "Federation",
    "FederationReport",
    "FederationSource",
    "LintContext",
    "LintReport",
    "MergeProposal",
    "PairingStats",
    "RuleSamples",
    "Severity",
    "SpecLiterals",
    "SubsumptionVerdict",
    "apply_proposals",
    "audit_federation",
    "builtin_federations",
    "candidate_pairs",
    "capability_from_dict",
    "catalog_entry",
    "classify_subsumption",
    "consolidate_spec",
    "diagnostic_order",
    "diagnostics_to_sarif",
    "federation_from_dict",
    "federation_from_mediator",
    "harvest_literals",
    "lint_many",
    "lint_specification",
    "load_federation",
    "prepare_context",
    "sample_rule",
    "vocabulary_from_dict",
]
