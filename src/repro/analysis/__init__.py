"""vocablint — static analysis of mapping specifications.

The paper (Definitions 3/4) leaves soundness and completeness of a
mapping specification ``K`` to human judgement.  This package mechanizes
everything short of that judgement: it synthesizes head bindings for
every rule, replays the matcher over them, and checks the results
against the subsumption, safety, and capability machinery — *without
executing a single query*.

Findings carry stable ``VM0xx`` codes (see
:data:`~repro.analysis.diagnostics.CATALOG` and
``docs/static_analysis.md``), severities, and rule-level locations.
Surface: :func:`lint_specification` in code, ``repro lint`` on the
command line.
"""

from repro.analysis.checks import (
    LintContext,
    SubsumptionVerdict,
    classify_subsumption,
    prepare_context,
)
from repro.analysis.diagnostics import (
    CATALOG,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
    catalog_entry,
)
from repro.analysis.linter import (
    capability_from_dict,
    lint_many,
    lint_specification,
    vocabulary_from_dict,
)
from repro.analysis.sampling import (
    RuleSamples,
    SpecLiterals,
    harvest_literals,
    sample_rule,
)

__all__ = [
    "CATALOG",
    "CodeInfo",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "RuleSamples",
    "Severity",
    "SpecLiterals",
    "SubsumptionVerdict",
    "capability_from_dict",
    "catalog_entry",
    "classify_subsumption",
    "harvest_literals",
    "lint_many",
    "lint_specification",
    "prepare_context",
    "sample_rule",
    "vocabulary_from_dict",
]
