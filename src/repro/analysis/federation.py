"""Federation-wide static analysis (the ``VF0xx`` catalog).

vocablint (:mod:`repro.analysis.linter`) audits one specification in
isolation; a mediator federates *many*, and the failure modes that cost
the most debugging time only exist between them: a vocabulary region no
source answers, two sources mapping the same global term contradictorily,
translations that drift on the round trip, rules dead or shadowed once
each source's :class:`~repro.engine.capabilities.Capability` is applied.

:func:`audit_federation` loads every source's specification, vocabulary,
and capability, samples all of them over one *shared* constraint
universe (so identical head shapes in different specifications bind
identical groups), and emits :class:`~repro.analysis.diagnostics.
Diagnostic` findings with stable ``VF`` codes:

========  =======  ====================================================
VF001     error    unanswerable vocabulary region (no source covers it)
VF002     error    contradictory mappings of one group across sources
VF003     warning  round-trip drift (asymmetric translation pair)
VF004     error    divergent exact translations of one group
VF005     warning  rule dead against its own source's capability
VF006     warning  rule shadowed by another same-target source
VF007     warning  verified merge proposal (see ``consolidate``)
========  =======  ====================================================

Surface: :func:`audit_federation` in code, ``repro audit`` on the
command line; ``docs/static_analysis.md`` documents the catalog and the
audit-as-publish-gate workflow.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from itertools import islice, product

from repro.core.ast import Constraint, Query, conj
from repro.core.matching import Matching, RejectMatch, match_rule
from repro.core.subsume import prop_equivalent, prop_implies, prop_satisfiable
from repro.engine.capabilities import Capability
from repro.obs import trace as obs
from repro.rules.declarative import spec_from_dict
from repro.rules.spec import MappingSpecification
from repro.rules.vocabulary import ContextVocabulary

from repro.analysis.checks import ALL_CHECKS, Oracle, prepare_context, tautological
from repro.analysis.consolidate import MergeProposal, consolidate_spec
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    catalog_entry,
    diagnostic_order,
)
from repro.analysis.linter import capability_from_dict, vocabulary_from_dict

__all__ = [
    "FederationSource",
    "Federation",
    "CoverageMatrix",
    "FederationReport",
    "audit_federation",
    "federation_from_dict",
    "load_federation",
    "federation_from_mediator",
    "builtin_federations",
]


@dataclass(frozen=True)
class FederationSource:
    """One member of a federation: spec + declared vocabulary/capability."""

    name: str
    spec: MappingSpecification
    vocabulary: ContextVocabulary | None = None
    capability: Capability | None = None


@dataclass(frozen=True)
class Federation:
    """A set of sources mediated under one (optional) global vocabulary.

    ``vocabulary`` is the mediator context's declared vocabulary — the
    terms users can write.  Declaring it enables the coverage matrix and
    the VF001 unanswerable-region check.
    """

    name: str
    sources: tuple[FederationSource, ...]
    vocabulary: ContextVocabulary | None = None

    def source(self, name: str) -> FederationSource:
        for source in self.sources:
            if source.name == name:
                return source
        raise KeyError(f"federation {self.name!r} has no source {name!r}")


@dataclass(frozen=True)
class CoverageMatrix:
    """Vocabulary terms × sources: who answers what, and how well.

    Cell status: ``exact`` (some exact matching touches the constraint),
    ``covered`` (matched, inexactly), ``uncovered`` (the source maps it
    to True).
    """

    terms: tuple[str, ...]
    sources: tuple[str, ...]
    cells: tuple[tuple[str, ...], ...]  # rows align with ``terms``

    def to_dict(self) -> dict:
        return {
            "sources": list(self.sources),
            "rows": [
                {"term": term, "status": dict(zip(self.sources, row))}
                for term, row in zip(self.terms, self.cells)
            ],
        }

    def render(self) -> str:
        width = max((len(term) for term in self.terms), default=4)
        head = " ".join(f"{source:>12}" for source in self.sources)
        lines = [f"{'term':<{width}} {head}"]
        for term, row in zip(self.terms, self.cells):
            cells = " ".join(f"{status:>12}" for status in row)
            lines.append(f"{term:<{width}} {cells}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FederationReport:
    """Outcome of one :func:`audit_federation` run.

    ``diagnostics`` merges the per-source vocablint findings (VM codes)
    with the federation-level findings (VF codes), in the deterministic
    :func:`~repro.analysis.diagnostics.diagnostic_order`.
    """

    federation: str
    diagnostics: tuple[Diagnostic, ...]
    source_reports: tuple[LintReport, ...] = ()
    matrix: CoverageMatrix | None = None
    proposals: tuple[MergeProposal, ...] = ()
    stats: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.diagnostics, key=diagnostic_order))
        object.__setattr__(self, "diagnostics", ordered)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def filter(
        self,
        severity: Severity | None = None,
        codes: frozenset[str] | set[str] | None = None,
    ) -> FederationReport:
        """Keep diagnostics at/above ``severity`` and within ``codes``."""
        kept = self.diagnostics
        if severity is not None:
            kept = tuple(d for d in kept if d.severity >= severity)
        if codes:
            kept = tuple(d for d in kept if d.code in codes)
        return FederationReport(
            federation=self.federation,
            diagnostics=kept,
            source_reports=self.source_reports,
            matrix=self.matrix,
            proposals=self.proposals,
            stats=self.stats,
        )

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            out[str(diagnostic.severity)] += 1
        return out

    def to_dict(self) -> dict:
        counts = self.counts()
        return {
            "federation": self.federation,
            "summary": counts,
            "ok": counts["error"] == 0,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "coverage": self.matrix.to_dict() if self.matrix else None,
            "proposals": [p.to_dict() for p in self.proposals],
            "stats": dict(self.stats),
        }

    def render(self, verbose: bool = False) -> str:
        counts = self.counts()
        lines = [
            f"{self.federation}: {len(self.diagnostics)} diagnostic"
            f"{'' if len(self.diagnostics) == 1 else 's'}"
            f" ({counts['error']} error, {counts['warning']} warning,"
            f" {counts['info']} info)"
        ]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic}")
            if verbose:
                for key, value in diagnostic.details:
                    lines.append(f"      {key}: {value}")
        if not self.diagnostics:
            lines.append("  clean")
        if self.proposals:
            lines.append("merge proposals:")
            for proposal in self.proposals:
                lines.append(f"  {proposal}")
        if verbose and self.matrix is not None:
            lines.append("coverage matrix:")
            for row in self.matrix.render().splitlines():
                lines.append("  " + row)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


# ---------------------------------------------------------------------------
# Audit internals
# ---------------------------------------------------------------------------


def _vf(
    code: str,
    spec: str,
    message: str,
    rule: str | None = None,
    where: str = "",
    **details: object,
) -> Diagnostic:
    info = catalog_entry(code)
    return Diagnostic(
        code=code,
        severity=info.severity,
        spec=spec,
        message=message,
        rule=rule,
        field=where,
        details=tuple(sorted((k, str(v)) for k, v in details.items())),
    )


def _lint_with_samples(
    source: FederationSource, oracle: Oracle | None
) -> tuple[LintReport, dict]:
    """One vocablint pass, keeping the sampled matchings for reuse."""
    context = prepare_context(
        source.spec, source.vocabulary, source.capability, oracle
    )
    diagnostics: list[Diagnostic] = []
    for codes, check in ALL_CHECKS:
        with obs.span(f"audit.lint.{check.__name__}", codes=codes):
            diagnostics.extend(check(context))
    report = LintReport(
        spec=source.spec.name,
        diagnostics=tuple(diagnostics),
        stats=tuple(sorted(context.counters.items())),
    )
    return report, context.samples


def _probe_universe(
    federation: Federation, samples_by_source: Mapping[str, Mapping]
) -> list[Constraint]:
    """The shared constraint universe every source's matcher replays.

    Union of the declared global vocabulary's representative constraints
    and every group any source's sampler synthesized — so two sources
    whose heads bind the same constraint shape are compared on literally
    the same groups.
    """
    universe: set[Constraint] = set()
    if federation.vocabulary is not None:
        universe.update(federation.vocabulary.all_constraints())
    for samples in samples_by_source.values():
        for rule_samples in samples.values():
            for matching in rule_samples.matchings:
                universe.update(matching.constraints)
    return sorted(universe, key=str)


#: Replay caps per rule, mirroring the sampler's (the probe universe is
#: bigger than any one rule's synthesized pools, so the caps are looser).
_MAX_REPLAY_COMBOS = 2048
_MAX_REPLAY_MATCHINGS = 64


def _safe_potential(
    spec: MappingSpecification, universe: list[Constraint]
) -> list[Matching]:
    """All matchings of ``spec`` over ``universe``, tolerating crashes.

    The shared probe universe deliberately feeds every source constraints
    sampled from *other* sources' vocabularies, and a conversion function
    may crash on an off-type value (the single-spec sampler tolerates the
    same).  ``Matcher.potential`` would abort wholesale, so this replays
    per rule and per candidate combination, skipping only the crashing
    combinations — matchings that do exist are still found.
    """
    index = spec.compiled_index()
    ordered = sorted(universe, key=str)
    by_attr: dict[str, list[Constraint]] = {}
    for constraint in ordered:
        by_attr.setdefault(constraint.lhs.attr, []).append(constraint)
    found: list[Matching] = []
    for rule_id in index.candidate_ids(by_attr):
        pools = index.pools(rule_id, by_attr, ordered)
        if pools is None:
            continue
        rule = spec.rules[rule_id]
        seen: set[tuple] = set()
        kept = 0
        for combo in islice(product(*pools), _MAX_REPLAY_COMBOS):
            if len(set(combo)) != len(combo):
                continue
            try:
                matchings = match_rule(rule, combo)
            except RejectMatch:  # pragma: no cover - match_rule handles these
                continue
            except Exception:  # noqa: BLE001 - rule code is arbitrary
                continue
            for matching in matchings:
                key = (matching.constraints, matching.emission)
                if key not in seen:
                    seen.add(key)
                    found.append(matching)
                    kept += 1
            if kept >= _MAX_REPLAY_MATCHINGS:
                break
    return found


def _matchings_by_source(
    federation: Federation, universe: list[Constraint]
) -> dict[str, list[Matching]]:
    return {
        source.name: _safe_potential(source.spec, universe)
        for source in federation.sources
    }


def _group_emissions(
    matchings: list[Matching],
) -> dict[frozenset, list[Matching]]:
    table: dict[frozenset, list[Matching]] = {}
    for matching in matchings:
        table.setdefault(matching.constraints, []).append(matching)
    return table


def _render_group(group: frozenset) -> str:
    return "{" + ", ".join(sorted(map(str, group))) + "}"


def _check_coverage(
    federation: Federation,
) -> tuple[list[Diagnostic], CoverageMatrix | None]:
    """VF001 + the coverage matrix; needs the global vocabulary."""
    if federation.vocabulary is None:
        return [], None
    constraints = federation.vocabulary.all_constraints()
    names = tuple(source.name for source in federation.sources)
    status: dict[Constraint, dict[str, str]] = {
        c: dict.fromkeys(names, "uncovered") for c in constraints
    }
    for source in federation.sources:
        matchings = _safe_potential(source.spec, constraints)
        covered: set[Constraint] = set()
        exact_touched: set[Constraint] = set()
        for matching in matchings:
            covered.update(matching.constraints)
            if matching.exact:
                exact_touched.update(matching.constraints)
        for constraint in constraints:
            if constraint in exact_touched:
                status[constraint][source.name] = "exact"
            elif constraint in covered:
                status[constraint][source.name] = "covered"
    out: list[Diagnostic] = []
    for constraint in constraints:
        if all(state == "uncovered" for state in status[constraint].values()):
            out.append(
                _vf(
                    "VF001",
                    federation.name,
                    f"vocabulary constraint {constraint} is covered by no "
                    "source; the whole federation silently maps it to True",
                    where="vocabulary",
                    constraint=constraint,
                )
            )
    matrix = CoverageMatrix(
        terms=tuple(str(c) for c in constraints),
        sources=names,
        cells=tuple(
            tuple(status[c][name] for name in names) for c in constraints
        ),
    )
    return out, matrix


def _effective(matchings: list[Matching]) -> Query:
    return conj(sorted((m.emission for m in matchings), key=str))


def _check_cross_source_groups(
    federation: Federation, by_source: dict[str, list[Matching]]
) -> list[Diagnostic]:
    """VF002 contradictory + VF004 divergent-exact mappings per group."""
    tables = {name: _group_emissions(ms) for name, ms in by_source.items()}
    groups: set[frozenset] = set()
    for table in tables.values():
        groups.update(table)
    out: list[Diagnostic] = []
    seen: set[tuple] = set()
    for group in sorted(groups, key=_render_group):
        holders = [name for name in tables if group in tables[name]]
        if len(holders) < 2:
            continue
        for i, left in enumerate(holders):
            for right in holders[i + 1 :]:
                left_ms, right_ms = tables[left][group], tables[right][group]
                left_emission = _effective(left_ms)
                right_emission = _effective(right_ms)
                shared = left_emission.constraints() & right_emission.constraints()
                if not shared:
                    continue
                pair_key = (left, right, _render_group(group))
                if not prop_satisfiable(
                    conj(sorted((left_emission, right_emission), key=str))
                ):
                    if ("VF002",) + pair_key in seen:
                        continue
                    seen.add(("VF002",) + pair_key)
                    out.append(
                        _vf(
                            "VF002",
                            federation.name,
                            f"sources {left} and {right} map group "
                            f"{_render_group(group)} contradictorily: "
                            f"({left_emission}) vs ({right_emission}) "
                            "cannot hold together",
                            where="mapping",
                            sources=f"{left}, {right}",
                            group=_render_group(group),
                        )
                    )
                    continue
                left_exact = all(m.exact for m in left_ms)
                right_exact = all(m.exact for m in right_ms)
                if (
                    left_exact
                    and right_exact
                    and not prop_equivalent(left_emission, right_emission)
                ):
                    if ("VF004",) + pair_key in seen:
                        continue
                    seen.add(("VF004",) + pair_key)
                    out.append(
                        _vf(
                            "VF004",
                            federation.name,
                            f"sources {left} and {right} both translate "
                            f"{_render_group(group)} exactly, but to "
                            f"non-equivalent emissions ({left_emission}) "
                            f"vs ({right_emission}); at most one exactness "
                            "claim can hold",
                            where="mapping",
                            sources=f"{left}, {right}",
                            group=_render_group(group),
                        )
                    )
    return out


def _check_round_trips(
    federation: Federation, by_source: dict[str, list[Matching]]
) -> list[Diagnostic]:
    """VF003: c --A--> d --B--> e with e on c's attribute but e != c."""
    out: list[Diagnostic] = []
    seen: set[tuple] = set()
    for origin in federation.sources:
        for matching in by_source[origin.name]:
            if len(matching.constraints) != 1 or not matching.exact:
                continue
            (start,) = matching.constraints
            forward = matching.emission
            if not isinstance(forward, Constraint):
                continue
            for other in federation.sources:
                if other.name == origin.name:
                    continue
                returns = _safe_potential(other.spec, [forward])
                for back in returns:
                    if back.constraints != frozenset((forward,)):
                        continue
                    if not back.exact:
                        continue
                    landing = back.emission
                    if not isinstance(landing, Constraint):
                        continue
                    if landing.lhs.attr != start.lhs.attr:
                        continue
                    if landing == start or prop_equivalent(landing, start):
                        continue
                    key = (origin.name, other.name, str(start), str(landing))
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(
                        _vf(
                            "VF003",
                            origin.spec.name,
                            f"round trip drifts: {start} maps to {forward} "
                            f"via {matching.rule_name}, which {other.name} "
                            f"({back.rule_name}) maps back to {landing} — "
                            "an asymmetric translation pair",
                            rule=matching.rule_name,
                            where="emit",
                            via_source=other.name,
                            via_rule=back.rule_name,
                            start=start,
                            landing=landing,
                        )
                    )
    return out


def _supported(capability: Capability | None, query: Query) -> bool:
    if capability is None:
        return True
    return all(tautological(bad) for bad in capability.violations(query))


def _check_capability_dead(
    federation: Federation, by_source: dict[str, list[Matching]]
) -> list[Diagnostic]:
    """VF005: a rule fires but its source rejects every emission."""
    out: list[Diagnostic] = []
    for source in federation.sources:
        if source.capability is None:
            continue
        by_rule: dict[str, list[Matching]] = {}
        for matching in by_source[source.name]:
            by_rule.setdefault(matching.rule_name, []).append(matching)
        for rule in source.spec.rules:
            matchings = by_rule.get(rule.name)
            if not matchings:
                continue
            if any(_supported(source.capability, m.emission) for m in matchings):
                continue
            rejected = sorted(
                {
                    str(bad)
                    for m in matchings
                    for bad in source.capability.violations(m.emission)
                }
            )
            out.append(
                _vf(
                    "VF005",
                    source.spec.name,
                    f"rule fires but every emission is rejected by "
                    f"{source.name}'s capability (e.g. "
                    f"{rejected[0] if rejected else '?'}); dead weight at "
                    "the federation level",
                    rule=rule.name,
                    where="emit",
                    source=source.name,
                    rejected=", ".join(rejected),
                )
            )
    return out


def _check_cross_source_shadowing(
    federation: Federation, by_source: dict[str, list[Matching]]
) -> list[Diagnostic]:
    """VF006: rule fully covered by another source with the same target.

    Only specifications translating into the *same* target backend can
    shadow each other — equivalent emissions into different targets are
    the federation working as intended, not redundancy.
    """
    tables = {name: _group_emissions(ms) for name, ms in by_source.items()}
    out: list[Diagnostic] = []
    for source in federation.sources:
        peers = [
            peer
            for peer in federation.sources
            if peer.name != source.name
            and peer.spec.target == source.spec.target
        ]
        if not peers:
            continue
        by_rule: dict[str, list[Matching]] = {}
        for matching in by_source[source.name]:
            by_rule.setdefault(matching.rule_name, []).append(matching)
        for rule in source.spec.rules:
            matchings = by_rule.get(rule.name)
            if not matchings:
                continue
            shadowers: set[str] = set()
            covered = True
            for matching in matchings:
                holder = None
                for peer in peers:
                    candidates = tables[peer.name].get(matching.constraints, [])
                    for other in candidates:
                        if not _supported(peer.capability, other.emission):
                            continue
                        if prop_implies(other.emission, matching.emission):
                            holder = peer.name
                            break
                    if holder:
                        break
                if holder is None:
                    covered = False
                    break
                shadowers.add(holder)
            if covered and shadowers:
                others = ", ".join(sorted(shadowers))
                out.append(
                    _vf(
                        "VF006",
                        source.spec.name,
                        f"every matching is equivalently covered, within "
                        f"capability, by source(s) {others} mapping to the "
                        f"same target {source.spec.target!r}; the rule adds "
                        "nothing to the federation",
                        rule=rule.name,
                        where="head",
                        source=source.name,
                        shadowed_by=others,
                    )
                )
    return out


def audit_federation(
    federation: Federation,
    lint_sources: bool = True,
    consolidate: bool = True,
    oracle: Oracle | None = None,
) -> FederationReport:
    """Statically analyze a whole federation; the ``repro audit`` engine.

    Runs vocablint over every source (``lint_sources``), the VF001–VF006
    cross-source checks over a shared probe universe, and rule
    consolidation per source (``consolidate``, surfacing each verified
    :class:`MergeProposal` as a VF007 finding).
    """
    with obs.span(
        "audit.federation",
        federation=federation.name,
        sources=len(federation.sources),
    ):
        diagnostics: list[Diagnostic] = []
        source_reports: list[LintReport] = []
        samples_by_source: dict[str, dict] = {}
        stats: dict[str, int] = {"audit.sources": len(federation.sources)}
        with obs.span("audit.lint_sources"):
            for source in federation.sources:
                if lint_sources:
                    report, samples = _lint_with_samples(source, oracle)
                    source_reports.append(report)
                    diagnostics.extend(report.diagnostics)
                else:
                    context = prepare_context(
                        source.spec, source.vocabulary, source.capability, oracle
                    )
                    samples = context.samples
                samples_by_source[source.name] = samples

        universe = _probe_universe(federation, samples_by_source)
        stats["audit.probe_constraints"] = len(universe)
        with obs.span("audit.replay", constraints=len(universe)):
            by_source = _matchings_by_source(federation, universe)
        stats["audit.matchings"] = sum(len(ms) for ms in by_source.values())

        with obs.span("audit.checks"):
            coverage, matrix = _check_coverage(federation)
            diagnostics.extend(coverage)
            diagnostics.extend(_check_cross_source_groups(federation, by_source))
            diagnostics.extend(_check_round_trips(federation, by_source))
            diagnostics.extend(_check_capability_dead(federation, by_source))
            diagnostics.extend(
                _check_cross_source_shadowing(federation, by_source)
            )

        proposals: list[MergeProposal] = []
        if consolidate:
            with obs.span("audit.consolidate"):
                for source in federation.sources:
                    result = consolidate_spec(
                        source.spec,
                        vocabulary=source.vocabulary,
                        samples=samples_by_source[source.name],
                    )
                    stats["audit.pairs_examined"] = (
                        stats.get("audit.pairs_examined", 0)
                        + result.stats.pairs_examined
                    )
                    for proposal in result.proposals:
                        proposals.append(proposal)
                        diagnostics.append(
                            _vf(
                                "VF007",
                                proposal.spec,
                                f"rule {proposal.drop} is a "
                                f"{proposal.kind} of {proposal.keep} on "
                                f"{', '.join(proposal.groups)}; dropping it "
                                "is verified semantics-preserving",
                                rule=proposal.drop,
                                where="head",
                                keep=proposal.keep,
                                kind=proposal.kind,
                            )
                        )

        for diagnostic in diagnostics:
            stats[f"audit.diagnostics.{diagnostic.code}"] = (
                stats.get(f"audit.diagnostics.{diagnostic.code}", 0) + 1
            )
        stats["audit.diagnostics"] = len(diagnostics)
        if obs.enabled():
            for name, value in sorted(stats.items()):
                obs.count(name, value)
        return FederationReport(
            federation=federation.name,
            diagnostics=tuple(diagnostics),
            source_reports=tuple(source_reports),
            matrix=matrix,
            proposals=tuple(proposals),
            stats=tuple(sorted(stats.items())),
        )


# ---------------------------------------------------------------------------
# Loaders
# ---------------------------------------------------------------------------


def federation_from_dict(data: Mapping) -> Federation:
    """Build a :class:`Federation` from its JSON form.

    Expected shape::

        {"federation": "acses",
         "vocabulary": {...},                 # optional, global
         "sources": [
             {"name": "S1",
              "spec": {...},                  # declarative specification
              "vocabulary": {...},            # optional, per-source
              "capability": {...}},           # optional
             ...]}
    """
    name = data.get("federation") or data.get("name")
    if not name:
        raise ValueError("federation JSON needs a 'federation' name")
    entries = data.get("sources")
    if not entries:
        raise ValueError(f"federation {name!r} declares no sources")
    sources = []
    for entry in entries:
        spec = spec_from_dict(entry["spec"])
        sources.append(
            FederationSource(
                name=entry.get("name", spec.target),
                spec=spec,
                vocabulary=(
                    vocabulary_from_dict(entry["vocabulary"])
                    if "vocabulary" in entry
                    else None
                ),
                capability=(
                    capability_from_dict(entry["capability"])
                    if "capability" in entry
                    else None
                ),
            )
        )
    vocabulary = (
        vocabulary_from_dict(data["vocabulary"])
        if "vocabulary" in data
        else None
    )
    return Federation(
        name=name, sources=tuple(sources), vocabulary=vocabulary
    )


def load_federation(path: str) -> Federation:
    """Load a federation description from a JSON file."""
    with open(path) as handle:
        return federation_from_dict(json.load(handle))


def federation_from_mediator(name: str, mediator) -> Federation:
    """Wrap a live :class:`~repro.mediator.mediator.Mediator` for auditing.

    Capabilities come straight from the mediator's sources; vocabularies
    are not derivable from a mediator and stay undeclared.
    """
    sources = []
    for source_name, spec in sorted(mediator.specs.items()):
        engine_source = mediator.sources.get(source_name)
        sources.append(
            FederationSource(
                name=source_name,
                spec=spec,
                capability=(
                    getattr(engine_source, "capability", None)
                    if engine_source is not None
                    else None
                ),
            )
        )
    return Federation(name=name, sources=tuple(sources))


def builtin_federations() -> dict[str, Federation]:
    """Every built-in mediation scenario, wrapped for ``repro audit``."""
    from repro.mediator import (
        bookstore_federation,
        faculty_mediator,
        map_mediator,
        realty_mediator,
    )

    factories = {
        "bookstore": bookstore_federation,
        "faculty": faculty_mediator,
        "map": map_mediator,
        "realty": realty_mediator,
    }
    return {
        name: federation_from_mediator(name, factory())
        for name, factory in factories.items()
    }
