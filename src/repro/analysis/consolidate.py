"""Rule consolidation — semantics-preserving merge proposals.

The vocabulary-lifecycle problem: long-lived specifications accumulate
near-duplicate and subsumed rules (copy-pasted variants, superseded
mappings nobody deleted).  They bloat the compiled index and slow every
prematch, yet deleting one by hand risks changing translation semantics.

This module finds merge candidates and *proves* each proposal harmless
before surfacing it:

* :func:`candidate_pairs` — rule pairs worth comparing, pruned through
  the :class:`~repro.perf.index.CompiledRuleIndex` head signatures the
  hot path already maintains.  Two rules can only be duplicates or
  subsume each other on a shared constraint group if their heads bind
  the same (attr, op, view) shape, so rules are bucketed by signature
  key and only same-bucket pairs are examined — sub-quadratic on
  realistic libraries (``benchmarks/bench_analysis.py`` gates this at
  10k rules), with an ``all_pairs=True`` escape hatch that provably
  returns the same pairs.
* :func:`consolidate_spec` — analyzes each candidate pair on sampled
  matchings and emits a :class:`MergeProposal` only when dropping one
  rule is machine-checked semantics-preserving: for every constraint
  group the dropped rule matches, ``prop_equivalent(keep ∧ drop, keep)``
  holds (the kept emission already contributes everything the dropped
  one would), and exactness never weakens.
* :func:`apply_proposals` — builds a *new* consolidated specification;
  the input is never mutated.

Laconic schema mappings (ten Cate et al.) motivate the goal — a
redundancy-free core with unchanged semantics; containment of schema
mappings (Calì & Torlone) is the decision problem
``prop_implies``/``prop_equivalent`` mechanize propositionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import Query, conj
from repro.core.matching import Matching
from repro.core.subsume import prop_equivalent, prop_implies
from repro.obs import trace as obs
from repro.rules.spec import MappingSpecification
from repro.rules.vocabulary import ContextVocabulary

from repro.analysis.sampling import (
    RuleSamples,
    SpecLiterals,
    harvest_literals,
    sample_rule,
)

__all__ = [
    "PairingStats",
    "MergeProposal",
    "ConsolidationResult",
    "candidate_pairs",
    "consolidate_spec",
    "apply_proposals",
]

#: Signature-key wildcard; distinct from any literal attr/op/view name.
_ANY = "?"


@dataclass(frozen=True)
class PairingStats:
    """How much work candidate pairing did (and avoided)."""

    rules: int
    pairs_possible: int
    pairs_examined: int
    buckets: int

    @property
    def pruning_factor(self) -> float:
        """How many times fewer pairs than all-pairs comparison."""
        if self.pairs_examined == 0:
            return float(max(self.pairs_possible, 1))
        return self.pairs_possible / self.pairs_examined

    def to_dict(self) -> dict:
        return {
            "rules": self.rules,
            "pairs_possible": self.pairs_possible,
            "pairs_examined": self.pairs_examined,
            "buckets": self.buckets,
            "pruning_factor": round(self.pruning_factor, 2),
        }


@dataclass(frozen=True)
class MergeProposal:
    """One verified, non-destructive merge: drop ``drop``, keep ``keep``.

    ``verified`` is the machine-checked stamp: for every sampled
    constraint group of the dropped rule,
    ``prop_equivalent(conj(keep_emission, drop_emission), keep_emission)``
    held.  Proposals that fail the check are never emitted.
    """

    spec: str
    keep: str
    drop: str
    kind: str  # "duplicate" | "subsumed"
    groups: tuple[str, ...]
    verified: bool
    evidence: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "keep": self.keep,
            "drop": self.drop,
            "kind": self.kind,
            "groups": list(self.groups),
            "verified": self.verified,
            "evidence": dict(self.evidence),
        }

    def __str__(self) -> str:
        return (
            f"{self.spec}: drop {self.drop} (kept by {self.keep}, "
            f"{self.kind}, {'verified' if self.verified else 'UNVERIFIED'})"
        )


@dataclass(frozen=True)
class ConsolidationResult:
    """Outcome of :func:`consolidate_spec`."""

    spec: str
    proposals: tuple[MergeProposal, ...]
    stats: PairingStats

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "proposals": [p.to_dict() for p in self.proposals],
            "stats": self.stats.to_dict(),
        }


def _signature_key(spec: MappingSpecification, rule_id: int) -> tuple:
    """Order-insensitive head-shape key from the compiled index."""
    index = spec.compiled_index()
    return tuple(
        sorted(
            (sig.attr or _ANY, sig.op or _ANY, sig.view or _ANY)
            for sig in index.signature(rule_id)
        )
    )


def candidate_pairs(
    spec: MappingSpecification, all_pairs: bool = False
) -> tuple[list[tuple[str, str]], PairingStats]:
    """Rule-name pairs that could be duplicates or subsume each other.

    Two rules are candidates iff their head signature keys coincide —
    a necessary condition for matching the same constraint groups, since
    a head pattern only binds constraints its literal (attr, op, view)
    fields admit.  Indexed mode buckets rules by key (one dict pass);
    ``all_pairs=True`` compares every pair directly — same output, used
    by the bench to demonstrate the pruning factor.
    """
    keys = [_signature_key(spec, rule_id) for rule_id in range(len(spec.rules))]
    names = [rule.name for rule in spec.rules]
    n = len(names)
    possible = n * (n - 1) // 2
    pairs: list[tuple[str, str]] = []
    if all_pairs:
        examined = possible
        for i in range(n):
            for j in range(i + 1, n):
                if keys[i] == keys[j]:
                    pairs.append((names[i], names[j]))
        stats = PairingStats(
            rules=n, pairs_possible=possible, pairs_examined=examined, buckets=0
        )
    else:
        buckets: dict[tuple, list[int]] = {}
        for rule_id, key in enumerate(keys):
            buckets.setdefault(key, []).append(rule_id)
        examined = 0
        for members in buckets.values():
            if len(members) < 2:
                continue
            examined += len(members) * (len(members) - 1) // 2
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    pairs.append((names[members[a]], names[members[b]]))
        # Bucket order follows first-seen rule order, so pairs come out
        # in the same specification order as the all-pairs scan.
        stats = PairingStats(
            rules=n,
            pairs_possible=possible,
            pairs_examined=examined,
            buckets=len(buckets),
        )
    if obs.enabled():
        obs.count("consolidate.pairs_examined", stats.pairs_examined)
        obs.count("consolidate.pairs_found", len(pairs))
    return sorted(pairs), stats


def _group_table(samples: RuleSamples) -> dict[frozenset, list[Matching]]:
    table: dict[frozenset, list[Matching]] = {}
    for matching in samples.matchings:
        table.setdefault(matching.constraints, []).append(matching)
    return table


def _effective_emission(matchings: list[Matching]) -> Query:
    """What the rule contributes for one group: all emissions, conjoined."""
    return conj(sorted((m.emission for m in matchings), key=str))


def _render_group(group: frozenset) -> str:
    return "{" + ", ".join(sorted(map(str, group))) + "}"


def _propose(
    spec: MappingSpecification,
    keep: str,
    drop: str,
    keep_groups: dict[frozenset, list[Matching]],
    drop_groups: dict[frozenset, list[Matching]],
) -> MergeProposal | None:
    """A verified proposal to drop ``drop`` in favor of ``keep``, or None.

    Dropping is semantics-preserving when, for *every* group the dropped
    rule matches, the kept rule matches the same group with an emission
    at least as strong — conjoining the dropped emission changes nothing
    — and dropping never loses an exactness claim the kept rule cannot
    supply (an exact matching lost to a non-exact equivalent would
    silently widen the translation's exactness accounting).
    """
    if not drop_groups or not keep_groups:
        return None
    if not set(drop_groups) <= set(keep_groups):
        return None
    duplicate = set(drop_groups) == set(keep_groups)
    evidence: list[tuple[str, str]] = []
    for group in drop_groups:
        keep_emission = _effective_emission(keep_groups[group])
        drop_emission = _effective_emission(drop_groups[group])
        # The machine-checked semantics-preservation stamp: conjoining
        # the dropped emission onto the kept one changes nothing.
        if not prop_equivalent(
            conj(sorted((keep_emission, drop_emission), key=str)), keep_emission
        ):
            return None
        keep_exact = any(m.exact for m in keep_groups[group])
        drop_exact = any(m.exact for m in drop_groups[group])
        if drop_exact and not keep_exact:
            return None
        if duplicate and not prop_implies(drop_emission, keep_emission):
            duplicate = False
        evidence.append(
            (
                f"group {_render_group(group)}",
                f"keep emits ({keep_emission}), drop emits ({drop_emission})",
            )
        )
    return MergeProposal(
        spec=spec.name,
        keep=keep,
        drop=drop,
        kind="duplicate" if duplicate else "subsumed",
        groups=tuple(sorted(_render_group(g) for g in drop_groups)),
        verified=True,
        evidence=tuple(evidence),
    )


def consolidate_spec(
    spec: MappingSpecification,
    vocabulary: ContextVocabulary | None = None,
    samples: dict[str, RuleSamples] | None = None,
    all_pairs: bool = False,
) -> ConsolidationResult:
    """Find verified merge proposals for one specification.

    ``samples`` reuses an existing lint run's synthesized matchings;
    otherwise rules are sampled lazily — only rules appearing in some
    candidate pair pay the sampling cost, which is what keeps the
    analyzer linear-ish on 10k-rule libraries where almost every rule is
    in a singleton bucket.
    """
    with obs.span("consolidate.spec", spec=spec.name, rules=len(spec.rules)):
        pairs, stats = candidate_pairs(spec, all_pairs=all_pairs)
        literals: SpecLiterals | None = None
        cache: dict[str, RuleSamples] = dict(samples or {})

        def samples_for(name: str) -> RuleSamples:
            nonlocal literals
            if name not in cache:
                if literals is None:
                    literals = harvest_literals(spec)
                cache[name] = sample_rule(spec.get_rule(name), literals, vocabulary)
            return cache[name]

        proposals: list[MergeProposal] = []
        dropped: set[str] = set()
        for first, second in pairs:
            if first in dropped or second in dropped:
                continue  # already consolidated through another pair
            first_groups = _group_table(samples_for(first))
            second_groups = _group_table(samples_for(second))
            proposal = _propose(spec, first, second, first_groups, second_groups)
            if proposal is None:
                proposal = _propose(
                    spec, second, first, second_groups, first_groups
                )
            if proposal is not None:
                proposals.append(proposal)
                dropped.add(proposal.drop)
        if obs.enabled():
            obs.count("consolidate.proposals", len(proposals))
        return ConsolidationResult(
            spec=spec.name, proposals=tuple(proposals), stats=stats
        )


def apply_proposals(
    spec: MappingSpecification, proposals: tuple[MergeProposal, ...]
) -> MappingSpecification:
    """A *new* specification with every verified proposal's drop removed.

    Non-destructive: ``spec`` is untouched (same object, same version
    stamp).  Unverified proposals are refused loudly rather than
    silently skipped.
    """
    for proposal in proposals:
        if not proposal.verified:
            raise ValueError(
                f"refusing to apply unverified proposal {proposal}"
            )
        if proposal.spec != spec.name:
            raise ValueError(
                f"proposal {proposal} targets {proposal.spec!r}, "
                f"not {spec.name!r}"
            )
    dropped = {proposal.drop for proposal in proposals}
    return MappingSpecification(
        name=spec.name,
        target=spec.target,
        rules=tuple(rule for rule in spec.rules if rule.name not in dropped),
        description=spec.description,
    )
