"""Head-binding synthesis: make rules fire without a real query.

Static checks on a mapping rule need *matchings* — but a matching only
exists relative to concrete constraints.  This module manufactures them:
for each pattern of a rule it enumerates candidate constraints built from

* the pattern's own literals (attribute, view, operator, value);
* ``vocablint_hint`` metadata left by the DSL factories
  (:func:`~repro.rules.dsl.attr_in` allowed-name sets,
  :func:`~repro.rules.dsl.table_lookup` key samples);
* the declared :class:`~repro.rules.vocabulary.ContextVocabulary`
  (attribute names, operators, per-operator sample values);
* literals harvested from the *other* rules of the specification (view
  names, attribute names, operators) — a rule library is its own best
  value dictionary;
* per-operator default values (a word pattern for ``contains``, a year
  for ``during``, numbers for comparisons, …).

Each combination of one candidate per pattern is offered to
:func:`~repro.core.matching.match_rule`; conditions and ``let`` veto the
bad ones.  Exceptions other than :class:`RejectMatch` are recorded — a
conversion function crashing on an odd value is itself a finding
(``VM011``) when *no* combination matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice, product

from repro.core.ast import AttrRef, Constraint
from repro.core.matching import (
    AttrPattern,
    ConstraintPattern,
    Matching,
    RejectMatch,
    Rule,
    Var,
    match_rule,
)
from repro.core.values import Month, Range, Year
from repro.rules.spec import MappingSpecification
from repro.rules.vocabulary import ContextVocabulary
from repro.text.patterns import Word

__all__ = ["RuleSamples", "SpecLiterals", "harvest_literals", "sample_rule"]

#: Hard caps keeping the synthesis cheap on adversarial rule shapes.
MAX_CANDIDATES_PER_PATTERN = 24
MAX_COMBOS = 512
MAX_MATCHINGS = 16


@dataclass(frozen=True)
class SpecLiterals:
    """Literal material harvested from a whole specification."""

    attrs: tuple[str, ...]
    views: tuple[str, ...]
    ops: tuple[str, ...]
    values: tuple[object, ...]


@dataclass
class RuleSamples:
    """Synthesized matchings (and failures) for one rule."""

    rule: Rule
    matchings: list[Matching] = field(default_factory=list)
    raised: list[tuple[tuple[Constraint, ...], BaseException]] = field(
        default_factory=list
    )
    combos_tried: int = 0

    @property
    def fired(self) -> bool:
        return bool(self.matchings)


def _rule_hints(rule: Rule) -> list[dict]:
    hints = []
    for condition in rule.conditions:
        hint = getattr(condition, "vocablint_hint", None)
        if isinstance(hint, dict):
            hints.append(hint)
    for _, fn in rule.let:
        hint = getattr(fn, "vocablint_hint", None)
        if isinstance(hint, dict):
            hints.append(hint)
    return hints


def harvest_literals(spec: MappingSpecification) -> SpecLiterals:
    """Collect the literal attrs/views/ops/values the spec itself mentions."""
    attrs: list[str] = []
    views: list[str] = []
    ops: list[str] = []
    values: list[object] = []

    def _see(pool: list, item: object) -> None:
        if item not in pool:
            pool.append(item)

    def _see_attr_pattern(pattern: AttrPattern) -> None:
        if isinstance(pattern.attr, str):
            _see(attrs, pattern.attr)
        if isinstance(pattern.view, str):
            _see(views, pattern.view)

    for rule in spec.rules:
        for pattern in rule.patterns:
            if isinstance(pattern.lhs, AttrPattern):
                _see_attr_pattern(pattern.lhs)
            if isinstance(pattern.op, str):
                _see(ops, pattern.op)
            if isinstance(pattern.rhs, AttrPattern):
                _see_attr_pattern(pattern.rhs)
            elif not isinstance(pattern.rhs, Var):
                _see(values, pattern.rhs)
        for hint in _rule_hints(rule):
            if hint.get("kind") == "attr_in":
                for name in sorted(hint.get("allowed", ())):
                    _see(attrs, name)
    return SpecLiterals(
        attrs=tuple(attrs), views=tuple(views), ops=tuple(ops), values=tuple(values)
    )


def _default_values(op: str) -> list[object]:
    """Representative right-hand sides per operator shape."""
    if op == "contains":
        return [Word("sample")]
    if op == "during":
        return [Year(1997), Month(1997, 5)]
    if op == "in":
        return [("sample",)]
    if op in ("<", "<=", ">", ">=", "!="):
        return [10, 2.5]
    # Equality and anything unknown: cover strings, ints (a year and a
    # small month-like number), floats, and a range value.
    return ["sample", 1997, 3, 2.5, Range(1.0, 2.0)]


def _attr_candidates(
    component: object,
    var_hints: dict[str, list[str]],
    literals: SpecLiterals,
    vocabulary: ContextVocabulary | None,
) -> list[str]:
    if isinstance(component, str):
        return [component]
    if isinstance(component, Var) and component.name in var_hints:
        return list(var_hints[component.name])
    if vocabulary is not None:
        return [spec.name.split(".")[-1] for spec in vocabulary.attributes][:8]
    if literals.attrs:
        return list(literals.attrs[:8])
    return ["attr"]


def _view_candidates(component: object, literals: SpecLiterals) -> list[str | None]:
    if component is None:
        return [None]
    if isinstance(component, str):
        return [component]
    # A Var view requires a qualified reference; try the spec's own views.
    return list(literals.views[:4]) or ["v"]


def _index_candidates(component: object) -> list[int | None]:
    if component is None:
        return [None]
    if isinstance(component, Var):
        return [None, 1, 2]
    return [component]  # type: ignore[list-item]


def _op_candidates(component: object, literals: SpecLiterals) -> list[str]:
    if isinstance(component, str):
        return [component]
    ordered = list(literals.ops[:6])
    if "=" not in ordered:
        ordered.append("=")
    return ordered


def _value_candidates(
    op: str,
    attr_name: str,
    table_keys: list[object],
    literals: SpecLiterals,
    vocabulary: ContextVocabulary | None,
) -> list[object]:
    values: list[object] = []
    if vocabulary is not None:
        for spec in vocabulary.attributes:
            if spec.name.split(".")[-1] == attr_name:
                sample = spec.samples.get(op)
                if sample is not None:
                    values.append(sample)
    values.extend(table_keys)
    for value in literals.values[:4]:
        if value not in values:
            values.append(value)
    for value in _default_values(op):
        if value not in values:
            values.append(value)
    return values


def _build_refs(
    pattern: AttrPattern,
    var_hints: dict[str, list[str]],
    literals: SpecLiterals,
    vocabulary: ContextVocabulary | None,
) -> list[AttrRef]:
    refs: list[AttrRef] = []
    for name in _attr_candidates(pattern.attr, var_hints, literals, vocabulary):
        for view in _view_candidates(pattern.view, literals):
            for index in _index_candidates(pattern.index):
                path = (name,) if view is None else (view, name)
                ref = AttrRef(path, index if view is not None else None)
                if ref not in refs:
                    refs.append(ref)
    return refs


def _pattern_candidates(
    pattern: ConstraintPattern,
    var_hints: dict[str, list[str]],
    table_keys: list[object],
    literals: SpecLiterals,
    vocabulary: ContextVocabulary | None,
) -> list[Constraint]:
    if isinstance(pattern.lhs, Var):
        # A whole-reference variable accepts any qualification: offer the
        # bare attribute plus each view the specification mentions.
        names = _attr_candidates(pattern.lhs, var_hints, literals, vocabulary)
        lhs_refs = [AttrRef((name,)) for name in names]
        for view in literals.views[:2]:
            lhs_refs.extend(AttrRef((view, name)) for name in names)
    else:
        lhs_refs = _build_refs(pattern.lhs, var_hints, literals, vocabulary)

    candidates: list[Constraint] = []
    for op in _op_candidates(pattern.op, literals):
        for lhs in lhs_refs:
            if isinstance(pattern.rhs, AttrPattern):
                rhs_pool: list[object] = list(
                    _build_refs(pattern.rhs, var_hints, literals, vocabulary)
                )
            elif isinstance(pattern.rhs, Var):
                rhs_pool = _value_candidates(
                    op, lhs.attr, table_keys, literals, vocabulary
                )
            else:
                rhs_pool = [pattern.rhs]
            for rhs in rhs_pool:
                candidates.append(Constraint(lhs, op, rhs))
                if len(candidates) >= MAX_CANDIDATES_PER_PATTERN:
                    return candidates
    return candidates


def _collect_var_hints(rule: Rule) -> tuple[dict[str, list[str]], list[object]]:
    """Per-variable allowed attribute names, plus table key samples."""
    var_hints: dict[str, list[str]] = {}
    table_keys: list[object] = []
    for hint in _rule_hints(rule):
        kind = hint.get("kind")
        if kind == "attr_in":
            var_hints[hint["var"]] = sorted(hint.get("allowed", ()))
        elif kind == "table":
            for key in hint.get("keys", ()):
                if key not in table_keys:
                    table_keys.append(key)
    return var_hints, table_keys


def sample_rule(
    rule: Rule,
    literals: SpecLiterals,
    vocabulary: ContextVocabulary | None = None,
) -> RuleSamples:
    """Synthesize head bindings for ``rule`` and collect its matchings."""
    var_hints, table_keys = _collect_var_hints(rule)
    pools = [
        _pattern_candidates(pattern, var_hints, table_keys, literals, vocabulary)
        for pattern in rule.patterns
    ]
    samples = RuleSamples(rule=rule)
    seen: set[tuple[frozenset[Constraint], object]] = set()
    for combo in islice(product(*pools), MAX_COMBOS):
        if len(set(combo)) != len(combo):
            continue  # matchings assign patterns to distinct constraints
        samples.combos_tried += 1
        try:
            found = match_rule(rule, combo)
        except RejectMatch:  # pragma: no cover - match_rule handles these
            continue
        except Exception as exc:  # noqa: BLE001 - rule code is arbitrary
            if len(samples.raised) < 4:
                samples.raised.append((combo, exc))
            continue
        for matching in found:
            key = (matching.constraints, matching.emission)
            if key not in seen:
                seen.add(key)
                samples.matchings.append(matching)
        if len(samples.matchings) >= MAX_MATCHINGS:
            break
    return samples
