"""vocablint entry point: run the check suite over a specification.

:func:`lint_specification` is the library API behind ``repro lint``; it
prepares a :class:`~repro.analysis.checks.LintContext` (harvesting
literals and synthesizing head bindings once) and runs every registered
check, producing a :class:`~repro.analysis.diagnostics.LintReport`.

The run is instrumented with :mod:`repro.obs` like the rest of the
stack: a ``lint.spec`` span wrapping per-check child spans, plus the
``lint.*`` counters (rules, sampled matchings, subsumption verdicts,
diagnostics per code).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.engine.capabilities import Capability
from repro.obs import trace as obs
from repro.rules.spec import MappingSpecification
from repro.rules.vocabulary import AttributeSpec, ContextVocabulary

from repro.analysis.checks import ALL_CHECKS, Oracle, prepare_context
from repro.analysis.diagnostics import Diagnostic, LintReport

__all__ = [
    "lint_specification",
    "lint_many",
    "vocabulary_from_dict",
    "capability_from_dict",
]


def lint_specification(
    spec: MappingSpecification,
    vocabulary: ContextVocabulary | None = None,
    capability: Capability | None = None,
    oracle: Oracle | None = None,
) -> LintReport:
    """Statically analyze ``spec``; returns the full diagnostic report.

    ``vocabulary`` enables the reference and coverage checks (VM001,
    VM002, VM009) and sharpens head-binding synthesis; ``capability``
    enables the expressibility check (VM012); ``oracle`` extends the
    soundness check (VM003) across vocabularies.
    """
    with obs.span("lint.spec", spec=spec.name, rules=len(spec.rules)):
        with obs.span("lint.sample"):
            context = prepare_context(spec, vocabulary, capability, oracle)
        diagnostics: list[Diagnostic] = []
        for codes, check in ALL_CHECKS:
            with obs.span(f"lint.check.{check.__name__}", codes=codes):
                found = check(context)
            diagnostics.extend(found)
            for diagnostic in found:
                context.bump(f"lint.diagnostics.{diagnostic.code}")
        context.bump("lint.diagnostics", len(diagnostics))
        if obs.enabled():
            for name, value in sorted(context.counters.items()):
                obs.count(name, value)
        return LintReport(
            spec=spec.name,
            diagnostics=tuple(diagnostics),
            stats=tuple(sorted(context.counters.items())),
        )


def lint_many(
    specs: Mapping[str, MappingSpecification],
    vocabulary: ContextVocabulary | None = None,
    capability: Capability | None = None,
    oracle: Oracle | None = None,
) -> dict[str, LintReport]:
    """Lint several specifications; reports keyed like ``specs``."""
    return {
        name: lint_specification(spec, vocabulary, capability, oracle)
        for name, spec in specs.items()
    }


def vocabulary_from_dict(data: Mapping) -> ContextVocabulary:
    """Build a :class:`ContextVocabulary` from its JSON form.

    Expected shape::

        {"attributes": [{"name": "price", "operators": ["=", "<="],
                         "samples": {"=": 100}}, ...],
         "groups": [["area-min", "area-max"], ...]}
    """
    attributes = tuple(
        AttributeSpec(
            name=entry["name"],
            operators=tuple(entry.get("operators", ("=",))),
            samples=dict(entry.get("samples", {})),
        )
        for entry in data.get("attributes", ())
    )
    groups = tuple(tuple(group) for group in data.get("groups", ()))
    return ContextVocabulary(attributes=attributes, groups=groups)


def capability_from_dict(data: Mapping) -> Capability:
    """Build a :class:`Capability` from its JSON form.

    Expected shape::

        {"selections": [["price_cents", "<="], ...],
         "joins": [["name", "name", "="], ...]}
    """
    return Capability.of(
        selections=[tuple(pair) for pair in data.get("selections", ())],
        joins=[tuple(triple) for triple in data.get("joins", ())],
    )
