"""Diagnostic model for the ``vocablint`` and ``audit`` static analyzers.

A :class:`Diagnostic` is one finding about a mapping specification or a
federation of them: a stable code (``VM001`` … ``VM012`` for single-spec
findings, ``VF001`` … ``VF007`` for federation-wide ones), a
:class:`Severity`, a source location (rule name + field), a human
message, and machine-readable details.  :class:`LintReport` aggregates
the findings of one lint run with filtering, rendering, and JSON export.

The full catalogs, with the paper definitions each code mechanizes, live
in :data:`CATALOG` / :data:`FEDERATION_CATALOG` and are documented in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "CodeInfo",
    "CATALOG",
    "FEDERATION_CATALOG",
    "catalog_entry",
    "diagnostic_order",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable so thresholds are ``>=`` tests."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> Severity:
        try:
            return cls[text.upper()]
        except KeyError:
            known = ", ".join(s.name.lower() for s in cls)
            raise ValueError(f"unknown severity {text!r}; one of: {known}") from None


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    summary: str


#: The VM0xx catalog.  Codes are stable: never renumber, only append.
CATALOG: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "VM001",
            Severity.ERROR,
            "unknown-attribute",
            "a rule head references an attribute the declared vocabulary "
            "does not contain (likely a typo; the rule can never fire)",
        ),
        CodeInfo(
            "VM002",
            Severity.WARNING,
            "unknown-operator",
            "a rule head uses an operator the vocabulary does not declare "
            "for that attribute",
        ),
        CodeInfo(
            "VM003",
            Severity.ERROR,
            "unsound-emission",
            "CONFIRMED soundness violation: on a sampled binding the "
            "emission provably fails to subsume the matched group "
            "(Definition 3)",
        ),
        CodeInfo(
            "VM004",
            Severity.WARNING,
            "suspect-emission",
            "SUSPECTED soundness violation: the emission shares atoms with "
            "the matched group but does not propositionally subsume it",
        ),
        CodeInfo(
            "VM005",
            Severity.WARNING,
            "dead-rule",
            "no synthesized head binding produces a matching — the rule "
            "appears unreachable for the declared vocabulary",
        ),
        CodeInfo(
            "VM006",
            Severity.WARNING,
            "shadowed-rule",
            "every sampled matching of the rule is subsumed by another "
            "rule's matching of the same group; the rule contributes "
            "nothing to any minimal subsuming mapping",
        ),
        CodeInfo(
            "VM007",
            Severity.WARNING,
            "duplicate-matching",
            "two rules produce equivalent emissions for the same "
            "indecomposable constraint group",
        ),
        CodeInfo(
            "VM008",
            Severity.ERROR,
            "conflicting-matching",
            "two rules match the same constraint group with contradictory "
            "emissions — their conjunction is unsatisfiable, so the "
            "translation of that group is empty",
        ),
        CodeInfo(
            "VM009",
            Severity.ERROR,
            "coverage-gap",
            "a declared vocabulary constraint participates in no matching "
            "and silently maps to True (the Definition 4 completeness "
            "symptom audit_vocabulary detects)",
        ),
        CodeInfo(
            "VM010",
            Severity.INFO,
            "cross-matching-hazard",
            "an attribute pair is matched jointly by some rule, so "
            "conjunctions separating the pair are unsafe (Definition 5) "
            "and force TDQM through Disjunctivize",
        ),
        CodeInfo(
            "VM011",
            Severity.WARNING,
            "rule-raised",
            "every sampled head binding made the rule raise instead of "
            "matching or vetoing via RejectMatch — conversion functions "
            "should reject, not crash",
        ),
        CodeInfo(
            "VM012",
            Severity.ERROR,
            "inexpressible-emission",
            "a rule emission uses vocabulary the target capability cannot "
            "evaluate (Definition 1's expressibility requirement)",
        ),
    )
}


#: The VF0xx federation catalog (``repro.analysis.federation`` /
#: ``repro.analysis.consolidate``).  Stable like the VM catalog: never
#: renumber, only append.
FEDERATION_CATALOG: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "VF001",
            Severity.ERROR,
            "unanswerable-region",
            "a declared federation vocabulary constraint is covered by no "
            "source — the mediator silently widens it to True everywhere",
        ),
        CodeInfo(
            "VF002",
            Severity.ERROR,
            "contradictory-mapping",
            "two sources map the same global constraint group to emissions "
            "over shared vocabulary whose conjunction is unsatisfiable — "
            "the sources cannot both be right",
        ),
        CodeInfo(
            "VF003",
            Severity.WARNING,
            "round-trip-drift",
            "translating a constraint through one source and back through "
            "another lands on the same attribute with a different "
            "constraint — an asymmetric translation pair",
        ),
        CodeInfo(
            "VF004",
            Severity.ERROR,
            "divergent-exact-translation",
            "two sources translate the same group exactly but to "
            "non-equivalent emissions over shared vocabulary; at most one "
            "exactness claim can hold",
        ),
        CodeInfo(
            "VF005",
            Severity.WARNING,
            "federation-dead-rule",
            "a rule fires, but every emission it can produce is rejected "
            "by its own source's capability — dead weight at the "
            "federation level",
        ),
        CodeInfo(
            "VF006",
            Severity.WARNING,
            "cross-source-shadowed-rule",
            "every matching of a rule is equivalently covered, within "
            "capability, by another source mapping to the same target — "
            "the rule adds nothing to the federation",
        ),
        CodeInfo(
            "VF007",
            Severity.WARNING,
            "mergeable-rules",
            "consolidation found a semantics-preserving merge: a rule is a "
            "duplicate of, or subsumed by, another rule in the same spec "
            "(verdict machine-checked by prop_equivalent)",
        ),
    )
}


def catalog_entry(code: str) -> CodeInfo:
    try:
        return CATALOG[code]
    except KeyError:
        pass
    try:
        return FEDERATION_CATALOG[code]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code + severity + location + message + details."""

    code: str
    severity: Severity
    spec: str
    message: str
    rule: str | None = None
    field: str = ""
    details: tuple[tuple[str, str], ...] = ()

    @property
    def title(self) -> str:
        return catalog_entry(self.code).title

    @property
    def location(self) -> str:
        """``spec:rule[field]`` — the closest thing rules have to a line."""
        where = self.spec
        if self.rule is not None:
            where += f":{self.rule}"
        if self.field:
            where += f"[{self.field}]"
        return where

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "title": self.title,
            "severity": str(self.severity),
            "spec": self.spec,
            "rule": self.rule,
            "field": self.field,
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"{self.code} {str(self.severity):<7} {self.location}: {self.message}"


def diagnostic_order(diagnostic: Diagnostic) -> tuple:
    """Total order over diagnostics: code, rule, field, then tie-breaks.

    The order is a pure function of the diagnostic's own fields — never
    of check registration or iteration order — so ``--json`` output is
    byte-stable across runs and refactors.
    """
    return (
        diagnostic.code,
        diagnostic.spec,
        diagnostic.rule or "",
        diagnostic.field,
        -int(diagnostic.severity),
        diagnostic.message,
        diagnostic.details,
    )


_sort_key = diagnostic_order


@dataclass(frozen=True)
class LintReport:
    """Outcome of one ``lint_specification`` run."""

    spec: str
    diagnostics: tuple[Diagnostic, ...]
    stats: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.diagnostics, key=_sort_key))
        object.__setattr__(self, "diagnostics", ordered)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.filter(severity=Severity.ERROR).diagnostics

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity == Severity.WARNING
        )

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def filter(
        self,
        severity: Severity | None = None,
        codes: frozenset[str] | set[str] | None = None,
    ) -> LintReport:
        """Keep diagnostics at/above ``severity`` and within ``codes``."""
        kept = self.diagnostics
        if severity is not None:
            kept = tuple(d for d in kept if d.severity >= severity)
        if codes:
            kept = tuple(d for d in kept if d.code in codes)
        return LintReport(spec=self.spec, diagnostics=kept, stats=self.stats)

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            out[str(diagnostic.severity)] += 1
        return out

    def to_dict(self) -> dict:
        counts = self.counts()
        return {
            "spec": self.spec,
            "summary": counts,
            "ok": counts["error"] == 0,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "stats": dict(self.stats),
        }

    def render(self, verbose: bool = False) -> str:
        counts = self.counts()
        head = (
            f"{self.spec}: {len(self.diagnostics)} diagnostic"
            f"{'' if len(self.diagnostics) == 1 else 's'}"
            f" ({counts['error']} error, {counts['warning']} warning,"
            f" {counts['info']} info)"
        )
        lines = [head]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic}")
            if verbose:
                for key, value in diagnostic.details:
                    lines.append(f"      {key}: {value}")
        if not self.diagnostics:
            lines.append("  clean")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
