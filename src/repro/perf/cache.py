"""LRU translation cache — memoized whole-query translations.

A mediator serving heavy traffic re-translates the same canonical
queries against the same specifications constantly.  Translation is pure
(a function of the normalized query and the specification's rule set),
so whole results can be memoized:

* **Key** — ``(algorithm, specification name, specification version,
  query fingerprint)``.  The version stamp is bumped by every
  ``add_rule``/``remove_rule``, so entries built against an outdated
  rule set can never be served; the fingerprint collapses ∧/∨
  commutativity and join orientation (see :mod:`repro.perf.fingerprint`).
* **Value** — the full :class:`~repro.core.tdqm.TranslationResult` /
  :class:`~repro.core.dnf_mapper.DNFMapResult`, shared by reference
  (results are immutable in practice: never mutate a cached result).
* **Eviction** — least-recently-used beyond ``maxsize`` entries.

Counters (``perf.cache.hits`` / ``misses`` / ``evictions`` /
``invalidations``) are exported through :mod:`repro.obs` whenever a
tracer is active, and are always available locally via :attr:`
TranslationCache.stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ast import Query
from repro.core.normalize import normalize
from repro.obs import trace as obs
from repro.perf.fingerprint import query_fingerprint
from repro.rules.spec import MappingSpecification

if TYPE_CHECKING:
    from repro.core.dnf_mapper import DNFMapResult
    from repro.core.tdqm import TranslationResult

__all__ = ["CacheStats", "TranslationCache", "translate_batch"]

#: Cache key: (algorithm, spec name, spec version, query fingerprint).
_Key = tuple[str, str, int, str]

_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def to_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class TranslationCache:
    """An LRU memo of whole translations (see module docstring).

    One cache may serve any number of specifications; keys embed the
    specification name *and* version, so mutation invalidates logically
    (stale entries become unreachable) while :meth:`invalidate` reclaims
    the memory eagerly.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"TranslationCache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[_Key, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # -- bookkeeping -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: _Key) -> bool:
        return key in self._entries

    @property
    def stats(self) -> CacheStats:
        """A snapshot of hit/miss/eviction/size counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            size=len(self._entries),
            maxsize=self.maxsize,
        )

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._invalidations += len(self._entries)
        self._entries.clear()

    def invalidate(self, spec: MappingSpecification | str | None = None) -> int:
        """Eagerly drop entries for ``spec`` (by name), or all when ``None``.

        Version-stamped keys already make stale entries unreachable after
        a mutation; this reclaims their slots.  Returns the number of
        entries dropped.
        """
        if spec is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            name = spec if isinstance(spec, str) else spec.name
            stale = [key for key in self._entries if key[1] == name]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        self._invalidations += dropped
        if dropped:
            obs.count("perf.cache.invalidations", dropped)
        return dropped

    # -- the LRU core ----------------------------------------------------------

    def _lookup(self, key: _Key) -> object:
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self._misses += 1
            obs.count("perf.cache.misses")
            return _MISS
        self._entries.move_to_end(key)
        self._hits += 1
        obs.count("perf.cache.hits")
        return entry

    def _store(self, key: _Key, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1
            obs.count("perf.cache.evictions")

    # -- cached translation entry points --------------------------------------

    def tdqm(self, query: Query, spec: MappingSpecification) -> "TranslationResult":
        """Cached :func:`repro.core.tdqm.tdqm_translate` for ``query``."""
        prepared = normalize(query)
        return self.tdqm_prepared(
            prepared, query_fingerprint(prepared, normalized=True), spec
        )

    def tdqm_prepared(
        self, normalized_query: Query, fingerprint: str, spec: MappingSpecification
    ) -> "TranslationResult":
        """Cached TDQM where the caller pre-normalized and fingerprinted.

        The batch path uses this to share normalization and fingerprinting
        across every specification a query is translated for.
        """
        from repro.core.tdqm import tdqm_translate

        key = ("tdqm", spec.name, spec.version, fingerprint)
        entry = self._lookup(key)
        if entry is not _MISS:
            return entry  # type: ignore[return-value]
        result = tdqm_translate(normalized_query, spec)
        self._store(key, result)
        return result

    def dnf(self, query: Query, spec: MappingSpecification) -> "DNFMapResult":
        """Cached :func:`repro.core.dnf_mapper.dnf_map_translate`."""
        from repro.core.dnf_mapper import dnf_map_translate

        prepared = normalize(query)
        key = (
            "dnf",
            spec.name,
            spec.version,
            query_fingerprint(prepared, normalized=True),
        )
        entry = self._lookup(key)
        if entry is not _MISS:
            return entry  # type: ignore[return-value]
        result = dnf_map_translate(prepared, spec)
        self._store(key, result)
        return result


def translate_batch(
    queries: Sequence[Query],
    specs: Mapping[str, MappingSpecification],
    cache: TranslationCache | None = None,
) -> "list[dict[str, TranslationResult]]":
    """Translate many queries for many specifications, sharing the setup.

    Normalization and fingerprinting run once per query (not once per
    (query, spec) pair), each specification's compiled rule index is
    built once up front, and all translations funnel through one
    :class:`TranslationCache` — so duplicate queries in the batch, and
    queries seen by an earlier batch using the same cache, cost a lookup.

    Returns one ``{spec name: TranslationResult}`` dict per input query,
    in input order.
    """
    cache = cache if cache is not None else TranslationCache()
    with obs.span("translate_batch", queries=len(queries), specs=len(specs)):
        prepared = [normalize(query) for query in queries]
        fingerprints = [query_fingerprint(q, normalized=True) for q in prepared]
        out: list[dict[str, TranslationResult]] = [{} for _ in prepared]
        for name in sorted(specs):
            spec = specs[name]
            spec.compiled_index()  # build once, before the query loop
            for i, (query, fingerprint) in enumerate(zip(prepared, fingerprints)):
                out[i][name] = cache.tdqm_prepared(query, fingerprint, spec)
        return out
