"""LRU translation cache — memoized whole-query translations.

A mediator serving heavy traffic re-translates the same canonical
queries against the same specifications constantly.  Translation is pure
(a function of the normalized query and the specification's rule set),
so whole results can be memoized:

* **Key** — ``(algorithm, specification name, specification version,
  content digest, query fingerprint)``.  The version stamp is bumped by
  every ``add_rule``/``remove_rule``, so entries built against an
  outdated rule set can never be served; the content digest
  (:attr:`~repro.rules.MappingSpecification.content_digest`) guards the
  cross-object case — version stamps are a per-process counter, so a
  *different* spec object (a hot-reloaded replacement, a fresh worker)
  can legitimately carry the same ``(name, version)`` with different
  rules.  The fingerprint collapses ∧/∨ commutativity and join
  orientation (see :mod:`repro.perf.fingerprint`).
* **Value** — the full :class:`~repro.core.tdqm.TranslationResult` /
  :class:`~repro.core.dnf_mapper.DNFMapResult`, shared by reference
  (results are immutable in practice: never mutate a cached result).
* **Eviction** — least-recently-used beyond ``maxsize`` entries.

The cache is **thread-safe**: an internal :class:`threading.RLock`
guards the LRU order, the counters, and eviction, so one cache can be
shared by a resilient mediator's fan-out pool and by
:class:`repro.serve.MediationService` client threads.  Concurrent
misses on the *same* key are **single-flighted**: the first thread (the
leader) runs the translation while the others wait and receive the
identical result object — N concurrent misses cost one translation,
not N.  A follower counts as a hit (it was served from the in-flight
computation), so ``hits + misses == lookups`` holds exactly under any
interleaving.

Counters (``perf.cache.hits`` / ``misses`` / ``evictions`` /
``invalidations`` / ``coalesced``) are exported through :mod:`repro.obs`
whenever a tracer is active, and are always available locally via
:attr:`TranslationCache.stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ast import Query
from repro.core.normalize import normalize
from repro.obs import trace as obs
from repro.perf.fingerprint import query_fingerprint
from repro.rules.spec import MappingSpecification

if TYPE_CHECKING:
    from repro.core.dnf_mapper import DNFMapResult
    from repro.core.tdqm import TranslationResult

__all__ = ["CacheStats", "TranslationCache", "translate_batch"]

#: Cache key: (algorithm, spec name, spec version, spec content digest,
#: query fingerprint).
_Key = tuple[str, str, int, str, str]

_MISS = object()


class _InFlight:
    """One in-progress computation: the leader resolves, followers wait."""

    __slots__ = ("_done", "_value", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: object = None
        self._error: BaseException | None = None

    def resolve(self, value: object) -> None:
        self._value = value
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self) -> object:
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._value


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int
    #: Lookups served by joining another thread's in-flight translation
    #: (a subset of ``hits``).
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def to_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "coalesced": self.coalesced,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class TranslationCache:
    """An LRU memo of whole translations (see module docstring).

    One cache may serve any number of specifications; keys embed the
    specification name *and* version, so mutation invalidates logically
    (stale entries become unreachable) while :meth:`invalidate` reclaims
    the memory eagerly.  All public entry points are thread-safe, and
    concurrent misses on one key run a single translation (single-flight).
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"TranslationCache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._entries: OrderedDict[_Key, object] = OrderedDict()
        self._inflight: dict[_Key, _InFlight] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._coalesced = 0

    # -- bookkeeping -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: _Key) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of hit/miss/eviction/size counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                maxsize=self.maxsize,
                coalesced=self._coalesced,
            )

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            dropped = len(self._entries)
            self._invalidations += dropped
            self._entries.clear()
        if dropped:
            obs.count("perf.cache.invalidations", dropped)

    def invalidate(self, spec: MappingSpecification | str | None = None) -> int:
        """Eagerly drop entries for ``spec`` (by name), or all when ``None``.

        Version-stamped keys already make stale entries unreachable after
        a mutation; this reclaims their slots.  Returns the number of
        entries dropped.
        """
        with self._lock:
            if spec is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                name = spec if isinstance(spec, str) else spec.name
                stale = [key for key in self._entries if key[1] == name]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self._invalidations += dropped
        if dropped:
            obs.count("perf.cache.invalidations", dropped)
        return dropped

    # -- the LRU core ----------------------------------------------------------

    def _lookup(self, key: _Key) -> object:
        with self._lock:
            return self._lookup_locked(key)

    def _lookup_locked(self, key: _Key) -> object:
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self._misses += 1
            obs.count("perf.cache.misses")
            return _MISS
        self._entries.move_to_end(key)
        self._hits += 1
        obs.count("perf.cache.hits")
        return entry

    def _store(self, key: _Key, value: object) -> None:
        with self._lock:
            self._store_locked(key, value)

    def _store_locked(self, key: _Key, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1
            obs.count("perf.cache.evictions")

    def _get_or_compute(self, key: _Key, compute: Callable[[], object]) -> object:
        """Hit, join an in-flight computation, or lead one (single-flight).

        Exactly one thread (the leader) runs ``compute`` per concurrent
        key; followers block until it resolves and receive the identical
        object.  The leader counts the miss, each follower counts a hit
        (plus ``perf.cache.coalesced``), so ``hits + misses == lookups``.
        A failed computation propagates to the leader *and* every
        follower, and is not cached.
        """
        leader = False
        with self._lock:
            entry = self._entries.get(key, _MISS)
            if entry is not _MISS:
                self._entries.move_to_end(key)
                self._hits += 1
                obs.count("perf.cache.hits")
                return entry
            flight = self._inflight.get(key)
            if flight is None:
                leader = True
                flight = self._inflight[key] = _InFlight()
                self._misses += 1
                obs.count("perf.cache.misses")
            else:
                # Follower: served by the leader's in-flight translation.
                self._hits += 1
                self._coalesced += 1
                obs.count("perf.cache.hits")
                obs.count("perf.cache.coalesced")
        if not leader:
            return flight.wait()
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            flight.fail(exc)
            raise
        with self._lock:
            self._store_locked(key, value)
            self._inflight.pop(key, None)
        flight.resolve(value)
        return value

    # -- export / import (snapshot support) ------------------------------------

    def export_entries(
        self, limit: int | None = None, *, algos: tuple[str, ...] = ("tdqm",)
    ) -> list[tuple[_Key, object]]:
        """The hottest entries, most-recently-used first.

        The snapshot layer (:mod:`repro.serve.snapshot`) persists these
        so a restarted worker starts warm.  ``limit`` bounds the export
        to the hottest entries; ``algos`` filters by algorithm tag
        (snapshots carry TDQM results — the serving hot path).  The
        export is a consistent point-in-time copy: keys and value
        references are captured under the cache lock, and cached values
        are immutable by contract.
        """
        with self._lock:
            items = list(self._entries.items())
        items.reverse()  # OrderedDict iterates cold-first; snapshots want hot-first
        out = [(key, value) for key, value in items if key[0] in algos]
        return out if limit is None else out[:limit]

    def import_entry(self, key: _Key, value: object) -> bool:
        """Seed one entry without touching the hit/miss counters.

        Restores from a snapshot must not distort the serving
        statistics, so an import is neither a hit nor a miss (evictions
        beyond ``maxsize`` still count — they are real).  An entry
        already present wins over the import (the live entry is newer);
        returns whether the entry was stored.
        """
        with self._lock:
            if key in self._entries:
                return False
            self._store_locked(key, value)
            return True

    # -- cached translation entry points --------------------------------------

    def tdqm(self, query: Query, spec: MappingSpecification) -> "TranslationResult":
        """Cached :func:`repro.core.tdqm.tdqm_translate` for ``query``."""
        prepared = normalize(query)
        return self.tdqm_prepared(
            prepared, query_fingerprint(prepared, normalized=True), spec
        )

    def tdqm_prepared(
        self, normalized_query: Query, fingerprint: str, spec: MappingSpecification
    ) -> "TranslationResult":
        """Cached TDQM where the caller pre-normalized and fingerprinted.

        The batch path uses this to share normalization and fingerprinting
        across every specification a query is translated for.
        """
        from repro.core.tdqm import tdqm_translate

        key = ("tdqm", spec.name, spec.version, spec.content_digest, fingerprint)
        return self._get_or_compute(  # type: ignore[return-value]
            key, lambda: tdqm_translate(normalized_query, spec)
        )

    def dnf(self, query: Query, spec: MappingSpecification) -> "DNFMapResult":
        """Cached :func:`repro.core.dnf_mapper.dnf_map_translate`."""
        from repro.core.dnf_mapper import dnf_map_translate

        prepared = normalize(query)
        key = (
            "dnf",
            spec.name,
            spec.version,
            spec.content_digest,
            query_fingerprint(prepared, normalized=True),
        )
        return self._get_or_compute(  # type: ignore[return-value]
            key, lambda: dnf_map_translate(prepared, spec)
        )

    def translate_batch(
        self,
        queries: Sequence[Query],
        specs: Mapping[str, MappingSpecification],
    ) -> "list[dict[str, TranslationResult]]":
        """:func:`translate_batch` through this cache (method form)."""
        return translate_batch(queries, specs, cache=self)


def translate_batch(
    queries: Sequence[Query],
    specs: Mapping[str, MappingSpecification],
    cache: TranslationCache | None = None,
    *,
    interpret: bool = False,
) -> "list[dict[str, TranslationResult]]":
    """Translate many queries for many specifications, sharing the setup.

    Normalization and fingerprinting run once per query (not once per
    (query, spec) pair), each specification's compiled rule index is
    built once up front, and all translations funnel through one
    :class:`TranslationCache` — so duplicate queries in the batch, and
    queries seen by an earlier batch using the same cache, cost a lookup.

    ``interpret=True`` skips the cache and runs every translation on the
    interpreted matcher (the :mod:`repro.perf.compile` oracle), so the
    results share no memoized state with compiled runs.

    Returns one ``{spec name: TranslationResult}`` dict per input query,
    in input order.
    """
    cache = cache if cache is not None else TranslationCache()
    with obs.span("translate_batch", queries=len(queries), specs=len(specs)):
        prepared = [normalize(query) for query in queries]
        fingerprints = [query_fingerprint(q, normalized=True) for q in prepared]
        out: list[dict[str, TranslationResult]] = [{} for _ in prepared]
        for name in sorted(specs):
            spec = specs[name]
            spec.compiled_index()  # build once, before the query loop
            if interpret:
                from repro.core.tdqm import tdqm_translate

                matcher = spec.matcher(interpret=True)
                for i, query in enumerate(prepared):
                    out[i][name] = tdqm_translate(query, matcher)
                continue
            for i, (query, fingerprint) in enumerate(zip(prepared, fingerprints)):
                out[i][name] = cache.tdqm_prepared(query, fingerprint, spec)
        return out
