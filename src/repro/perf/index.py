"""Compiled rule index — attribute-indexed rule dispatch for the matcher.

The naive matcher tries every rule of the specification against every
constraint universe.  Realistic libraries are wide (hundreds of rules)
while any one query touches a handful of attributes, so almost all of
that work is provably fruitless: a rule whose head contains a pattern
with a *literal* attribute name can only match a universe containing a
constraint on that attribute (``_quick_compatible`` re-derives this per
call today).

:class:`CompiledRuleIndex` hoists that screen out of the hot path, once
per specification *version*:

* a per-rule **head signature** — the literal (attr, op, view) fields of
  every constraint pattern;
* the **required attribute set** per rule — the literal attr names that
  must all be present for any matching to exist;
* an **inverted index** attr → rules requiring that attr, so candidate
  rules are found by counting bucket hits instead of scanning the
  library.

Correctness: the screen is exactly the one ``match_rule`` applies via
``_quick_compatible`` — the index changes *which rules are probed*, never
what a probed rule returns, so matchings are bit-identical with and
without it (property-tested in ``tests/test_perf_properties.py``).

Staleness: the index pins the specification version it was built from;
probing after an ``add_rule``/``remove_rule`` raises
:class:`~repro.core.errors.StaleIndexError` rather than silently
answering from the outdated rule set.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ast import Constraint
from repro.core.errors import StaleIndexError
from repro.core.matching import AttrPattern, Rule
from repro.obs import trace as obs
from repro.perf.compile import CompiledRule, compile_rule

if TYPE_CHECKING:
    from repro.rules.spec import MappingSpecification

__all__ = ["HeadSignature", "CompiledRuleIndex"]

#: Bound on the per-index universe -> prematch memo; long-lived serving
#: processes see a finite set of hot universes, adversarial streams just
#: lose warmth when the table recycles.
_PREMATCH_CAP = 4096


@dataclass(frozen=True)
class HeadSignature:
    """The literal fields of one constraint pattern (``None`` = variable).

    Mirrors exactly the screens of ``matching._quick_compatible``: a
    constraint can satisfy the pattern only if every literal field
    matches.  Variable fields accept anything.
    """

    attr: str | None
    op: str | None
    view: str | None

    def admits(self, constraint: Constraint) -> bool:
        """Can ``constraint`` possibly satisfy this pattern?"""
        if self.op is not None and self.op != constraint.op:
            return False
        if self.attr is not None and self.attr != constraint.lhs.attr:
            return False
        if self.view is not None and self.view != constraint.lhs.view:
            return False
        return True


def _signature(rule: Rule) -> tuple[HeadSignature, ...]:
    sigs = []
    for pattern in rule.patterns:
        lhs = pattern.lhs
        attr = view = None
        if isinstance(lhs, AttrPattern):
            attr = lhs.attr if isinstance(lhs.attr, str) else None
            view = lhs.view if isinstance(lhs.view, str) else None
        op = pattern.op if isinstance(pattern.op, str) else None
        sigs.append(HeadSignature(attr=attr, op=op, view=view))
    return tuple(sigs)


class CompiledRuleIndex:
    """Per-specification candidate-rule dispatch (see module docstring).

    Built lazily by :meth:`MappingSpecification.compiled_index` and
    shared by every matcher of that specification until the next
    mutation.  All probes verify freshness against the owning
    specification's version stamp.
    """

    __slots__ = (
        "__weakref__",
        "spec_name",
        "version",
        "digest",
        "_spec",
        "_rules",
        "_signatures",
        "_required",
        "_wildcard",
        "_by_attr",
        "_compiled",
        "_prematch",
    )

    def __init__(self, spec: MappingSpecification):
        # A weak back-reference: the spec owns the index (strongly, via
        # its _compiled_index slot), so a strong reference here would
        # form a cycle that keeps a swapped-out spec — and every compiled
        # closure and memo hanging off this index — alive until a gc
        # pass.  Weak means plain refcounting frees the whole subgraph
        # the moment a hot reload drops the last spec reference.
        self._spec = weakref.ref(spec)
        self.spec_name: str = spec.name
        self.version: int = spec.version
        self.digest: str = spec.content_digest
        self._rules: tuple[Rule, ...] = spec.rules
        self._signatures: tuple[tuple[HeadSignature, ...], ...] = tuple(
            _signature(rule) for rule in spec.rules
        )
        self._required: tuple[frozenset[str], ...] = tuple(
            frozenset(sig.attr for sig in sigs if sig.attr is not None)
            for sigs in self._signatures
        )
        by_attr: dict[str, list[int]] = {}
        wildcard: list[int] = []
        for rule_id, required in enumerate(self._required):
            if not required:
                wildcard.append(rule_id)
                continue
            for name in required:
                by_attr.setdefault(name, []).append(rule_id)
        self._by_attr: dict[str, tuple[int, ...]] = {
            name: tuple(ids) for name, ids in by_attr.items()
        }
        self._wildcard: tuple[int, ...] = tuple(wildcard)
        # Compiled closures (repro.perf.compile), built lazily per rule on
        # first dispatch so index construction stays cheap for analysis
        # tooling that never matches.  Sharing the index's lifetime pins
        # every closure and memo to this specification version.
        self._compiled: list[CompiledRule | None] = [None] * len(self._rules)
        # Whole-prematch memo for compiled dispatch: constraint universe ->
        # M_p.  Valid because rules are pure and the rule set is pinned to
        # this version; every fresh per-translation Matcher over the same
        # universe re-derives the identical matching list.
        self._prematch: dict[frozenset[Constraint], tuple] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def signature(self, rule_id: int) -> tuple[HeadSignature, ...]:
        """The precomputed head signature of rule ``rule_id``."""
        return self._signatures[rule_id]

    def required_attrs(self, rule_id: int) -> frozenset[str]:
        """Literal attr names rule ``rule_id`` needs present to match."""
        return self._required[rule_id]

    def __len__(self) -> int:
        return len(self._rules)

    # -- probing ---------------------------------------------------------------

    def check_fresh(self) -> None:
        """Raise :class:`StaleIndexError` if the specification mutated.

        Also raises when the owning specification was garbage-collected
        (a hot-reloaded spec was swapped out from under a lingering
        handle) or when its content digest diverged from the one this
        index was built against.
        """
        spec = self._spec()
        if spec is None:
            raise StaleIndexError(
                f"compiled rule index for specification {self.spec_name!r} is stale "
                "(the owning specification was retired); rebuild via spec.matcher()"
            )
        if spec.version != self.version or spec.content_digest != self.digest:
            raise StaleIndexError(
                f"compiled rule index for specification {self.spec_name!r} is stale "
                f"(built at version {self.version}, specification is now at "
                f"version {spec.version}); rebuild via spec.matcher()"
            )

    def candidate_ids(self, attrs: "set[str] | frozenset[str] | dict") -> list[int]:
        """Rule ids whose required attributes all appear in ``attrs``.

        A superset screen: every rule with a matching is returned, plus
        possibly rules the finer per-pattern pools then reject.  Output
        preserves specification rule order.
        """
        self.check_fresh()
        hits: dict[int, int] = {}
        for name in attrs:
            for rule_id in self._by_attr.get(name, ()):
                hits[rule_id] = hits.get(rule_id, 0) + 1
        ids = [rule_id for rule_id, n in hits.items() if n == len(self._required[rule_id])]
        ids.extend(self._wildcard)
        ids.sort()
        if obs.enabled():
            obs.count("perf.index.probes")
            obs.count("perf.index.candidates", len(ids))
            obs.count("perf.index.rules_skipped", len(self._rules) - len(ids))
        return ids

    def candidate_rules(self, constraints: "list[Constraint] | frozenset[Constraint]") -> list[Rule]:
        """The candidate :class:`Rule` objects for a constraint universe."""
        attrs = {c.lhs.attr for c in constraints}
        return [self._rules[rule_id] for rule_id in self.candidate_ids(attrs)]

    def pools(
        self,
        rule_id: int,
        by_attr: dict[str, list[Constraint]],
        ordered: list[Constraint],
    ) -> list[list[Constraint]] | None:
        """Per-pattern candidate constraint pools for rule ``rule_id``.

        ``by_attr`` groups the universe by attribute name (in ``ordered``
        order); ``ordered`` is the full universe.  Returns ``None`` when
        some pattern has no compatible constraint — the rule cannot match
        at all, exactly ``match_rule``'s empty-pool early exit.
        """
        self.check_fresh()
        pools: list[list[Constraint]] = []
        for sig in self._signatures[rule_id]:
            source = ordered if sig.attr is None else by_attr.get(sig.attr, [])
            if sig.op is None and sig.view is None and sig.attr is not None:
                pool = list(source)
            else:
                pool = [c for c in source if sig.admits(c)]
            if not pool:
                return None
            pools.append(pool)
        return pools

    # -- compiled dispatch -----------------------------------------------------

    def compiled(self, rule_id: int) -> CompiledRule:
        """The compiled closure for rule ``rule_id`` (built on first use).

        Compiled rules share the index's version pin: a stale index
        refuses to hand them out, and a rebuilt index starts from fresh
        closures and memos.
        """
        self.check_fresh()
        compiled = self._compiled[rule_id]
        if compiled is None:
            compiled = compile_rule(self._rules[rule_id])
            self._compiled[rule_id] = compiled
        return compiled

    def prematch_get(self, universe: "frozenset[Constraint]") -> "tuple | None":
        """The memoized prematch ``M_p`` for ``universe``, if computed.

        Compiled dispatch only (the interpreted walk stays memo-free by
        design — it is the equivalence oracle).
        """
        self.check_fresh()
        found = self._prematch.get(universe)
        if obs.enabled():
            obs.count(
                "perf.compile.prematch.hits"
                if found is not None
                else "perf.compile.prematch.misses"
            )
        return found

    def prematch_store(self, universe: "frozenset[Constraint]", matchings: "list") -> None:
        """Memoize the prematch for ``universe`` (bounded, clear-on-full)."""
        self.check_fresh()
        if len(self._prematch) >= _PREMATCH_CAP:
            self._prematch.clear()
        self._prematch[universe] = tuple(matchings)

    def precompile(self) -> int:
        """Compile every rule now (spec-load / serve warm-up path).

        Returns the number of rules compiled by this call.  Dispatch
        compiles lazily anyway; warming up front keeps first-request
        latency flat in serving processes.
        """
        self.check_fresh()
        built = 0
        for rule_id, compiled in enumerate(self._compiled):
            if compiled is None:
                self._compiled[rule_id] = compile_rule(self._rules[rule_id])
                built += 1
        return built
