"""Hot-path performance layer: fingerprints, indexing, compilation, caching.

The paper proves SCM is linear-time per conjunction (Section 4.4), but a
mediator serving heavy traffic sees the *same* canonical queries and the
same (source, specification) pairs over and over.  This package turns
that repetition into an order-of-magnitude win:

* :func:`query_fingerprint` — a canonical fingerprint of a normalized
  query, invariant under ∧/∨ commutativity and join re-orientation; the
  cache key ingredient;
* :func:`intern_query` — hash-consing: structurally equal ASTs collapse
  to one shared object per process, so equality, canonicalization, and
  fingerprinting become (memoized) identity checks;
* :class:`CompiledRuleIndex` — a per-specification attribute→rule
  inverted index plus per-rule head signatures, so the matcher probes
  only rules whose heads can bind the constraint group instead of
  scanning the whole library (:meth:`MappingSpecification.matcher`
  attaches it automatically);
* :func:`compile_rule` / :class:`CompiledRule` — each rule's pattern,
  conditions, and emit template compiled into Python closures at
  spec-load time; the matcher dispatches through them by default, with
  ``interpret=True`` as the escape hatch and equivalence oracle;
* :class:`TranslationCache` — an LRU memo of whole translations keyed by
  (algorithm, specification name, specification *version*, fingerprint);
  specification mutation bumps the version stamp, so stale entries can
  never be served;
* :func:`translate_batch` — shared-everything batch translation behind
  ``Mediator.translate_many`` and the ``repro batch`` CLI subcommand.

Design, key semantics, and benchmark methodology: ``docs/performance.md``
and ``docs/internals.md``.
"""

from repro.perf.cache import CacheStats, TranslationCache, translate_batch
from repro.perf.compile import CompiledRule, compile_rule
from repro.perf.fingerprint import canonical_form, query_fingerprint
from repro.perf.index import CompiledRuleIndex
from repro.perf.intern import (
    clear_intern_table,
    intern_constraint,
    intern_query,
    intern_stats,
    is_interned,
)

__all__ = [
    "CacheStats",
    "CompiledRule",
    "CompiledRuleIndex",
    "TranslationCache",
    "canonical_form",
    "clear_intern_table",
    "compile_rule",
    "intern_constraint",
    "intern_query",
    "intern_stats",
    "is_interned",
    "query_fingerprint",
    "translate_batch",
]
