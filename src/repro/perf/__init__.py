"""Hot-path performance layer: fingerprints, rule indexing, caching.

The paper proves SCM is linear-time per conjunction (Section 4.4), but a
mediator serving heavy traffic sees the *same* canonical queries and the
same (source, specification) pairs over and over.  This package turns
that repetition into an order-of-magnitude win:

* :func:`query_fingerprint` — a canonical fingerprint of a normalized
  query, invariant under ∧/∨ commutativity and join re-orientation; the
  cache key ingredient;
* :class:`CompiledRuleIndex` — a per-specification attribute→rule
  inverted index plus per-rule head signatures, so the matcher probes
  only rules whose heads can bind the constraint group instead of
  scanning the whole library (:meth:`MappingSpecification.matcher`
  attaches it automatically);
* :class:`TranslationCache` — an LRU memo of whole translations keyed by
  (algorithm, specification name, specification *version*, fingerprint);
  specification mutation bumps the version stamp, so stale entries can
  never be served;
* :func:`translate_batch` — shared-everything batch translation behind
  ``Mediator.translate_many`` and the ``repro batch`` CLI subcommand.

Design, key semantics, and benchmark methodology: ``docs/performance.md``.
"""

from repro.perf.cache import CacheStats, TranslationCache, translate_batch
from repro.perf.fingerprint import canonical_form, query_fingerprint
from repro.perf.index import CompiledRuleIndex

__all__ = [
    "CacheStats",
    "CompiledRuleIndex",
    "TranslationCache",
    "canonical_form",
    "query_fingerprint",
    "translate_batch",
]
