"""Ahead-of-time rule compilation — closures for the matcher hot path.

The interpreted matcher (:func:`repro.core.matching.match_rule`) walks a
rule's patterns with a generic, ``isinstance``-dispatched unifier and
re-evaluates conditions, ``let`` chains, and ``emit`` templates for every
matching of every translation.  But a specification's rules are fixed
between versions, so all of that dispatch can be decided once per rule:

* each :class:`~repro.core.matching.ConstraintPattern` compiles to a
  **specialized unifier closure** containing only the steps its variable
  fields actually need — the literal (attr, op, view) fields are already
  screened by the rule's head signature before the pool ever reaches us
  (see :meth:`repro.perf.index.CompiledRuleIndex.pools`), so the common
  single-variable pattern compiles down to one dict operation;
* conditions, the ``let`` chain, ``emit``, and ``exact`` are pre-bound in
  a **finish closure**, and its outcome is memoized per assignment: rule
  tails are pure functions of the binding (the same contract the
  TranslationCache already relies on), so each distinct constraint
  assignment is evaluated once per specification version, after which a
  matching is a dictionary hit.

Compiled rules are registered in the :class:`~repro.perf.index.
CompiledRuleIndex`, so version pinning and
:class:`~repro.core.errors.StaleIndexError` staleness handling carry over
unchanged: a specification mutation detaches the index together with
every compiled closure and memo built from the old rule set.

Bit-identity: for any pool sequence, :meth:`CompiledRule.matchings`
returns exactly what ``match_rule`` returns — same matchings, same
discovery order, same deduplication, same error behaviour (property-
tested against the interpreted oracle in ``tests/test_compile_properties.
py``, which the ``interpret=`` escape hatch keeps reachable end to end).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.ast import AttrRef, Constraint, Query
from repro.core.errors import RuleError
from repro.core.matching import (
    AttrPattern,
    ConstraintPattern,
    Matching,
    RejectMatch,
    Rule,
    Var,
    ViewInstance,
    _unify_attr,
)
from repro.obs import trace as obs

__all__ = ["CompiledRule", "compile_rule"]

Bindings = dict

#: One unification step: extend the bindings against one constraint, or
#: ``None`` on mismatch.  Steps never mutate the dict they are given.
Step = Callable[[Constraint, Bindings], "Bindings | None"]

_ABSENT = object()

#: Memo sentinel: this assignment unifies/finishes to *no* matching
#: (unification conflict, failed condition, or RejectMatch veto).
_NO_MATCH = object()

#: Bound on each rule's per-assignment memo; reached in practice only by
#: adversarial workloads, where dropping warmth beats growing without
#: limit inside a long-lived serve worker.
_MEMO_CAP = 16384


# ---------------------------------------------------------------------------
# Pattern compilation: specialize the unifier per pattern
# ---------------------------------------------------------------------------


def _bind_step(name: str, getter: Callable[[Constraint], object]) -> Step:
    """Bind variable ``name`` to ``getter(constraint)`` (conflict = fail)."""

    def step(constraint: Constraint, bindings: Bindings) -> Bindings | None:
        value = getter(constraint)
        current = bindings.get(name, _ABSENT)
        if current is _ABSENT:
            extended = dict(bindings)
            extended[name] = value
            return extended
        return bindings if current == value else None

    return step


def _bind_view_step(name: str) -> Step:
    """Bind a view variable to a ViewInstance; unqualified refs fail."""

    def step(constraint: Constraint, bindings: Bindings) -> Bindings | None:
        ref = constraint.lhs
        view = ref.view
        if view is None:
            return None
        value = ViewInstance(view, ref.index)
        current = bindings.get(name, _ABSENT)
        if current is _ABSENT:
            extended = dict(bindings)
            extended[name] = value
            return extended
        return bindings if current == value else None

    return step


def _check_index_step(index: int) -> Step:
    def step(constraint: Constraint, bindings: Bindings) -> Bindings | None:
        return bindings if constraint.lhs.index == index else None

    return step


def _check_rhs_step(value: object) -> Step:
    def step(constraint: Constraint, bindings: Bindings) -> Bindings | None:
        return bindings if value == constraint.rhs else None

    return step


def _rhs_attr_step(pattern: AttrPattern) -> Step:
    """Join patterns: unify the rhs AttrRef against an AttrPattern.

    Falls back to the interpreted attribute unifier — join patterns are
    rare and carry the full (attr, view, index) generality, so the
    specialized win is in skipping them for every non-join rule.
    """

    def step(constraint: Constraint, bindings: Bindings) -> Bindings | None:
        rhs = constraint.rhs
        if not isinstance(rhs, AttrRef):
            return None
        return _unify_attr(pattern, rhs, bindings)

    return step


def _compile_pattern(pattern: ConstraintPattern) -> Step:
    """The specialized unifier for one constraint pattern.

    Relies on the caller feeding pools pre-screened by the pattern's
    :class:`~repro.perf.index.HeadSignature` (literal attr/op/view), so
    only the fields the signature cannot express become steps here: every
    ``Var``, literal instance indexes, and the whole rhs.
    """
    steps: list[Step] = []
    if isinstance(pattern.op, Var):
        steps.append(_bind_step(pattern.op.name, lambda c: c.op))
    lhs = pattern.lhs
    if isinstance(lhs, Var):
        steps.append(_bind_step(lhs.name, lambda c: c.lhs))
    else:
        if isinstance(lhs.attr, Var):
            steps.append(_bind_step(lhs.attr.name, lambda c: c.lhs.attr))
        if isinstance(lhs.view, Var):
            steps.append(_bind_view_step(lhs.view.name))
        if isinstance(lhs.index, Var):
            steps.append(_bind_step(lhs.index.name, lambda c: c.lhs.index))
        elif isinstance(lhs.index, int):
            steps.append(_check_index_step(lhs.index))
    rhs = pattern.rhs
    if isinstance(rhs, Var):
        steps.append(_bind_step(rhs.name, lambda c: c.rhs))
    elif isinstance(rhs, AttrPattern):
        steps.append(_rhs_attr_step(rhs))
    else:
        steps.append(_check_rhs_step(rhs))

    if not steps:
        return lambda constraint, bindings: bindings
    if len(steps) == 1:
        return steps[0]
    chain = tuple(steps)

    def unify(constraint: Constraint, bindings: Bindings) -> Bindings | None:
        maybe: Bindings | None = bindings
        for step in chain:
            maybe = step(constraint, maybe)
            if maybe is None:
                return None
        return maybe

    return unify


# ---------------------------------------------------------------------------
# Compiled rule: specialized unifiers + memoized finish closure
# ---------------------------------------------------------------------------


class CompiledRule:
    """One rule compiled to closures (see module docstring).

    Obtain instances through :meth:`repro.perf.index.CompiledRuleIndex.
    compiled` (or :func:`compile_rule` directly in tests): the index owns
    the compiled rules of one specification version, which scopes every
    memo to exactly one rule-set state.
    """

    __slots__ = ("rule", "name", "_unifiers", "_finish", "_memo", "_single")

    def __init__(self, rule: Rule):
        self.rule = rule
        self.name = rule.name
        self._unifiers: tuple[Step, ...] = tuple(
            _compile_pattern(pattern) for pattern in rule.patterns
        )
        self._single = len(self._unifiers) == 1
        self._finish = _compile_finish(rule)
        #: assignment tuple -> Matching | _NO_MATCH.  Keys are the chosen
        #: constraints in pattern order, which determine the binding (and
        #: with it the emission) uniquely for a pure rule tail.
        self._memo: dict = {}

    def matchings(self, pools: list[list[Constraint]]) -> list[Matching]:
        """All matchings over per-pattern candidate ``pools``.

        ``pools[i]`` must contain only constraints admitted by pattern
        ``i``'s head signature, in universe order — exactly what
        :meth:`~repro.perf.index.CompiledRuleIndex.pools` produces.
        Bit-identical to ``match_rule(rule, ordered, pools=pools)``.
        """
        results: list[Matching] = []
        memo = self._memo
        hits = 0
        if self._single:
            unify = self._unifiers[0]
            finish = self._finish
            append = results.append
            for constraint in pools[0]:
                entry = memo.get(constraint, _ABSENT)
                if entry is _ABSENT:
                    bindings = unify(constraint, {})
                    if bindings is None:
                        entry = _NO_MATCH
                    else:
                        outcome = finish(bindings)
                        if outcome is None:
                            entry = _NO_MATCH
                        else:
                            emission, exact = outcome
                            entry = Matching(
                                frozenset((constraint,)), self.name, emission, exact=exact
                            )
                    if len(memo) >= _MEMO_CAP:
                        memo.clear()
                    memo[constraint] = entry
                else:
                    hits += 1
                if entry is not _NO_MATCH:
                    append(entry)
        else:
            hits = self._search_all(pools, results)
        if obs.enabled():
            obs.count("perf.compile.dispatches")
            obs.count("perf.compile.matchings", len(results))
            if hits:
                obs.count("perf.compile.memo_hits", hits)
        return results

    def _search_all(self, pools: list[list[Constraint]], results: list[Matching]) -> int:
        """Multi-pattern backtracking search, memoized at the leaves.

        Mirrors ``matching._search`` exactly: patterns are assigned to
        distinct constraints in pool order, and different assignments
        collapsing to the same (constraint set, emission) dedupe.
        """
        unifiers = self._unifiers
        depth = len(unifiers)
        memo = self._memo
        name = self.name
        finish = self._finish
        seen: set = set()
        hits = 0

        def descend(idx: int, bindings: Bindings, chosen: list[Constraint]) -> None:
            nonlocal hits
            if idx == depth:
                key = tuple(chosen)
                entry = memo.get(key, _ABSENT)
                if entry is _ABSENT:
                    outcome = finish(bindings)
                    if outcome is None:
                        entry = _NO_MATCH
                    else:
                        emission, exact = outcome
                        entry = Matching(frozenset(chosen), name, emission, exact=exact)
                    if len(memo) >= _MEMO_CAP:
                        memo.clear()
                    memo[key] = entry
                else:
                    hits += 1
                if entry is _NO_MATCH:
                    return
                dedup = (entry.constraints, entry.emission)
                if dedup in seen:
                    return
                seen.add(dedup)
                results.append(entry)
                return
            unify = unifiers[idx]
            for constraint in pools[idx]:
                if constraint in chosen:
                    continue
                extended = unify(constraint, bindings)
                if extended is None:
                    continue
                chosen.append(constraint)
                descend(idx + 1, extended, chosen)
                chosen.pop()

        descend(0, {}, [])
        return hits

    def memo_size(self) -> int:
        """Current number of memoized assignments (introspection/tests)."""
        return len(self._memo)


def _compile_finish(rule: Rule) -> Callable[[Bindings], "tuple[Query, bool] | None"]:
    """Pre-bind the rule tail: conditions → let chain → emit → exact.

    The returned closure evaluates a complete binding to ``(emission,
    exact)`` or ``None`` (condition failure / RejectMatch), raising the
    same :class:`RuleError`\\ s as the interpreted ``matching._finish``.
    """
    name = rule.name
    conditions = rule.conditions
    let = rule.let
    emit = rule.emit
    exact_spec = rule.exact
    exact_callable = callable(exact_spec)

    def finish(bindings: Bindings) -> tuple[Query, bool] | None:
        try:
            for condition in conditions:
                if not condition(bindings):
                    return None
        except KeyError as exc:
            raise RuleError(
                f"rule {name!r}: condition uses unbound variable {exc}"
            ) from exc
        final = dict(bindings)
        try:
            for var, fn in let:
                final[var] = fn(final)
            emission = emit(final)
        except RejectMatch:
            return None
        except KeyError as exc:
            raise RuleError(f"rule {name!r}: unbound variable {exc}") from exc
        if not isinstance(emission, Query):
            raise RuleError(
                f"rule {name!r} emitted {emission!r}, which is not a Query"
            )
        # Keep the raw value (not bool()): bit-identity with _finish extends
        # to the Matching.exact field.
        exact = exact_spec(final) if exact_callable else exact_spec
        return emission, exact

    return finish


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile one rule; see :class:`CompiledRule` for the contract."""
    compiled = CompiledRule(rule)
    if obs.enabled():
        obs.count("perf.compile.rules_compiled")
    return compiled
