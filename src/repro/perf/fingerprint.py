"""Canonical query fingerprints — the cache-key ingredient of repro.perf.

Two queries that every translation algorithm treats identically should
share one cache entry.  :func:`query_fingerprint` therefore hashes a
*canonical form* of the normalized query in which

* ∧/∨ children are sorted by their own canonical form (commutativity and
  idempotency — ``a ∧ b`` and ``b ∧ a`` collide, as do duplicates the
  smart constructors already fold);
* join constraints are oriented by :func:`repro.core.normalize.normalize`
  (``[a < b]`` and ``[b > a]`` collide);
* values are rendered with a type tag, so ``[a = 1]`` and ``[a = "1"]``
  stay distinct.

Fingerprints are stable within a process (value rendering falls back to
``repr``); they are cache keys, not persistent identifiers.
"""

from __future__ import annotations

import hashlib

from repro.core.ast import And, AttrRef, BoolConst, Constraint, Not, Or, Query
from repro.core.normalize import normalize

__all__ = ["canonical_form", "query_fingerprint"]


def _render_ref(ref: AttrRef) -> str:
    head = ref.path[0]
    if ref.index is not None:
        head = f"{head}[{ref.index}]"
    return ".".join((head, *ref.path[1:]))


def _render_value(value: object) -> str:
    """A type-tagged rendering: distinct types never collide."""
    if isinstance(value, AttrRef):
        return f"@{_render_ref(value)}"
    kind = type(value)
    return f"{kind.__module__}.{kind.__qualname__}:{value!r}"


def canonical_form(query: Query) -> str:
    """The canonical textual form hashed by :func:`query_fingerprint`.

    Callers are expected to pass a *normalized* query (see
    :func:`repro.core.normalize.normalize`); :func:`query_fingerprint`
    normalizes for you.

    The form is a pure function of the (immutable) node, so it is memoized
    per node — on hash-consed trees (:mod:`repro.perf.intern`) every
    distinct shape is canonicalized once per process.
    """
    try:
        return query._canon
    except AttributeError:
        pass
    if isinstance(query, BoolConst):
        return "#t" if query.value else "#f"
    if isinstance(query, Constraint):
        text = f"[{_render_ref(query.lhs)} {query.op} {_render_value(query.rhs)}]"
    elif isinstance(query, And):
        text = "(and " + " ".join(sorted(canonical_form(c) for c in query.children)) + ")"
    elif isinstance(query, Or):
        text = "(or " + " ".join(sorted(canonical_form(c) for c in query.children)) + ")"
    elif isinstance(query, Not):  # pre-normalization trees; normalize() removes these
        text = "(not " + canonical_form(query.child) + ")"
    else:
        raise TypeError(f"unknown query node: {query!r}")
    try:
        object.__setattr__(query, "_canon", text)
    except (AttributeError, TypeError):
        pass
    return text


def query_fingerprint(query: Query, *, normalized: bool = False) -> str:
    """A stable hex fingerprint of ``query``'s canonical form.

    Pass ``normalized=True`` to skip re-normalization when the caller has
    already normalized the query (the batch path does, to share the work
    across specifications).
    """
    if not normalized:
        query = normalize(query)
    digest = hashlib.sha256(canonical_form(query).encode("utf-8"))
    return digest.hexdigest()
