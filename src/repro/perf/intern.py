"""Hash-consing for query ASTs — the per-process intern table.

Query nodes are immutable and compared structurally, so any two equal
subtrees can be one object.  :func:`intern_query` canonicalizes a tree
bottom-up against a per-process table: equal constraints and subtrees come
back as the *same* object, making structural equality an identity check,
letting every memo on the node (hash, rendered text, canonical form,
fingerprint — see :mod:`repro.core.ast` and :mod:`repro.perf.
fingerprint`) be computed once per distinct shape instead of once per
parse, and de-duplicating the subtrees that TranslationCache entries and
snapshot restores keep alive.

The table holds its nodes **weakly**: an interned subtree lives exactly as
long as something else (a cache entry, a specification, a live request)
references it, so interning never grows memory beyond what the process
already retains.  Keys are order-preserving structural renderings rather
than the nodes themselves (a WeakValueDictionary keeps strong references
to keys, so keying by the node would make every entry immortal).  The
rendering deliberately does *not* sort junction children: ``a ∧ b`` and
``b ∧ a`` are distinct trees and must stay distinct objects — collapsing
them is the fingerprint's job, not the interner's.

Interning is an optimization, never a semantic switch: ``intern_query(q)
== q`` always holds, and every algorithm treats interned and fresh nodes
identically.
"""

from __future__ import annotations

import threading
from weakref import WeakValueDictionary

from repro.core.ast import (
    FALSE,
    TRUE,
    And,
    AttrRef,
    BoolConst,
    Constraint,
    Not,
    Or,
    Query,
)
from repro.obs import trace as obs
from repro.perf.fingerprint import _render_ref, _render_value

__all__ = [
    "intern_query",
    "intern_constraint",
    "intern_ref",
    "is_interned",
    "intern_stats",
    "clear_intern_table",
]

_LOCK = threading.Lock()
_NODES: WeakValueDictionary[str, Query] = WeakValueDictionary()
_REFS: WeakValueDictionary[str, AttrRef] = WeakValueDictionary()
_HITS = 0
_MISSES = 0


def _key(query: Query) -> str:
    """Order-preserving, type-tagged structural rendering (table key).

    Unlike :func:`repro.perf.fingerprint.canonical_form` this keeps
    junction children in tree order, so structurally distinct trees never
    share a table slot.
    """
    if isinstance(query, Constraint):
        return f"[{_render_ref(query.lhs)} {query.op} {_render_value(query.rhs)}]"
    if isinstance(query, And):
        return "(and " + " ".join(_key(c) for c in query.children) + ")"
    if isinstance(query, Or):
        return "(or " + " ".join(_key(c) for c in query.children) + ")"
    if isinstance(query, Not):
        return "(not " + _key(query.child) + ")"
    if isinstance(query, BoolConst):
        return "#t" if query.value else "#f"
    raise TypeError(f"unknown query node: {query!r}")


def _intern_ref_locked(ref: AttrRef) -> AttrRef:
    key = _render_ref(ref)
    found = _REFS.get(key)
    if found is not None:
        return found
    _REFS[key] = ref
    return ref


def _intern_locked(query: Query) -> tuple[Query, int, int]:
    """Intern ``query`` bottom-up; returns (node, hits, misses)."""
    if isinstance(query, BoolConst):
        return (TRUE if query.value else FALSE), 1, 0
    key = _key(query)
    found = _NODES.get(key)
    if found is not None:
        return found, 1, 0
    hits = 0
    misses = 1
    node: Query
    if isinstance(query, Constraint):
        lhs = _intern_ref_locked(query.lhs)
        rhs = query.rhs
        if isinstance(rhs, AttrRef):
            rhs = _intern_ref_locked(rhs)
        if lhs is query.lhs and rhs is query.rhs:
            node = query
        else:
            node = Constraint(lhs, query.op, rhs)
    elif isinstance(query, (And, Or)):
        children = []
        changed = False
        for child in query.children:
            interned, h, m = _intern_locked(child)
            hits += h
            misses += m
            changed = changed or interned is not child
            children.append(interned)
        node = type(query)(children) if changed else query
    elif isinstance(query, Not):
        child, hits, misses = _intern_locked(query.child)
        misses += 1
        node = query if child is query.child else Not(child)
    else:
        raise TypeError(f"unknown query node: {query!r}")
    _NODES[key] = node
    return node, hits, misses


def intern_query(query: Query) -> Query:
    """The canonical in-process instance of ``query`` (``== query`` always).

    Safe from any thread; cheap when the shape is already interned (one
    rendering plus one table hit per node).
    """
    global _HITS, _MISSES
    with _LOCK:
        node, hits, misses = _intern_locked(query)
        _HITS += hits
        _MISSES += misses
    if obs.enabled():
        if hits:
            obs.count("perf.compile.intern.hits", hits)
        if misses:
            obs.count("perf.compile.intern.misses", misses)
    return node


def intern_constraint(constraint: Constraint) -> Constraint:
    """:func:`intern_query` narrowed to a single constraint."""
    interned = intern_query(constraint)
    assert isinstance(interned, Constraint)
    return interned


def intern_ref(ref: AttrRef) -> AttrRef:
    """The canonical in-process instance of an attribute reference."""
    with _LOCK:
        return _intern_ref_locked(ref)


def is_interned(query: Query) -> bool:
    """Is ``query`` (this very object) the canonical instance of its shape?"""
    if isinstance(query, BoolConst):
        return query is TRUE or query is FALSE
    with _LOCK:
        return _NODES.get(_key(query)) is query


def intern_stats() -> dict[str, int]:
    """Point-in-time interner counters (sizes are live, not cumulative)."""
    with _LOCK:
        return {
            "nodes": len(_NODES),
            "refs": len(_REFS),
            "hits": _HITS,
            "misses": _MISSES,
        }


def clear_intern_table() -> None:
    """Drop the table (tests and long-lived admin tooling only)."""
    global _HITS, _MISSES
    with _LOCK:
        _NODES.clear()
        _REFS.clear()
        _HITS = 0
        _MISSES = 0
