"""Rule system: DSL, specifications, and the paper's built-in rule sets."""

from repro.rules.dsl import (
    RejectMatch,
    V,
    ap,
    attr_in,
    attr_is,
    cpat,
    distinct,
    rule,
    same_view,
    table_lookup,
    value_is,
    where,
)
from repro.rules.library import (
    K1,
    K2,
    K_AMAZON,
    K_CLBOOKS,
    K_MAP,
    builtin_specifications,
)
from repro.rules.declarative import DEFAULT_FUNCTIONS, rule_from_dict, spec_from_dict
from repro.rules.spec import AuditReport, MappingSpecification, audit_vocabulary
from repro.rules.vocabulary import (
    AttributeSpec,
    ContextVocabulary,
    ValidationReport,
    validate_spec,
)

__all__ = [
    "V", "ap", "cpat", "rule", "value_is", "attr_is", "attr_in", "distinct",
    "same_view", "where", "table_lookup", "RejectMatch",
    "MappingSpecification", "AuditReport", "audit_vocabulary",
    "AttributeSpec", "ContextVocabulary", "ValidationReport", "validate_spec",
    "spec_from_dict", "rule_from_dict", "DEFAULT_FUNCTIONS",
    "K_AMAZON", "K_CLBOOKS", "K1", "K2", "K_MAP", "builtin_specifications",
]
