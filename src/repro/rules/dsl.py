"""Ergonomic constructors for mapping rules.

Rules read close to the paper's notation.  Rule R6 of Figure 3::

    rule(
        "R6",
        patterns=[cpat("pyear", "=", V("Y")), cpat("pmonth", "=", V("M"))],
        where=[value_is("Y", "M")],
        let={"D": lambda b: Month(b["Y"], b["M"])},
        emit=lambda b: C("pdate", "during", b["D"]),
        exact=True,
    )

``cpat`` accepts the left-hand side as

* a plain string — a literal attribute, optionally view-qualified
  (``"pyear"``, ``"fac.dept"``);
* a :class:`~repro.core.matching.Var` — binds the whole attribute
  reference (rule R3 of Figure 5 binds ``A1`` this way);
* an :class:`~repro.core.matching.AttrPattern` built with :func:`ap` for
  per-component variables (rule R8's ``fac[i].A``).

Conditions (:func:`value_is`, :func:`attr_is`, :func:`attr_in`,
:func:`distinct`, :func:`same_view`, :func:`where`) are small predicate
factories over the binding dict, mirroring the paper's ``Value(N)``,
``LnOrFn(A1)``-style head conditions.

Every factory additionally annotates the predicate/let callable it
returns with a ``vocablint_hint`` attribute — a small dict describing the
condition declaratively (kind, variables, allowed names, table keys).
The static analyzer (:mod:`repro.analysis`) reads these hints to
synthesize sample bindings that actually satisfy a rule's head; rules
remain plain callables and nothing else inspects the attribute.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.core.ast import AttrRef, Query
from repro.core.errors import RuleError
from repro.core.matching import (
    AttrPattern,
    ConstraintPattern,
    RejectMatch,
    Rule,
    Var,
    ViewInstance,
)

__all__ = [
    "V",
    "ap",
    "cpat",
    "rule",
    "value_is",
    "attr_is",
    "attr_in",
    "distinct",
    "same_view",
    "where",
    "table_lookup",
    "RejectMatch",
]

V = Var


def ap(
    attr: str | Var,
    view: str | Var | None = None,
    index: int | Var | None = None,
) -> AttrPattern:
    """Build an attribute pattern with per-component variables."""
    return AttrPattern(attr=attr, view=view, index=index)


def _parse_lhs(spec: str | Var | AttrPattern) -> AttrPattern | Var:
    if isinstance(spec, (Var, AttrPattern)):
        return spec
    parts = spec.split(".")
    if len(parts) == 1:
        return AttrPattern(attr=parts[0])
    if len(parts) == 2:
        return AttrPattern(attr=parts[1], view=parts[0])
    raise RuleError(f"pattern attribute {spec!r} has too many components; use ap()")


def cpat(lhs: str | Var | AttrPattern, op: str | Var, rhs: object) -> ConstraintPattern:
    """Build a constraint pattern ``[lhs op rhs]``.

    ``rhs`` may be a Var, a literal value, an :class:`AttrPattern`, or a
    dotted string which is interpreted as a literal attribute pattern (for
    join patterns such as ``cpat("V1.ln", "=", "V2.ln")`` write the pattern
    with :func:`ap` and Vars instead — strings stay literal).
    """
    return ConstraintPattern(lhs=_parse_lhs(lhs), op=op, rhs=rhs)


def rule(
    name: str,
    patterns: Iterable[ConstraintPattern],
    emit: Callable[[Mapping], Query],
    where: Iterable[Callable[[Mapping], bool]] = (),
    let: Mapping[str, Callable[[Mapping], object]] | None = None,
    exact: bool | Callable[[Mapping], bool] = False,
    doc: str = "",
) -> Rule:
    """Assemble a :class:`~repro.core.matching.Rule`."""
    let_items = tuple((let or {}).items())
    return Rule(
        name=name,
        patterns=tuple(patterns),
        emit=emit,
        conditions=tuple(where),
        let=let_items,
        exact=exact,
        doc=doc,
    )


# ---------------------------------------------------------------------------
# Condition factories
# ---------------------------------------------------------------------------


def _hinted(fn: Callable, **hint: object) -> Callable:
    """Attach the declarative ``vocablint_hint`` metadata to a callable."""
    fn.vocablint_hint = hint  # type: ignore[attr-defined]
    return fn


def value_is(*names: str) -> Callable[[Mapping], bool]:
    """The paper's ``Value(N)``: the variables bound plain values, not attrs."""

    def check(bindings: Mapping) -> bool:
        return all(not isinstance(bindings[name], AttrRef) for name in names)

    return _hinted(check, kind="value_is", vars=names)


def attr_is(*names: str) -> Callable[[Mapping], bool]:
    """The paper's ``Attr(N)``: the variables bound attribute references."""

    def check(bindings: Mapping) -> bool:
        return all(isinstance(bindings[name], AttrRef) for name in names)

    return _hinted(check, kind="attr_is", vars=names)


def attr_in(name: str, allowed: Iterable[str]) -> Callable[[Mapping], bool]:
    """The bound attribute's *name* is one of ``allowed``.

    Works whether ``name`` bound a whole :class:`AttrRef` or just the
    attribute-name string (an :func:`ap` component variable).  This is how
    conditions like ``LnOrFn(A1)`` are written:
    ``attr_in("A1", {"ln", "fn"})``.
    """
    allowed_set = frozenset(allowed)

    def check(bindings: Mapping) -> bool:
        bound = bindings[name]
        if isinstance(bound, AttrRef):
            return bound.attr in allowed_set
        return bound in allowed_set

    return _hinted(check, kind="attr_in", var=name, allowed=allowed_set)


def distinct(*names: str) -> Callable[[Mapping], bool]:
    """All named variables bound pairwise-different values."""

    def check(bindings: Mapping) -> bool:
        values = [bindings[name] for name in names]
        return len(values) == len({repr(v) for v in values})

    return _hinted(check, kind="distinct", vars=names)


def same_view(*names: str) -> Callable[[Mapping], bool]:
    """All bound AttrRefs / ViewInstances belong to the same view instance."""

    def key(bound: object) -> tuple:
        if isinstance(bound, AttrRef):
            return (bound.view, bound.index)
        if isinstance(bound, ViewInstance):
            return (bound.view, bound.index)
        raise RuleError(f"same_view: {bound!r} is not an attribute or view")

    def check(bindings: Mapping) -> bool:
        keys = {key(bindings[name]) for name in names}
        return len(keys) == 1

    return _hinted(check, kind="same_view", vars=names)


def where(fn: Callable[[Mapping], bool]) -> Callable[[Mapping], bool]:
    """Escape hatch: an arbitrary predicate over the bindings."""
    return fn


# ---------------------------------------------------------------------------
# Let helpers
# ---------------------------------------------------------------------------


def table_lookup(table: Mapping, key_fn: Callable[[Mapping], object]) -> Callable[[Mapping], object]:
    """A ``let`` function doing a table lookup; missing keys veto the match.

    Mirrors conversion functions like ``DeptCode`` or ``AttrNameMapping``
    that are only defined on known vocabulary — an unknown key means the
    rule simply does not apply.
    """

    def lookup(bindings: Mapping) -> object:
        key = key_fn(bindings)
        try:
            return table[key]
        except KeyError:
            raise RejectMatch(f"no table entry for {key!r}") from None

    return _hinted(lookup, kind="table", keys=tuple(sorted(table, key=str)[:16]))
