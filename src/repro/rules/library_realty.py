"""The realty scenario: mapping *inequality* constraints with conversions.

The paper's examples map equalities, text patterns, and dates.  Its
framework, however, handles any operator — the interesting cases are
range constraints whose values need conversion:

* **monotone conversions keep the operator** — ``[price-usd <= X]``
  becomes ``[price_cents <= 100·X]`` (dollars→cents is increasing);
* **order-reversing conversions flip it** — the mediator ranks listings
  with ``quality-rank`` (1 = best) while the target stores a ``score``
  (100 = best): ``[quality-rank <= K]`` becomes ``[score >= 101 - K]``;
* **interval attributes pair up** — like Example 8's map source, a
  ``area-min``/``area-max`` pair is inter-dependent when the target only
  accepts a single ``area_m2`` range constraint.

``K_REALTY`` maps the mediator's imperial/dollar vocabulary onto the
metric/cent catalog of :func:`make_listings_source`.
"""

from __future__ import annotations

from repro.core.ast import C
from repro.core.errors import EvaluationError
from repro.core.values import Range
from repro.engine.capabilities import Capability
from repro.engine.relation import Relation
from repro.engine.source import Source
from repro.rules.dsl import V, cpat, rule, value_is
from repro.rules.spec import MappingSpecification

__all__ = ["K_REALTY", "make_listings_source", "DEFAULT_LISTINGS", "sqft_to_m2"]

_M2_PER_SQFT = 0.092903
#: score = BEST_RANK_SCORE + 1 - rank  (rank 1 <-> score 100).
BEST_RANK_SCORE = 100


def sqft_to_m2(sqft: float) -> float:
    """Convert square feet to square meters (monotone increasing)."""
    return round(sqft * _M2_PER_SQFT, 4)


def _cents(dollars: object) -> int:
    return round(float(dollars) * 100)


def _rank_to_score(rank: object) -> int:
    return BEST_RANK_SCORE + 1 - int(rank)


# -- price: monotone conversion keeps the comparison operator ----------------

_PRICE_RULES = tuple(
    rule(
        f"Rp_{label}",
        patterns=[cpat("price-usd", op, V("P"))],
        where=[value_is("P")],
        let={"CENTS": lambda b: _cents(b["P"])},
        emit=lambda b, _op=op: C("price_cents", _op, b["CENTS"]),
        exact=True,
        doc=f"dollars -> cents is increasing: '{op}' survives unchanged.",
    )
    for label, op in (("le", "<="), ("ge", ">="), ("lt", "<"), ("gt", ">"), ("eq", "="))
)

# -- rank vs score: order-reversing conversion flips the operator ------------

_FLIP = {"<=": ">=", ">=": "<=", "<": ">", ">": "<", "=": "="}

_RANK_RULES = tuple(
    rule(
        f"Rr_{label}",
        patterns=[cpat("quality-rank", op, V("K"))],
        where=[value_is("K")],
        let={"S": lambda b: _rank_to_score(b["K"])},
        emit=lambda b, _op=_FLIP[op]: C("score", _op, b["S"]),
        exact=True,
        doc=f"rank (1 = best) -> score (100 = best): '{op}' flips to '{_FLIP[op]}'.",
    )
    for label, op in (("le", "<="), ("ge", ">="), ("lt", "<"), ("gt", ">"), ("eq", "="))
)

# -- area: the min/max pair is inter-dependent (target wants one range) ------

_AREA_PAIR = rule(
    "Ra_band",
    patterns=[
        cpat("area-min-sqft", "=", V("LO")),
        cpat("area-max-sqft", "=", V("HI")),
    ],
    where=[value_is("LO", "HI")],
    let={"R": lambda b: Range(sqft_to_m2(b["LO"]), sqft_to_m2(b["HI"]))},
    emit=lambda b: C("area_m2", "=", b["R"]),
    exact=True,
    doc="both bounds together form the single range the target accepts.",
)

#: Practical stand-in for an unbounded upper area limit (m²).
_AREA_CAP_M2 = 10**9

_AREA_MIN = rule(
    "Ra_min",
    patterns=[cpat("area-min-sqft", "=", V("LO"))],
    where=[value_is("LO")],
    let={"R": lambda b: Range(sqft_to_m2(b["LO"]), _AREA_CAP_M2)},
    emit=lambda b: C("area_m2", "=", b["R"]),
    exact=True,
    doc="a lone lower bound becomes an open-topped range.",
)

_CITY = rule(
    "Rc",
    patterns=[cpat("city", "=", V("N"))],
    where=[value_is("N")],
    emit=lambda b: C("city", "=", b["N"]),
    exact=True,
)

K_REALTY = MappingSpecification(
    name="K_realty",
    target="listings",
    rules=_PRICE_RULES + _RANK_RULES + (_AREA_PAIR, _AREA_MIN, _CITY),
    description=(
        "Imperial/dollar mediator vocabulary onto a metric/cent catalog: "
        "monotone and order-reversing conversions over inequalities."
    ),
)


# ---------------------------------------------------------------------------
# The listings source
# ---------------------------------------------------------------------------

DEFAULT_LISTINGS = (
    {"id": "L1", "city": "palo alto", "price_cents": 99_900_000, "area_m2": 120.0, "score": 95},
    {"id": "L2", "city": "palo alto", "price_cents": 45_000_000, "area_m2": 62.0, "score": 70},
    {"id": "L3", "city": "menlo park", "price_cents": 72_500_000, "area_m2": 88.5, "score": 88},
    {"id": "L4", "city": "menlo park", "price_cents": 30_000_000, "area_m2": 46.4, "score": 55},
    {"id": "L5", "city": "sunnyvale", "price_cents": 55_000_000, "area_m2": 74.3, "score": 81},
    {"id": "L6", "city": "sunnyvale", "price_cents": 25_000_000, "area_m2": 37.1, "score": 40},
    {"id": "L7", "city": "palo alto", "price_cents": 150_000_000, "area_m2": 204.3, "score": 99},
)


def _area_range(row, op, value) -> bool:
    if op != "=" or not isinstance(value, Range):
        raise EvaluationError("area_m2 expects '= (lo:hi)'")
    return value.contains(float(row["area_m2"]))


def make_listings_source(rows=DEFAULT_LISTINGS) -> Source:
    """The metric/cent listings catalog behind ``K_REALTY``."""
    listings = Relation(
        "listings", ("id", "city", "price_cents", "area_m2", "score"), rows
    )
    capability = Capability.of(
        selections=[
            ("city", "="),
            *[("price_cents", op) for op in ("=", "<", "<=", ">", ">=")],
            *[("score", op) for op in ("=", "<", "<=", ">", ">=")],
            ("area_m2", "="),
        ],
    )
    return Source(
        "listings",
        {"listings": listings},
        capability,
        virtuals={"area_m2": _area_range},
    )
