"""Context vocabularies and mechanical specification validation.

Soundness and completeness of a mapping specification (Definitions 3/4)
are ultimately semantic judgements, but three expensive-to-debug failure
modes can be caught mechanically once the integrator *declares* the
original context's vocabulary:

1. **coverage gaps** — a supported constraint no rule can touch silently
   maps to ``True`` (Definition 4's most common violation in practice);
2. **missing group rules** — the integrator declares which attribute
   groups are inter-dependent (the domain knowledge Definition 2 says
   only a human has); validation checks a rule actually matches each
   declared group *jointly*;
3. **inexpressible emissions** — a rule that fires but emits vocabulary
   the target's :class:`~repro.engine.capabilities.Capability` rejects
   violates Definition 1's requirement (1) and would blow up at query
   time, at the source.

:func:`validate_spec` runs all three and returns a structured report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.core.ast import Constraint, attr
from repro.engine.capabilities import Capability
from repro.rules.spec import MappingSpecification

__all__ = ["AttributeSpec", "ContextVocabulary", "ValidationReport", "validate_spec"]


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of the original context.

    ``samples`` are representative right-hand-side values, one per
    supported operator shape (e.g. a text pattern for ``contains``).
    """

    name: str
    operators: tuple[str, ...]
    samples: Mapping[str, object] = field(default_factory=dict)

    def constraints(self) -> list[Constraint]:
        out = []
        for op in self.operators:
            sample = self.samples.get(op, self._default_sample(op))
            out.append(Constraint(attr(self.name), op, sample))
        return out

    def _default_sample(self, op: str) -> object:
        if op == "contains":
            from repro.text.patterns import Word

            return Word("sample")
        if op == "in":
            return ("sample",)
        if op == "during":
            from repro.core.values import Year

            return Year(1997)
        if op in ("<", "<=", ">", ">="):
            return 0
        return "sample"


@dataclass(frozen=True)
class ContextVocabulary:
    """The original context's declared vocabulary.

    ``groups`` names the attribute sets the integrator knows to be
    inter-dependent — each must have a rule matching it jointly.
    """

    attributes: tuple[AttributeSpec, ...]
    groups: tuple[tuple[str, ...], ...] = ()

    def attribute(self, name: str) -> AttributeSpec:
        for spec in self.attributes:
            if spec.name == name:
                return spec
        raise KeyError(f"vocabulary has no attribute {name!r}")

    def all_constraints(self) -> list[Constraint]:
        out: list[Constraint] = []
        for spec in self.attributes:
            out.extend(spec.constraints())
        return out

    def group_constraints(self, group: tuple[str, ...]) -> list[Constraint]:
        """One representative equality-ish constraint per group member."""
        out = []
        for name in group:
            spec = self.attribute(name)
            out.append(spec.constraints()[0])
        return out


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_spec`."""

    uncovered: tuple[Constraint, ...]
    unmatched_groups: tuple[tuple[str, ...], ...]
    inexpressible: tuple[tuple[str, Constraint], ...]  # (rule name, emitted)

    @property
    def ok(self) -> bool:
        return not (self.uncovered or self.unmatched_groups or self.inexpressible)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "specification validates cleanly"
        lines = []
        for constraint in self.uncovered:
            lines.append(f"UNCOVERED      {constraint} (maps to True)")
        for group in self.unmatched_groups:
            lines.append(
                f"MISSING RULE   dependent group {{{', '.join(group)}}} "
                f"has no joint matching"
            )
        for rule_name, emitted in self.inexpressible:
            lines.append(
                f"INEXPRESSIBLE  rule {rule_name} emits {emitted}, "
                f"which the target cannot evaluate"
            )
        return "\n".join(lines)


def validate_spec(
    spec: MappingSpecification,
    vocabulary: ContextVocabulary,
    capability: Capability | None = None,
) -> ValidationReport:
    """Run the three mechanical checks against a declared vocabulary."""
    matcher = spec.matcher()
    constraints = vocabulary.all_constraints()
    matchings = matcher.potential(constraints)

    touched: set[Constraint] = set()
    for matching in matchings:
        touched |= matching.constraints
    uncovered = tuple(c for c in constraints if c not in touched)

    unmatched_groups = []
    for group in vocabulary.groups:
        representatives = vocabulary.group_constraints(group)
        group_matcher = spec.matcher()
        joint = [
            m
            for m in group_matcher.matchings(representatives)
            if m.constraints == frozenset(representatives)
        ]
        if not joint:
            unmatched_groups.append(tuple(group))

    inexpressible: list[tuple[str, Constraint]] = []
    if capability is not None:
        seen: set[tuple[str, Constraint]] = set()
        for matching in matchings:
            for emitted in matching.emission.constraints():
                if capability.supports(emitted):
                    continue
                key = (matching.rule_name, emitted)
                if key not in seen:
                    seen.add(key)
                    inexpressible.append(key)

    return ValidationReport(
        uncovered=uncovered,
        unmatched_groups=tuple(unmatched_groups),
        inexpressible=tuple(sorted(inexpressible, key=str)),
    )
