"""Declarative (data-driven) mapping specifications.

The DSL of :mod:`repro.rules.dsl` builds rules out of Python callables —
maximal power, but the specification lives in code.  Real integration
teams maintain mapping specs as *data* (reviewable, diffable, loadable at
runtime), so this module defines a JSON-compatible rule description and a
loader::

    SPEC = {
        "name": "K_dates", "target": "Amazon",
        "rules": [
            {
                "name": "R6",
                "match": [
                    {"attr": "pyear", "op": "=", "bind": "Y"},
                    {"attr": "pmonth", "op": "=", "bind": "M"},
                ],
                "where": [{"cond": "value_is", "vars": ["Y", "M"]}],
                "let": [{"var": "D", "fn": "month_period", "args": ["$Y", "$M"]}],
                "emit": {"attr": "pdate", "op": "during", "value": "$D"},
                "exact": True,
            },
            ...
        ],
    }
    spec = spec_from_dict(SPEC)

Conventions:

* ``$NAME`` in any value position substitutes the bound variable ``NAME``
  (write a literal leading dollar as ``$$``);
* pattern fields — ``attr`` is a literal name, ``view.attr``, or ``?A``
  (a variable over the attribute name; bare ``?A`` with no ``view`` binds
  the whole reference); optional ``view`` (literal or ``?V``) and
  ``index`` (``?i``); ``op`` is a literal or ``?OP``; the right-hand side
  is ``{"bind": "X"}``, ``{"value": <literal>}``, or a nested attribute
  pattern ``{"attr": ...}`` for joins;
* ``where`` conditions: ``value_is``, ``attr_is``, ``distinct``,
  ``same_view`` (each with ``"vars"``), and ``attr_in`` (``"var"`` +
  ``"allowed"``);
* ``let`` steps: ``{"fn": name, "args": [...]}`` calling a registered
  function, or ``{"table": {...}, "key": ...}`` for a lookup that vetoes
  the match on a missing key, or ``{"rewrite": pattern-ref,
  "capability": {...}}`` running ``RewriteTextPat``;
* ``emit``: one constraint object, ``{"all": [...]}`` / ``{"any": [...]}``
  / ``{"not": ...}`` compounds, or the string ``"true"``;
* ``exact``: a boolean, or ``{"from": "RW"}`` to take the exactness of a
  rewrite result bound by a ``let`` step.

The default function registry exposes :mod:`repro.conversions`; pass
``functions=`` to extend it.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.conversions import (
    category_to_subject,
    cm_to_inches,
    dept_code,
    inches_to_cm,
    ln_fn_to_name,
    month_period,
    name_last,
    year_period,
)
from repro.core.ast import AttrRef, Constraint, Query, TRUE, attr, conj, disj, neg
from repro.core.errors import SpecificationError
from repro.core.matching import AttrPattern, ConstraintPattern, RejectMatch, Var
from repro.rules.dsl import (
    attr_in,
    attr_is,
    distinct,
    rule,
    same_view,
    value_is,
)
from repro.rules.spec import MappingSpecification
from repro.text import TextCapability, rewrite_text_pattern
from repro.text.patterns import TextPattern, Word

__all__ = ["spec_from_dict", "rule_from_dict", "DEFAULT_FUNCTIONS"]

#: Conversion functions referable by name from ``let`` steps.
DEFAULT_FUNCTIONS: dict[str, Callable] = {
    "month_period": month_period,
    "year_period": year_period,
    "ln_fn_to_name": ln_fn_to_name,
    "name_last": name_last,
    "dept_code": dept_code,
    "category_to_subject": category_to_subject,
    "inches_to_cm": inches_to_cm,
    "cm_to_inches": cm_to_inches,
    "str": str,
    "int": int,
    "lower": lambda s: str(s).lower(),
    "upper": lambda s: str(s).upper(),
}

_CONDITIONS = {
    "value_is": value_is,
    "attr_is": attr_is,
    "distinct": distinct,
    "same_view": same_view,
}


def _is_var(token: object) -> bool:
    return isinstance(token, str) and token.startswith("?") and len(token) > 1


def _var(token: str) -> Var:
    return Var(token[1:])


def _parse_component(token: object, what: str):
    """A pattern component: literal, ``?VAR``, or None."""
    if token is None:
        return None
    if _is_var(token):
        return _var(token)
    if isinstance(token, (str, int)):
        return token
    raise SpecificationError(f"bad {what} component: {token!r}")


def _parse_attr_pattern(data: Mapping) -> AttrPattern | Var:
    spec = data.get("attr")
    if spec is None:
        raise SpecificationError(f"pattern needs an 'attr' field: {data!r}")
    if _is_var(spec) and "view" not in data and "index" not in data:
        return _var(spec)  # whole-reference variable
    view = _parse_component(data.get("view"), "view")
    index = _parse_component(data.get("index"), "index")
    if isinstance(spec, str) and not _is_var(spec) and "." in spec:
        if view is not None:
            raise SpecificationError(
                f"attr {spec!r} is qualified AND a 'view' field is present"
            )
        view, spec = spec.split(".", 1)
    attr_component = _parse_component(spec, "attr")
    return AttrPattern(attr=attr_component, view=view, index=index)


def _parse_rhs(data: Mapping) -> object:
    keys = {"bind", "value", "attr"} & set(data)
    if len(keys) != 1:
        raise SpecificationError(
            f"pattern rhs needs exactly one of bind/value/attr: {data!r}"
        )
    if "bind" in data:
        return _var("?" + data["bind"])
    if "value" in data:
        return data["value"]
    return _parse_attr_pattern({k: v for k, v in data.items() if k != "op"})


def _parse_pattern(data: Mapping) -> ConstraintPattern:
    lhs = _parse_attr_pattern(data)
    op = data.get("op", "=")
    op = _var(op) if _is_var(op) else op
    rhs_fields = {k: data[k] for k in ("bind", "value") if k in data}
    if "rhs" in data:
        rhs = _parse_rhs(data["rhs"])
    elif rhs_fields:
        rhs = _parse_rhs(rhs_fields)
    else:
        raise SpecificationError(f"pattern needs a right-hand side: {data!r}")
    return ConstraintPattern(lhs=lhs, op=op, rhs=rhs)


def _parse_condition(data: Mapping) -> Callable:
    kind = data.get("cond")
    if kind == "attr_in":
        return attr_in(data["var"], data["allowed"])
    if kind in _CONDITIONS:
        return _CONDITIONS[kind](*data.get("vars", []))
    raise SpecificationError(f"unknown condition: {data!r}")


def _substitute(template: object, bindings: Mapping) -> object:
    """Resolve ``$NAME`` references inside a value template."""
    if isinstance(template, str):
        if template.startswith("$$"):
            return template[1:]
        if template.startswith("$"):
            name = template[1:]
            if name not in bindings:
                raise KeyError(name)
            return bindings[name]
        return template
    if isinstance(template, list):
        return [_substitute(item, bindings) for item in template]
    return template


def _parse_let(data: Mapping, functions: Mapping[str, Callable]):
    name = data.get("var")
    if not name:
        raise SpecificationError(f"let step needs a 'var': {data!r}")

    if "fn" in data:
        fn_name = data["fn"]
        if fn_name not in functions:
            raise SpecificationError(f"unknown function {fn_name!r} in let step")
        fn = functions[fn_name]
        args = data.get("args", [])

        def run(bindings, _fn=fn, _args=args):
            return _fn(*[_substitute(arg, bindings) for arg in _args])

        return name, run

    if "table" in data:
        table = dict(data["table"])
        key_template = data.get("key")

        def lookup(bindings, _table=table, _key=key_template):
            key = _substitute(_key, bindings)
            try:
                return _table[key]
            except (KeyError, TypeError):
                raise RejectMatch(f"no table entry for {key!r}") from None

        lookup.vocablint_hint = {  # type: ignore[attr-defined]
            "kind": "table",
            "keys": tuple(sorted(table, key=str)[:16]),
        }
        return name, lookup

    if "rewrite" in data:
        capability = TextCapability(**data.get("capability", {}))

        def run_rewrite(bindings, _cap=capability, _ref=data["rewrite"]):
            pattern = _substitute(_ref, bindings)
            if isinstance(pattern, str):
                pattern = Word(pattern)
            if not isinstance(pattern, TextPattern):
                raise RejectMatch(f"not a text pattern: {pattern!r}")
            return rewrite_text_pattern(pattern, _cap)

        return name, run_rewrite

    raise SpecificationError(f"let step needs fn/table/rewrite: {data!r}")


def _build_emit_ref(data: Mapping, bindings: Mapping) -> AttrRef:
    spec = _substitute(data["attr"], bindings)
    if isinstance(spec, AttrRef):
        ref = spec
    elif isinstance(spec, str):
        parts = [
            str(_substitute(part, bindings)) if part.startswith("$") else part
            for part in spec.split(".")
        ]
        ref = AttrRef(tuple(parts))
    else:
        raise SpecificationError(f"bad emit attr: {data['attr']!r}")
    if "index" in data:
        index = _substitute(data["index"], bindings)
        ref = ref.with_index(index if isinstance(index, int) or index is None else int(index))
    return ref


def _build_emit(data: object, bindings: Mapping) -> Query:
    if data == "true":
        return TRUE
    if not isinstance(data, Mapping):
        raise SpecificationError(f"bad emit clause: {data!r}")
    if "all" in data:
        return conj(_build_emit(item, bindings) for item in data["all"])
    if "any" in data:
        return disj(_build_emit(item, bindings) for item in data["any"])
    if "not" in data:
        return neg(_build_emit(data["not"], bindings))
    ref = _build_emit_ref(data, bindings)
    op = str(_substitute(data.get("op", "="), bindings))
    if "value" in data:
        rhs = _substitute(data["value"], bindings)
        # A rewrite result used as a value means its pattern.
        if hasattr(rhs, "pattern") and hasattr(rhs, "exact"):
            rhs = rhs.pattern
    elif "attr_rhs" in data:
        rhs = _build_emit_ref(data["attr_rhs"], bindings)
    else:
        raise SpecificationError(f"emit needs a value or attr_rhs: {data!r}")
    return Constraint(ref, op, rhs)


def rule_from_dict(
    data: Mapping, functions: Mapping[str, Callable] | None = None
):
    """Build one rule from its declarative description."""
    registry = dict(DEFAULT_FUNCTIONS)
    registry.update(functions or {})

    name = data.get("name")
    if not name:
        raise SpecificationError(f"rule needs a name: {data!r}")
    match = data.get("match")
    if not match:
        raise SpecificationError(f"rule {name!r} needs a 'match' list")
    patterns = [_parse_pattern(p) for p in match]
    conditions = [_parse_condition(c) for c in data.get("where", [])]
    let_steps = dict(
        _parse_let(step, registry) for step in data.get("let", [])
    )
    emit_template = data.get("emit")
    if emit_template is None:
        raise SpecificationError(f"rule {name!r} needs an 'emit' clause")

    def emit(bindings, _template=emit_template):
        return _build_emit(_template, bindings)

    exact_spec = data.get("exact", False)
    exact: bool | Callable
    if isinstance(exact_spec, Mapping) and "from" in exact_spec:
        source_var = exact_spec["from"]

        def _exact_from(bindings, _v=source_var):
            return bool(getattr(bindings[_v], "exact", False))

        exact = _exact_from
    else:
        exact = bool(exact_spec)

    return rule(
        name,
        patterns=patterns,
        emit=emit,
        where=conditions,
        let=let_steps,
        exact=exact,
        doc=data.get("doc", ""),
    )


def spec_from_dict(
    data: Mapping, functions: Mapping[str, Callable] | None = None
) -> MappingSpecification:
    """Build a :class:`MappingSpecification` from its declarative form."""
    for field_name in ("name", "target", "rules"):
        if field_name not in data:
            raise SpecificationError(f"specification needs {field_name!r}")
    rules = tuple(rule_from_dict(r, functions) for r in data["rules"])
    return MappingSpecification(
        name=data["name"],
        target=data["target"],
        rules=rules,
        description=data.get("description", ""),
    )
