"""Built-in mapping specifications transcribed from the paper.

* :data:`K_AMAZON` — Figure 3's ``K_Amazon`` (rules R1–R9) for the
  Amazon-style bookstore target;
* :data:`K_CLBOOKS` — the Computer Literacy target of Example 1 (only
  ``contains`` over ``author``);
* :data:`K1` / :data:`K2` — Figure 5's specifications for sources T1
  (``paper``/``aubib``) and T2 (``prof``) behind the ``fac``/``pub`` views;
* :data:`K_MAP` — Example 8's map-source rules (``x_min``/``x_max``/... to
  ``X_range``/``C_ll``/...), the canonical *redundant cross-matching* case.

Rule numbering follows Example 4's trace: R1 simple attributes, R2 the
ln+fn pair, R3 ln alone, R4 ``ti contains``, R5 ``ti =``, R6 pyear+pmonth,
R7 pyear alone, R8 kwd, R9 category.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.conversions import (
    CATEGORY_TO_SUBJECT,
    DEPT_CODES,
    ln_fn_to_name,
    month_period,
    year_period,
)
from repro.core.ast import AttrRef, C, disj
from repro.core.matching import RejectMatch
from repro.core.values import Point, Range
from repro.rules.dsl import (
    V,
    ap,
    attr_in,
    cpat,
    rule,
    same_view,
    table_lookup,
    value_is,
)
from repro.rules.spec import MappingSpecification
from repro.text import TextCapability, rewrite_text_pattern
from repro.text.patterns import MatchAll, TextPattern, Word

__all__ = [
    "K_AMAZON",
    "K_CLBOOKS",
    "K1",
    "K2",
    "K_MAP",
    "AMAZON_TEXT",
    "CLBOOKS_TEXT",
    "T1_TEXT",
    "builtin_specifications",
]

# ---------------------------------------------------------------------------
# Target text capabilities
# ---------------------------------------------------------------------------

#: Amazon's word-based search: Boolean and/or over words, no near, no phrase.
AMAZON_TEXT = TextCapability(supports_phrase=False, supports_near=False)

#: Clbooks supports proximity but not exact phrases.
CLBOOKS_TEXT = TextCapability(supports_phrase=False, supports_near=True)

#: Source T1's bibliography search: keyword conjunctions only (Example 3
#: relaxes ``data (near) mining`` to ``data (∧) mining`` there).
T1_TEXT = TextCapability(supports_phrase=False, supports_near=False)


def _contains_or_true(attr_name: str, rewrite) -> object:
    """Emit ``[attr contains P]`` — or ``True`` when P matched everything.

    A rewrite can collapse to :class:`MatchAll` when every word is a
    target stopword; the minimal subsuming constraint is then no
    constraint at all.
    """
    from repro.core.ast import TRUE

    if isinstance(rewrite.pattern, MatchAll):
        return TRUE
    return C(attr_name, "contains", rewrite.pattern)


def _rewriter(capability: TextCapability):
    """A ``let`` function running RewriteTextPat on the bound pattern P1."""

    def rewrite(bindings: Mapping) -> object:
        pattern = bindings["P1"]
        if isinstance(pattern, str):
            pattern = Word(pattern)
        if not isinstance(pattern, TextPattern):
            raise RejectMatch(f"not a text pattern: {pattern!r}")
        return rewrite_text_pattern(pattern, capability)

    return rewrite


# ---------------------------------------------------------------------------
# K_Amazon (Figure 3)
# ---------------------------------------------------------------------------

#: ``SimpleMapping`` attributes: plain renames into Amazon's vocabulary.
AMAZON_SIMPLE_ATTRS = {
    "publisher": "publisher",
    "id-no": "isbn",
}

_R1 = rule(
    "R1",
    patterns=[cpat(V("A1"), "=", V("N"))],
    where=[attr_in("A1", AMAZON_SIMPLE_ATTRS), value_is("N")],
    let={"A2": lambda b: AMAZON_SIMPLE_ATTRS[b["A1"].attr]},
    emit=lambda b: C(b["A2"], "=", b["N"]),
    exact=True,
    doc="SimpleMapping(A1): plain attribute rename (publisher, id-no -> isbn).",
)

_R2 = rule(
    "R2",
    patterns=[cpat("ln", "=", V("L")), cpat("fn", "=", V("F"))],
    where=[value_is("L", "F")],
    let={"N": lambda b: ln_fn_to_name(b["L"], b["F"])},
    emit=lambda b: C("author", "=", b["N"]),
    exact=True,
    doc="ln + fn are inter-dependent: combine into Amazon's author format.",
)

_R3 = rule(
    "R3",
    patterns=[cpat("ln", "=", V("L"))],
    where=[value_is("L")],
    emit=lambda b: C("author", "=", b["L"]),
    exact=True,
    doc="ln alone: author name with unknown first name (Example 2).",
)

_R4 = rule(
    "R4",
    patterns=[cpat("ti", "contains", V("P1"))],
    let={"RW": _rewriter(AMAZON_TEXT)},
    emit=lambda b: _contains_or_true("ti-word", b["RW"]),
    exact=lambda b: b["RW"].exact,
    doc="RewriteTextPat: relax unsupported text operators (near -> and).",
)

_R5 = rule(
    "R5",
    patterns=[cpat("ti", "=", V("T"))],
    where=[value_is("T")],
    emit=lambda b: C("title", "starts", b["T"]),
    doc="Amazon has no exact-title search; 'starts' minimally subsumes '='.",
)

_R6 = rule(
    "R6",
    patterns=[cpat("pyear", "=", V("Y")), cpat("pmonth", "=", V("M"))],
    where=[value_is("Y", "M")],
    let={"D": lambda b: month_period(b["Y"], b["M"])},
    emit=lambda b: C("pdate", "during", b["D"]),
    exact=True,
    doc="pyear + pmonth are inter-dependent: Amazon dates need the year.",
)

_R7 = rule(
    "R7",
    patterns=[cpat("pyear", "=", V("Y"))],
    where=[value_is("Y")],
    let={"D": lambda b: year_period(b["Y"])},
    emit=lambda b: C("pdate", "during", b["D"]),
    exact=True,
    doc="pyear alone: a partial (whole-year) date.",
)

_R8 = rule(
    "R8",
    patterns=[cpat("kwd", "contains", V("P1"))],
    let={"RW": _rewriter(AMAZON_TEXT)},
    emit=lambda b: disj(
        [
            _contains_or_true("ti-word", b["RW"]),
            _contains_or_true("subject-word", b["RW"]),
        ]
    ),
    exact=lambda b: b["RW"].exact,
    doc=(
        "No kwd attribute: keywords are the title and subject words, so "
        "the disjunction is exact unless the pattern had to be relaxed."
    ),
)

_R9 = rule(
    "R9",
    patterns=[cpat("category", "=", V("X"))],
    where=[value_is("X")],
    let={"S": table_lookup(CATEGORY_TO_SUBJECT, lambda b: b["X"])},
    emit=lambda b: C("subject", "=", b["S"]),
    doc="Classification category code -> broader subject heading.",
)

K_AMAZON = MappingSpecification(
    name="K_Amazon",
    target="Amazon",
    rules=(_R1, _R2, _R3, _R4, _R5, _R6, _R7, _R8, _R9),
    description="Figure 3: mapping rules for the Amazon power-search target.",
)


# ---------------------------------------------------------------------------
# K_Clbooks (Example 1)
# ---------------------------------------------------------------------------

_RC1 = rule(
    "Rc1",
    patterns=[cpat("ln", "=", V("L"))],
    where=[value_is("L")],
    emit=lambda b: C("author", "contains", Word(str(b["L"]))),
    doc="Clbooks only matches words anywhere in author names (Example 1).",
)

_RC2 = rule(
    "Rc2",
    patterns=[cpat("fn", "=", V("F"))],
    where=[value_is("F")],
    emit=lambda b: C("author", "contains", Word(str(b["F"]))),
    doc="First names are searchable as words, unlike at Amazon.",
)

_RC3 = rule(
    "Rc3",
    patterns=[cpat("ti", "contains", V("P1"))],
    let={"RW": _rewriter(CLBOOKS_TEXT)},
    emit=lambda b: _contains_or_true("ti", b["RW"]),
    exact=lambda b: b["RW"].exact,
    doc="Title text search; Clbooks keeps proximity.",
)

_RC4 = rule(
    "Rc4",
    patterns=[cpat("publisher", "=", V("P"))],
    where=[value_is("P")],
    emit=lambda b: C("publisher", "=", b["P"]),
    exact=True,
    doc="Publisher passes through unchanged.",
)

K_CLBOOKS = MappingSpecification(
    name="K_Clbooks",
    target="Clbooks",
    rules=(_RC1, _RC2, _RC3, _RC4),
    description="Example 1: Computer Literacy supports only word containment on author.",
)


# ---------------------------------------------------------------------------
# K1 — source T1: paper(ti, au), aubib(name, bib)  (Figure 5)
# ---------------------------------------------------------------------------

#: View attribute -> the T1 relation attribute it expands to.
_T1_NAME_ATTR = {
    "fac": ("aubib", "name"),
    "pub": ("paper", "au"),
}


def _t1_name_ref(ref: AttrRef) -> AttrRef:
    """AttrNameMapping for K1: fac.ln/fn -> fac.aubib.name, pub.* -> pub.paper.au."""
    view = ref.view
    if view not in _T1_NAME_ATTR:
        raise RejectMatch(f"no T1 name mapping for view {view!r}")
    relation, attribute = _T1_NAME_ATTR[view]
    return AttrRef((view, relation, attribute), ref.index)


_K1_R1 = rule(
    "R1",
    patterns=[cpat(ap("bib", view="fac", index=V("i")), "contains", V("P1"))],
    let={"RW": _rewriter(T1_TEXT)},
    emit=lambda b: (
        _contains_or_true("unused", b["RW"])
        if isinstance(b["RW"].pattern, MatchAll)
        else C(AttrRef(("fac", "aubib", "bib"), b["i"]), "contains", b["RW"].pattern)
    ),
    exact=lambda b: b["RW"].exact,
    doc="fac.bib search goes to aubib.bib; T1 lacks near (Example 3).",
)

_K1_R2 = rule(
    "R2",
    patterns=[cpat(ap("ti", view="pub", index=V("i")), "=", V("T"))],
    where=[value_is("T")],
    emit=lambda b: C(AttrRef(("pub", "paper", "ti"), b["i"]), "=", b["T"]),
    exact=True,
    doc="pub.ti is paper.ti verbatim.",
)

_K1_R3 = rule(
    "R3",
    patterns=[cpat(V("A1"), "=", V("N"))],
    where=[attr_in("A1", {"ln", "fn"}), value_is("N")],
    let={"A2": lambda b: _t1_name_ref(b["A1"])},
    emit=lambda b: C(b["A2"], "contains", Word(str(b["N"]))),
    doc="A lone ln or fn relaxes to word containment in the combined name.",
)

_K1_R4 = rule(
    "R4",
    patterns=[cpat(V("AL"), "=", V("L")), cpat(V("AF"), "=", V("F"))],
    where=[
        attr_in("AL", {"ln"}),
        attr_in("AF", {"fn"}),
        same_view("AL", "AF"),
        value_is("L", "F"),
    ],
    let={
        "A": lambda b: _t1_name_ref(b["AL"]),
        "N": lambda b: ln_fn_to_name(b["L"], b["F"]),
    },
    emit=lambda b: C(b["A"], "=", b["N"]),
    exact=True,
    doc="ln + fn of the same view combine into the stored name format.",
)

_K1_R5 = rule(
    "R5",
    patterns=[
        cpat(ap("ln", view=V("V1")), "=", ap("ln", view=V("V2"))),
        cpat(ap("fn", view=V("V1")), "=", ap("fn", view=V("V2"))),
    ],
    let={
        "A1": lambda b: _t1_name_ref(b["V1"].ref("ln")),
        "A2": lambda b: _t1_name_ref(b["V2"].ref("ln")),
    },
    emit=lambda b: C(b["A1"], "=", b["A2"]),
    exact=True,
    doc="The ln + fn join pair becomes one join on the combined names.",
)

K1 = MappingSpecification(
    name="K1",
    target="T1",
    rules=(_K1_R1, _K1_R2, _K1_R3, _K1_R4, _K1_R5),
    description="Figure 5: rules for source T1 (paper, aubib) behind fac/pub.",
)


# ---------------------------------------------------------------------------
# K2 — source T2: prof(ln, fn, dept)  (Figure 5)
# ---------------------------------------------------------------------------

_K2_R6 = rule(
    "R6",
    patterns=[cpat(ap(V("A1"), view="fac", index=V("i")), "=", V("N"))],
    where=[attr_in("A1", {"ln", "fn"}), value_is("N")],
    emit=lambda b: C(AttrRef(("fac", "prof", b["A1"]), b["i"]), "=", b["N"]),
    exact=True,
    doc="prof stores ln/fn directly; exact name equality is supported.",
)

_K2_R7 = rule(
    "R7",
    patterns=[cpat(ap("dept", view="fac", index=V("i")), "=", V("D"))],
    where=[value_is("D")],
    let={"C": table_lookup(DEPT_CODES, lambda b: str(b["D"]).strip().lower())},
    emit=lambda b: C(AttrRef(("fac", "prof", "dept"), b["i"]), "=", b["C"]),
    exact=True,
    doc="DeptCode: T2 uses numeric department codes (cs -> 230, Example 3).",
)

_K2_R8 = rule(
    "R8",
    patterns=[
        cpat(
            ap(V("A"), view="fac", index=V("i")),
            "=",
            ap(V("A"), view="fac", index=V("j")),
        )
    ],
    where=[attr_in("A", {"ln", "fn"})],
    emit=lambda b: C(
        AttrRef(("fac", "prof", b["A"]), b["i"]),
        "=",
        AttrRef(("fac", "prof", b["A"]), b["j"]),
    ),
    exact=True,
    doc="Self-joins between fac instances map onto prof (Section 4.2).",
)

K2 = MappingSpecification(
    name="K2",
    target="T2",
    rules=(_K2_R6, _K2_R7, _K2_R8),
    description="Figure 5: rules for source T2 (prof) behind fac.",
)


# ---------------------------------------------------------------------------
# K_map — the map source G of Example 8
# ---------------------------------------------------------------------------


def _num(bindings: Mapping, name: str) -> float:
    value = bindings[name]
    if not isinstance(value, (int, float)):
        raise RejectMatch(f"{name} must be numeric, got {value!r}")
    return value


_RM1 = rule(
    "Rm1",
    patterns=[cpat("x_min", "=", V("A")), cpat("x_max", "=", V("B"))],
    where=[value_is("A", "B")],
    let={"R": lambda b: Range(_num(b, "A"), _num(b, "B"))},
    emit=lambda b: C("X_range", "=", b["R"]),
    exact=True,
    doc="x_min + x_max give the full X_range.",
)

_RM2 = rule(
    "Rm2",
    patterns=[cpat("y_min", "=", V("A")), cpat("y_max", "=", V("B"))],
    where=[value_is("A", "B")],
    let={"R": lambda b: Range(_num(b, "A"), _num(b, "B"))},
    emit=lambda b: C("Y_range", "=", b["R"]),
    exact=True,
    doc="y_min + y_max give the full Y_range.",
)

_RM3 = rule(
    "Rm3",
    patterns=[cpat("x_min", "=", V("A")), cpat("y_min", "=", V("B"))],
    where=[value_is("A", "B")],
    let={"P": lambda b: Point(_num(b, "A"), _num(b, "B"))},
    emit=lambda b: C("C_ll", "=", b["P"]),
    exact=True,
    doc="x_min + y_min give the lower-left corner.",
)

_RM4 = rule(
    "Rm4",
    patterns=[cpat("x_max", "=", V("A")), cpat("y_max", "=", V("B"))],
    where=[value_is("A", "B")],
    let={"P": lambda b: Point(_num(b, "A"), _num(b, "B"))},
    emit=lambda b: C("C_ur", "=", b["P"]),
    exact=True,
    doc="x_max + y_max give the upper-right corner.",
)

K_MAP = MappingSpecification(
    name="K_map",
    target="G",
    rules=(_RM1, _RM2, _RM3, _RM4),
    description=(
        "Example 8: the map target's interrelated attribute pairs "
        "(X_range/Y_range vs C_ll/C_ur) create redundant cross-matchings."
    ),
)


def builtin_specifications() -> dict[str, MappingSpecification]:
    """All built-in specifications keyed by name."""
    return {
        spec.name: spec
        for spec in (K_AMAZON, K_CLBOOKS, K1, K2, K_MAP)
    }
