"""Mapping specifications — a named rule set for one target (Definition 4).

A :class:`MappingSpecification` bundles the rules ``K`` for translating
into one target context, e.g. ``K_Amazon`` of Figure 3.  The specification
is the unit every algorithm takes as its ``K`` input.

Soundness and completeness (Definition 3/4) are *semantic* properties only
a human expert can certify; what the library can do mechanically is

* structural validation (unique rule names, non-empty heads), and
* a **vocabulary audit** (:func:`audit_vocabulary`): report which of a set
  of representative constraints participate in *no* matching — i.e. would
  silently map to ``True`` — so the integrator can spot missing rules.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ast import Constraint
from repro.core.errors import SpecificationError
from repro.core.matching import Matcher, Rule

if TYPE_CHECKING:
    from repro.perf.index import CompiledRuleIndex

__all__ = ["MappingSpecification", "AuditReport", "audit_vocabulary"]

#: Global version-stamp source.  Every specification construction *and*
#: every mutation draws a fresh stamp, so (name, version) pairs uniquely
#: identify one rule-set state *within one process*.  Across processes
#: the counter restarts, so two spec objects can carry the same stamp
#: with different rule sets — anything durable (cache keys, snapshots,
#: registry versions) must pair the stamp with :attr:`content_digest`.
_VERSION_STAMPS = itertools.count(1)

_DIGEST_SEP = "\x1f"


def _content_digest(spec: "MappingSpecification") -> str:
    """sha256 over the declarative rule surface (see ``content_digest``)."""
    parts = [spec.name, spec.target, str(len(spec.rules))]
    for rule in spec.rules:
        exactness = str(rule.exact) if isinstance(rule.exact, bool) else "<dynamic>"
        parts.extend((rule.name, rule.doc, exactness, str(len(rule.conditions))))
        parts.extend(repr(pattern) for pattern in rule.patterns)
    digest = hashlib.sha256(_DIGEST_SEP.join(parts).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class MappingSpecification:
    """The mapping specification ``K`` for one target system ``T``."""

    name: str
    target: str
    rules: tuple[Rule, ...]
    description: str = ""

    if TYPE_CHECKING:
        # Populated in __post_init__; not dataclass fields (the guard keeps
        # them out of __annotations__ at runtime).
        _rules_by_name: dict[str, Rule]
        _version: int
        _digest: str | None
        _compiled_index: CompiledRuleIndex | None

    def __post_init__(self) -> None:
        counts = Counter(rule.name for rule in self.rules)
        duplicates = sorted(name for name, seen in counts.items() if seen > 1)
        if duplicates:
            raise SpecificationError(
                f"specification {self.name!r} has duplicate rule names: {duplicates}"
            )
        # Rule lookup index; names are unique, so this is total.  The
        # dataclass is frozen, hence the object.__setattr__ back door.
        object.__setattr__(
            self, "_rules_by_name", {rule.name: rule for rule in self.rules}
        )
        object.__setattr__(self, "_version", next(_VERSION_STAMPS))
        object.__setattr__(self, "_digest", None)
        object.__setattr__(self, "_compiled_index", None)

    # -- versioning + compiled index -------------------------------------------

    @property
    def version(self) -> int:
        """The rule-set version stamp this specification currently carries.

        Unique per (specification, mutation state) *within one process*:
        construction draws a stamp and every :meth:`add_rule`/
        :meth:`remove_rule` draws a fresh one.  Translation-cache keys
        and compiled rule indexes pin this stamp together with
        :attr:`content_digest`, so anything built against an outdated
        rule set misses (cache) or raises (index) instead of silently
        answering wrong — even when a different process hands out the
        same counter value for a different rule set.
        """
        return self._version

    @property
    def content_digest(self) -> str:
        """A process-independent digest of the declarative rule surface.

        Stable across restarts (unlike :attr:`version`) and sensitive to
        every declarative mutation: adding, removing, renaming, or
        re-patterning a rule all change the digest.  A behavioral change
        hidden inside a rule's emit/condition closures without any
        declarative change is not detectable — rename the rule (or touch
        its doc) when changing rule semantics.  Memoized per version.
        """
        digest = self._digest
        if digest is None:
            digest = _content_digest(self)
            object.__setattr__(self, "_digest", digest)
        return digest

    def _bump_version(self) -> None:
        object.__setattr__(self, "_version", next(_VERSION_STAMPS))
        object.__setattr__(self, "_digest", None)
        object.__setattr__(self, "_compiled_index", None)

    def compiled_index(self) -> CompiledRuleIndex:
        """The :class:`CompiledRuleIndex` for the current rule set.

        Built lazily on first use and shared by every subsequent
        :meth:`matcher` until the specification mutates, which detaches
        it (stale handles raise on their next probe).
        """
        index = self._compiled_index
        if index is None or index.version != self._version:
            from repro.perf.index import CompiledRuleIndex

            index = CompiledRuleIndex(self)
            object.__setattr__(self, "_compiled_index", index)
        return index

    # -- mutation --------------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Append ``rule``, bumping the version stamp.

        The specification object mutates in place (all frozen-dataclass
        invariants except the rule tuple are preserved); cached
        translations keyed on the old version become unreachable and any
        previously built compiled index goes stale.
        """
        if rule.name in self._rules_by_name:
            raise SpecificationError(
                f"specification {self.name!r} already has a rule named {rule.name!r}"
            )
        object.__setattr__(self, "rules", (*self.rules, rule))
        self._rules_by_name[rule.name] = rule
        self._bump_version()

    def remove_rule(self, name: str) -> Rule:
        """Remove and return the rule called ``name``, bumping the version."""
        if name not in self._rules_by_name:
            raise SpecificationError(
                f"no rule named {name!r} in specification {self.name!r}"
            )
        removed = self._rules_by_name.pop(name)
        object.__setattr__(
            self, "rules", tuple(rule for rule in self.rules if rule.name != name)
        )
        self._bump_version()
        return removed

    def matcher(self, *, interpret: bool = False) -> Matcher:
        """A fresh :class:`Matcher` over this specification's rules.

        Each translation call should use its own matcher so the prematch
        cache is scoped to one query's constraint universe.  The matcher
        carries the specification's compiled rule index, so it probes
        only rules whose heads can bind the constraint group — through
        their compiled closures by default, or the interpreted pattern
        walk with ``interpret=True`` (the equivalence oracle; see
        :mod:`repro.perf.compile`).
        """
        return Matcher(self.rules, index=self.compiled_index(), interpret=interpret)

    def get_rule(self, name: str) -> Rule:
        try:
            return self._rules_by_name[name]
        except KeyError:
            raise KeyError(
                f"no rule named {name!r} in specification {self.name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __str__(self) -> str:
        return f"{self.name} -> {self.target} ({len(self.rules)} rules)"


@dataclass(frozen=True)
class AuditReport:
    """Outcome of :func:`audit_vocabulary`."""

    covered: tuple[Constraint, ...]
    uncovered: tuple[Constraint, ...]

    @property
    def coverage(self) -> float:
        total = len(self.covered) + len(self.uncovered)
        return 1.0 if total == 0 else len(self.covered) / total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"coverage: {self.coverage:.0%}"]
        for constraint in self.uncovered:
            lines.append(f"  UNCOVERED {constraint}")
        return "\n".join(lines)


def audit_vocabulary(
    spec: MappingSpecification, constraints: list[Constraint]
) -> AuditReport:
    """Which representative constraints can participate in some matching?

    Constraints appearing in no matching of the full set map to ``True``
    (no constraint at the target) for every query built from this
    vocabulary — usually a sign that a rule is missing, the only
    completeness symptom detectable without domain semantics.
    """
    matcher = spec.matcher()
    matchings = matcher.potential(constraints)
    touched: set[Constraint] = set()
    for matching in matchings:
        touched |= matching.constraints
    covered = tuple(c for c in constraints if c in touched)
    uncovered = tuple(c for c in constraints if c not in touched)
    return AuditReport(covered=covered, uncovered=uncovered)
