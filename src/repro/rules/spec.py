"""Mapping specifications — a named rule set for one target (Definition 4).

A :class:`MappingSpecification` bundles the rules ``K`` for translating
into one target context, e.g. ``K_Amazon`` of Figure 3.  The specification
is the unit every algorithm takes as its ``K`` input.

Soundness and completeness (Definition 3/4) are *semantic* properties only
a human expert can certify; what the library can do mechanically is

* structural validation (unique rule names, non-empty heads), and
* a **vocabulary audit** (:func:`audit_vocabulary`): report which of a set
  of representative constraints participate in *no* matching — i.e. would
  silently map to ``True`` — so the integrator can spot missing rules.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ast import Constraint
from repro.core.errors import SpecificationError
from repro.core.matching import Matcher, Rule

__all__ = ["MappingSpecification", "AuditReport", "audit_vocabulary"]


@dataclass(frozen=True)
class MappingSpecification:
    """The mapping specification ``K`` for one target system ``T``."""

    name: str
    target: str
    rules: tuple[Rule, ...]
    description: str = ""

    if TYPE_CHECKING:
        # Populated in __post_init__; not a dataclass field (the guard keeps
        # it out of __annotations__ at runtime).
        _rules_by_name: dict[str, Rule]

    def __post_init__(self) -> None:
        counts = Counter(rule.name for rule in self.rules)
        duplicates = sorted(name for name, seen in counts.items() if seen > 1)
        if duplicates:
            raise SpecificationError(
                f"specification {self.name!r} has duplicate rule names: {duplicates}"
            )
        # Rule lookup index; names are unique, so this is total.  The
        # dataclass is frozen, hence the object.__setattr__ back door.
        object.__setattr__(
            self, "_rules_by_name", {rule.name: rule for rule in self.rules}
        )

    def matcher(self) -> Matcher:
        """A fresh :class:`Matcher` over this specification's rules.

        Each translation call should use its own matcher so the prematch
        cache is scoped to one query's constraint universe.
        """
        return Matcher(self.rules)

    def get_rule(self, name: str) -> Rule:
        try:
            return self._rules_by_name[name]
        except KeyError:
            raise KeyError(
                f"no rule named {name!r} in specification {self.name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __str__(self) -> str:
        return f"{self.name} -> {self.target} ({len(self.rules)} rules)"


@dataclass(frozen=True)
class AuditReport:
    """Outcome of :func:`audit_vocabulary`."""

    covered: tuple[Constraint, ...]
    uncovered: tuple[Constraint, ...]

    @property
    def coverage(self) -> float:
        total = len(self.covered) + len(self.uncovered)
        return 1.0 if total == 0 else len(self.covered) / total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"coverage: {self.coverage:.0%}"]
        for constraint in self.uncovered:
            lines.append(f"  UNCOVERED {constraint}")
        return "\n".join(lines)


def audit_vocabulary(
    spec: MappingSpecification, constraints: list[Constraint]
) -> AuditReport:
    """Which representative constraints can participate in some matching?

    Constraints appearing in no matching of the full set map to ``True``
    (no constraint at the target) for every query built from this
    vocabulary — usually a sign that a rule is missing, the only
    completeness symptom detectable without domain semantics.
    """
    matcher = spec.matcher()
    matchings = matcher.potential(constraints)
    touched: set[Constraint] = set()
    for matching in matchings:
        touched |= matching.constraints
    covered = tuple(c for c in constraints if c in touched)
    uncovered = tuple(c for c in constraints if c not in touched)
    return AuditReport(covered=covered, uncovered=uncovered)
