"""Synthetic workload generators for the scaling benches and property tests.

The paper's analytic claims (Sections 4.4, 5, 8) are parameterized by

* ``N`` — constraints per query, ``R`` — rules, ``P`` — patterns per rule;
* the *dependency degree* ``e`` — how many constraints per conjunct can
  participate in cross-conjunct matchings;
* query shape — depth, fan-out, ∧/∨ mix.

This module builds rule specifications and query trees with those knobs
exposed, over a synthetic vocabulary ``a0, a1, ...`` mapping to a target
vocabulary ``t_...``.  Everything is seeded for reproducibility.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.core.ast import C, Query, conj, disj
from repro.rules.dsl import V, cpat, rule, value_is
from repro.rules.spec import MappingSpecification

__all__ = [
    "vocabulary",
    "synthetic_spec",
    "random_spec",
    "random_query",
    "chain_query",
    "consolidation_workload",
    "dependent_conjunction",
    "simple_conjunction",
    "theory_equivalent",
]


def vocabulary(n: int) -> list[str]:
    """The synthetic attribute names ``a0 .. a{n-1}``."""
    return [f"a{i}" for i in range(n)]


def _group_rule(group: Sequence[str], exact: bool) -> object:
    """A rule mapping the conjunction of ``[ai = Vi]`` to one target constraint."""
    variables = [V(f"X{i}") for i in range(len(group))]
    target = "t_" + "_".join(group)

    def emit(bindings, _vars=variables, _target=target):
        combined = "|".join(str(bindings[v.name]) for v in _vars)
        return C(_target, "=", combined)

    return rule(
        "R_" + "_".join(group),
        patterns=[cpat(attr, "=", var) for attr, var in zip(group, variables)],
        where=[value_is(*(var.name for var in variables))],
        emit=emit,
        exact=exact,
    )


def synthetic_spec(
    groups: Iterable[Sequence[str]],
    singletons: Iterable[str] = (),
    name: str = "K_synth",
    exact: bool = True,
) -> MappingSpecification:
    """Build a specification from dependency ``groups`` plus singleton rules.

    Each group becomes one multi-pattern rule (its constraints are
    inter-dependent); each singleton attribute gets an identity-style rule.
    The groups *are* the dependency structure: queries whose conjuncts
    split a group become inseparable.
    """
    rules = [_group_rule(tuple(group), exact) for group in groups]
    rules += [_group_rule((attr,), exact) for attr in singletons]
    return MappingSpecification(
        name=name, target="synthetic", rules=tuple(rules)
    )


def _variant_rule(attr: str, suffix: str, target: str) -> object:
    """A singleton rule named ``R_{attr}__{suffix}`` emitting to ``target``.

    With ``target = "t_{attr}"`` this is an exact clone of the
    :func:`_group_rule` singleton for ``attr`` under a different name — a
    planted duplicate.  Any other target makes it a decoy: same head
    signature (so candidate pairing must examine it) but a different
    emission (so consolidation must refuse to merge it).
    """
    var = V("X0")

    def emit(bindings, _target=target):
        return C(_target, "=", str(bindings["X0"]))

    return rule(
        f"R_{attr}__{suffix}",
        patterns=[cpat(attr, "=", var)],
        where=[value_is("X0")],
        emit=emit,
        exact=True,
    )


def consolidation_workload(
    n: int,
    duplicate_every: int = 50,
    decoy_every: int = 0,
    name: str = "K_consol",
) -> tuple[MappingSpecification, tuple[str, ...], tuple[str, ...]]:
    """A rule library with planted duplicates (and optional decoys).

    ``n`` singleton rules over ``a0 .. a{n-1}``; every
    ``duplicate_every``-th attribute additionally gets an exact clone
    under a distinct name, and (when ``decoy_every`` is set) some
    attributes get a same-signature rule with a *different* emission.
    Returns ``(spec, duplicate_names, decoy_names)``:

    * indexed candidate pairing must examine exactly
      ``len(duplicates) + len(decoys)`` pairs — every other rule sits in
      a singleton signature bucket;
    * consolidation must propose dropping exactly the duplicates, with
      every proposal machine-verified, and never touch a decoy.
    """
    attrs = vocabulary(n)
    rules = [_group_rule((attr,), exact=True) for attr in attrs]
    dup_idx = list(range(0, n, duplicate_every))
    decoy_idx = []
    if decoy_every:
        taken = set(dup_idx)
        decoy_idx = [i for i in range(1, n, decoy_every) if i not in taken]
    duplicates = []
    for i in dup_idx:
        clone = _variant_rule(attrs[i], "dup", f"t_{attrs[i]}")
        rules.append(clone)
        duplicates.append(clone.name)
    decoys = []
    for i in decoy_idx:
        decoy = _variant_rule(attrs[i], "alt", f"t_alt_{attrs[i]}")
        rules.append(decoy)
        decoys.append(decoy.name)
    spec = MappingSpecification(
        name=name, target="synthetic", rules=tuple(rules)
    )
    return spec, tuple(duplicates), tuple(decoys)


def random_spec(
    attrs: Sequence[str],
    pair_count: int,
    seed: int,
    singleton_fraction: float = 1.0,
    exact: bool = True,
) -> MappingSpecification:
    """A specification with ``pair_count`` random dependent attribute pairs.

    Every attribute additionally gets a singleton rule with probability
    ``singleton_fraction`` — attributes with neither rule map to ``True``.
    """
    rng = random.Random(seed)
    pairs: set[tuple[str, str]] = set()
    guard = 0
    while len(pairs) < pair_count and guard < 50 * (pair_count + 1):
        guard += 1
        a, b = rng.sample(list(attrs), 2)
        pairs.add((min(a, b), max(a, b)))
    singles = [attr for attr in attrs if rng.random() < singleton_fraction]
    return synthetic_spec(
        groups=sorted(pairs),
        singletons=singles,
        name=f"K_rand_{seed}",
        exact=exact,
    )


def simple_conjunction(
    attrs: Sequence[str], rng: random.Random | int = 0
) -> Query:
    """A simple conjunction ``[a = v]`` over the given attributes."""
    rng = rng if isinstance(rng, random.Random) else random.Random(rng)
    return conj([C(attr, "=", rng.randint(0, 9)) for attr in attrs])


def random_query(
    attrs: Sequence[str],
    seed: int = 0,
    n_constraints: int = 8,
    max_depth: int = 4,
    fanout: int = 3,
) -> Query:
    """A random alternating ∧/∨ tree with ~``n_constraints`` leaves."""
    rng = random.Random(seed)
    budget = [n_constraints]

    def leaf() -> Query:
        budget[0] -= 1
        return C(rng.choice(list(attrs)), "=", rng.randint(0, 9))

    def build(depth: int, conjunctive: bool) -> Query:
        if depth >= max_depth or budget[0] <= 1 or rng.random() < 0.3:
            return leaf()
        width = rng.randint(2, fanout)
        children = [build(depth + 1, not conjunctive) for _ in range(width)]
        return conj(children) if conjunctive else disj(children)

    query = build(0, conjunctive=bool(rng.getrandbits(1)))
    while budget[0] > 0:
        extra = build(1, conjunctive=False)
        query = conj([query, extra])
    return query


def chain_query(n: int, dependent: bool = False) -> Query:
    """The Section 8 worst-compactness shape: ``(a1 ∨ b1) ∧ ... ∧ (an ∨ bn)``.

    With ``dependent=False`` all constraints are pairwise independent: the
    query is fully separable, TDQM's output stays linear in ``n`` while the
    DNF baseline materializes 2^n terms.  With ``dependent=True`` each
    ``ai`` is paired (by a rule group) with ``a(i+1)``, forcing rewrites.
    """
    conjuncts = []
    for i in range(n):
        conjuncts.append(
            disj([C(f"a{2 * i}", "=", i), C(f"a{2 * i + 1}", "=", i)])
        )
    return conj(conjuncts)


def theory_equivalent(left: Query, right: Query) -> bool:
    """Semantic equivalence for *synthetic-target* queries.

    Purely propositional comparison treats ``[t_a6_a7 = "7|3"]`` and
    ``[t_a6 = "7"]`` as independent atoms, but the synthetic rules make the
    pair emission strictly stronger (Lemma 1: S(m') ⊆ S(m) for m ⊆ m').
    Two mappings produced by different algorithm routes can therefore be
    semantically equal while propositionally different.  This checker
    enumerates only *theory-consistent* truth assignments:

    * an atom whose (attr, value) bindings are a superset of another's
      implies it (``t_a6_a7 = "7|3"`` ⟹ ``t_a6 = "7"``);
    * two atoms binding the same attribute to different values are
      mutually exclusive (``t_a2 = "1"`` ∧ ``t_a2 = "4"`` is False).

    Only meaningful for queries over the ``t_...`` vocabulary emitted by
    :func:`synthetic_spec` with :func:`vocabulary` attribute names (which
    contain no underscores).
    """
    from itertools import product as _product

    from repro.core.subsume import evaluate_assignment

    atoms = sorted(left.constraints() | right.constraints(), key=str)
    parts = {atom: _atom_bindings(atom) for atom in atoms}
    if len(atoms) > 20:
        raise ValueError("theory_equivalent: too many atoms for exhaustion")
    for bits in _product((False, True), repeat=len(atoms)):
        assignment = dict(zip(atoms, bits))
        if not _consistent(assignment, parts):
            continue
        if evaluate_assignment(left, assignment) != evaluate_assignment(
            right, assignment
        ):
            return False
    return True


def _atom_bindings(constraint) -> frozenset | None:
    """(attr, value) bindings encoded in a synthetic constraint.

    Both vocabularies participate: a source constraint ``[a0 = 5]`` binds
    ``{("a0", "5")}`` and the *exact* target emission ``[t_a0 = "5"]``
    binds the same set, making them mutually implying — which is precisely
    what rule exactness means for the synthetic specs.
    """
    import re as _re

    name = constraint.lhs.attr
    if _re.fullmatch(r"a\d+", name):
        return frozenset({(name, str(constraint.rhs))})
    if not name.startswith("t_"):
        return None
    attrs = name[2:].split("_")
    values = str(constraint.rhs).split("|")
    if len(attrs) != len(values):
        return None
    return frozenset(zip(attrs, values))


def _consistent(assignment: dict, parts: dict) -> bool:
    # Conflicts: one attribute bound to two different values.
    bound: dict[str, str] = {}
    for atom, value in assignment.items():
        if not value or parts[atom] is None:
            continue
        for attr, val in parts[atom]:
            if bound.setdefault(attr, val) != val:
                return False
    # Joint implication: with exact rules, an atom whose bindings are all
    # established by the true atoms *together* cannot be false —
    # [a6 = 5] ∧ [a7 = 6] forces the pair emission [t_a6_a7 = "5|6"].
    established = set(bound.items())
    for atom, value in assignment.items():
        if value or parts[atom] is None:
            continue
        if parts[atom] <= established:
            return False
    return True


def dependent_conjunction(
    n_conjuncts: int,
    k_constraints: int,
    e_dependent: int,
    seed: int = 0,
) -> tuple[Query, MappingSpecification]:
    """The Section 8 cost-model workload: n conjuncts of k constraints,
    ``e`` of which per conjunct participate in cross-conjunct pair rules.

    Returns the query and a matching specification whose dependency degree
    is exactly ``e`` (``e = 0`` means no cross-conjunct rules at all).
    """
    if e_dependent > k_constraints:
        raise ValueError("e_dependent cannot exceed k_constraints")
    rng = random.Random(seed)
    conjuncts = []
    groups: set[tuple[str, ...]] = set()
    singles: list[str] = []
    for i in range(n_conjuncts):
        disjuncts = []
        for j in range(k_constraints):
            attr = f"c{i}k{j}"
            singles.append(attr)
            disjuncts.append(C(attr, "=", rng.randint(0, 9)))
        conjuncts.append(disj(disjuncts))
    # Wire e dependent attributes per conjunct to the next conjunct.
    for i in range(n_conjuncts - 1):
        for j in range(e_dependent):
            groups.add((f"c{i}k{j}", f"c{i + 1}k{j}"))
    spec = synthetic_spec(
        groups=sorted(groups), singletons=singles, name=f"K_dep_e{e_dependent}"
    )
    return conj(conjuncts), spec
