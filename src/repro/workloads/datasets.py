"""Synthetic datasets for the end-to-end mediation experiments.

Bigger, randomized versions of the curated rows in
:mod:`repro.engine.sources_builtin`, used by the mediator bench (C5) and
the integration property tests.  All generators are seeded.
"""

from __future__ import annotations

import random

from repro.conversions.codes import CATEGORY_TO_SUBJECT, DEPT_CODES

__all__ = ["random_books", "random_papers_and_aubib", "random_profs", "grid_points"]

_FIRST = ("Tom", "John", "Jia", "Kevin", "Hector", "Jeff", "Andy", "Ana", "Mei", "Omar")
_LAST = ("Clancy", "Klancy", "Smith", "Chang", "Molina", "Ullman", "Han", "Tanen", "Rao")
_TITLE_WORDS = (
    "java", "jdk", "www", "web", "data", "mining", "query", "systems",
    "handbook", "networks", "streams", "patterns", "guide", "deep",
)
_PUBLISHERS = ("oreilly", "wiley", "putnam", "prentice", "mit")
_BIB_WORDS = (
    "databases", "logic", "data", "mining", "mediators", "warehouses",
    "integration", "olap", "patterns", "translation", "heterogeneous",
    "retrieval", "indexing",
)


def random_books(n: int, seed: int = 0) -> list[dict]:
    """Rows for the Amazon/Clbooks catalog schema."""
    rng = random.Random(seed)
    subjects = list(CATEGORY_TO_SUBJECT.values())
    rows = []
    for i in range(n):
        last = rng.choice(_LAST)
        author = last if rng.random() < 0.15 else f"{last}, {rng.choice(_FIRST)}"
        title_len = rng.randint(2, 5)
        rows.append(
            {
                "title": " ".join(rng.choice(_TITLE_WORDS) for _ in range(title_len)).title(),
                "author": author,
                "year": rng.randint(1994, 1999),
                "month": rng.randint(1, 12),
                "publisher": rng.choice(_PUBLISHERS),
                "isbn": f"{i:09d}X",
                "subject": rng.choice(subjects),
            }
        )
    return rows


def random_papers_and_aubib(
    n_authors: int, papers_per_author: int = 2, seed: int = 0
) -> tuple[list[dict], list[dict]]:
    """Rows for T1's paper(ti, au) and aubib(name, bib)."""
    rng = random.Random(seed)
    aubib = []
    papers = []
    used = set()
    while len(aubib) < n_authors:
        name = f"{rng.choice(_LAST)}, {rng.choice(_FIRST)}"
        if name in used:
            continue
        used.add(name)
        bib = " ".join(rng.choice(_BIB_WORDS) for _ in range(rng.randint(4, 8)))
        aubib.append({"name": name, "bib": bib})
        for _ in range(papers_per_author):
            title = " ".join(
                rng.choice(_TITLE_WORDS) for _ in range(rng.randint(3, 6))
            ).title()
            papers.append({"ti": title, "au": name})
    return papers, aubib


def random_profs(aubib: list[dict], seed: int = 0, extra: int = 3) -> list[dict]:
    """prof rows overlapping the aubib authors (so the fac join is non-empty)."""
    rng = random.Random(seed)
    codes = list(DEPT_CODES.values())
    rows = []
    for entry in aubib:
        if rng.random() < 0.8:
            last, first = entry["name"].split(", ")
            rows.append({"ln": last, "fn": first, "dept": rng.choice(codes)})
    for i in range(extra):
        rows.append(
            {"ln": f"Only{i}", "fn": rng.choice(_FIRST), "dept": rng.choice(codes)}
        )
    return rows


def grid_points(step: int = 5, limit: int = 60) -> list[dict]:
    """A dense coordinate grid for the Example 8 subsumption experiments."""
    return [
        {"id": f"p{x}_{y}", "x": x, "y": y}
        for x in range(0, limit, step)
        for y in range(0, limit, step)
    ]
