"""Synthetic workloads: paper queries, generators, datasets."""

from repro.workloads.datasets import (
    grid_points,
    random_books,
    random_papers_and_aubib,
    random_profs,
)
from repro.workloads.generator import (
    chain_query,
    dependent_conjunction,
    random_query,
    random_spec,
    simple_conjunction,
    synthetic_spec,
    vocabulary,
)
from repro.workloads.paper_queries import (
    example1_query,
    example2_query,
    example3_query,
    example8_query_mixed,
    example8_query_ranges,
    example13_qa,
    example13_qb,
    example13_spec,
    figure2_q1,
    figure2_q2,
    qbook,
)

__all__ = [
    "vocabulary", "synthetic_spec", "random_spec", "random_query",
    "chain_query", "dependent_conjunction", "simple_conjunction",
    "random_books", "random_papers_and_aubib", "random_profs", "grid_points",
    "example1_query", "example2_query", "example3_query",
    "figure2_q1", "figure2_q2", "qbook",
    "example8_query_ranges", "example8_query_mixed",
    "example13_qa", "example13_qb", "example13_spec",
]
