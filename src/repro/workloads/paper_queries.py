"""The paper's concrete queries, as ready-made objects.

Every worked example's query lives here so tests, benches, and examples
reproduce exactly the figures:

* Example 1/2 — the Tom Clancy queries;
* Figure 2 — Q̂1 and Q̂2 with their expected Amazon mappings S1 and S2;
* Example 3 — the faculty/publication join query;
* Figure 7 — Q̂_book;
* Example 8 — the map rectangle queries;
* Example 13/14 — the abstract partition queries Q̂a and Q̂b (these need
  the synthetic spec from :func:`example13_spec`).
"""

from __future__ import annotations

from repro.core.ast import C, Query, conj, disj
from repro.core.parser import parse_query
from repro.rules.dsl import V, cpat, rule, value_is
from repro.rules.spec import MappingSpecification

__all__ = [
    "example1_query",
    "example2_query",
    "example3_query",
    "figure2_q1",
    "figure2_q2",
    "qbook",
    "example8_query_ranges",
    "example8_query_mixed",
    "example13_qa",
    "example13_qb",
    "example13_spec",
]


def example1_query() -> Query:
    """Books by Tom Clancy: ``[fn = "Tom"] ∧ [ln = "Clancy"]``."""
    return parse_query('[fn = "Tom"] and [ln = "Clancy"]')


def example2_query() -> Query:
    """``(f1 ∨ f2) ∧ f3`` with the Clancy/Klancy disjunction."""
    return parse_query('([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]')


def example3_query() -> Query:
    """CS faculty papers about data mining (selections + joins)."""
    return parse_query(
        "[fac.ln = pub.ln] and [fac.fn = pub.fn] and "
        "[fac.bib contains data (near) mining] and [fac.dept = cs]"
    )


def figure2_q1() -> Query:
    """Q̂1 = f_l ∧ f_t1 ∧ f_y ∧ f_m ∧ f_k (Figure 2, top)."""
    return parse_query(
        '[ln = "Smith"] and [ti contains java (near) jdk] and '
        "[pyear = 1997] and [pmonth = 5] and [kwd contains www]"
    )


def figure2_q2() -> Query:
    """Q̂2 = f_p ∧ f_t2 ∧ f_c ∧ f_i (Figure 2, bottom)."""
    return parse_query(
        '[publisher = "oreilly"] and [ti = "jdk for java"] and '
        '[category = "D.3"] and [id-no = "081815181Y"]'
    )


def qbook() -> Query:
    """Q̂_book of Figure 7: (f_l f_f ∨ f_k1 ∨ f_k2) ∧ f_y ∧ (f_m1 ∨ f_m2)."""
    return parse_query(
        '(([ln = "Smith"] and [fn = "John"]) or [kwd contains www] '
        "or [kwd contains web]) and [pyear = 1997] and "
        "([pmonth = 5] or [pmonth = 6])"
    )


def example8_query_ranges() -> Query:
    """Q̂ = (f1 f2)(f3 f4): full x-range and y-range (separable)."""
    return parse_query(
        "([x_min = 10] and [x_max = 30]) and ([y_min = 20] and [y_max = 40])"
    )


def example8_query_mixed() -> Query:
    """Q̂ = (f1 f4)(f2 f3): mixed corners (inseparable)."""
    return parse_query(
        "([x_min = 10] and [y_max = 40]) and ([x_max = 30] and [y_min = 20])"
    )


# ---------------------------------------------------------------------------
# Example 13/14: abstract constraints x, y, u, v with matchings
# {x, y}, {u}, {v}
# ---------------------------------------------------------------------------

X = C("x", "=", 1)
Y = C("y", "=", 1)
U = C("u", "=", 1)
W = C("v", "=", 1)


def example13_spec() -> MappingSpecification:
    """Rules realizing Example 13's matchings: {x,y}, {u}, {v}."""
    r_xy = rule(
        "Rxy",
        patterns=[cpat("x", "=", V("A")), cpat("y", "=", V("B"))],
        where=[value_is("A", "B")],
        emit=lambda b: C("t_xy", "=", f"{b['A']}|{b['B']}"),
        exact=True,
    )
    r_u = rule(
        "Ru",
        patterns=[cpat("u", "=", V("A"))],
        where=[value_is("A")],
        emit=lambda b: C("t_u", "=", b["A"]),
        exact=True,
    )
    r_v = rule(
        "Rv",
        patterns=[cpat("v", "=", V("A"))],
        where=[value_is("A")],
        emit=lambda b: C("t_v", "=", b["A"]),
        exact=True,
    )
    return MappingSpecification(
        name="K_ex13", target="abstract", rules=(r_xy, r_u, r_v)
    )


def example13_qa() -> Query:
    """Q̂a = (x)(y)(yu ∨ v) — partition {{Č1, Č2}, {Č3}} expected."""
    return conj([X, Y, disj([conj([Y, U]), W])])


def example13_qb() -> Query:
    """Q̂b = (x)(y ∨ u)(y ∨ v) — single merged block expected."""
    return conj([X, disj([Y, U]), disj([Y, W])])
