"""Author-name format conversions.

Amazon-style sources use a combined ``author`` attribute in the format
``"Last, First"`` (or just ``"Last"`` when the first name is unknown —
Example 2).  The mediator view splits this into ``ln`` / ``fn`` through the
conceptual relation ``NameLnFn`` (Section 2); rules translate constraints
the other way with ``LnFnToName``.
"""

from __future__ import annotations

__all__ = ["ln_fn_to_name", "name_to_ln_fn", "name_last"]


def ln_fn_to_name(ln: str, fn: str | None) -> str:
    """``LnFnToName``: combine last/first name into Amazon's format.

    >>> ln_fn_to_name("Clancy", "Tom")
    'Clancy, Tom'
    >>> ln_fn_to_name("Clancy", None)
    'Clancy'
    """
    ln = ln.strip()
    if not ln:
        raise ValueError("last name must be non-empty")
    if fn is None or not fn.strip():
        return ln
    return f"{ln}, {fn.strip()}"


def name_to_ln_fn(name: str) -> tuple[str, str | None]:
    """``NameLnFn``: split an Amazon-format name into (last, first).

    >>> name_to_ln_fn("Clancy, Tom")
    ('Clancy', 'Tom')
    >>> name_to_ln_fn("Clancy")
    ('Clancy', None)
    """
    if "," in name:
        last, first = name.split(",", 1)
        first = first.strip()
        return (last.strip(), first or None)
    return (name.strip(), None)


def name_last(name: str) -> str:
    """The last-name component of an Amazon-format name."""
    return name_to_ln_fn(name)[0]
