"""Measurement unit conversions.

The introduction's canonical example: converting *3 inches* to *7.62
centimeters* when sources disagree on units.  Used by the unit-mapping
example and by generated rule sets in the workload package.
"""

from __future__ import annotations

__all__ = ["inches_to_cm", "cm_to_inches", "usd_to_cents", "cents_to_usd"]

_CM_PER_INCH = 2.54


def inches_to_cm(inches: float) -> float:
    """Convert inches to centimeters (3 in -> 7.62 cm, Section 1)."""
    return round(inches * _CM_PER_INCH, 6)


def cm_to_inches(cm: float) -> float:
    """Convert centimeters to inches."""
    return round(cm / _CM_PER_INCH, 6)


def usd_to_cents(dollars: float) -> int:
    """Convert a dollar price to integer cents (for cent-priced sources)."""
    return round(dollars * 100)


def cents_to_usd(cents: int) -> float:
    """Convert integer cents to dollars."""
    return cents / 100
