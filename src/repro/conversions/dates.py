"""Date period builders used by the pdate rules (Figure 3, R6/R7)."""

from __future__ import annotations

from repro.core.values import Month, Year

__all__ = ["month_period", "year_period"]


def month_period(year: int, month: int) -> Month:
    """Build the single-month period ``May/97`` style value for rule R6."""
    if not isinstance(year, int) or not isinstance(month, int):
        raise TypeError(f"month_period needs integers, got {year!r}, {month!r}")
    return Month(year, month)


def year_period(year: int) -> Year:
    """Build the whole-year period for rule R7."""
    if not isinstance(year, int):
        raise TypeError(f"year_period needs an integer, got {year!r}")
    return Year(year)
