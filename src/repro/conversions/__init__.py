"""Value conversion functions.

The paper's mapping rules call human-written functions to transform values
between contexts: name formats (``LnFnToName`` / ``NameLnFn``), date
periods, department codes, classification categories, and measurement
units.  These live here, shared by the rule libraries, the view
definitions (conversion functions appear as conceptual relations, Section
2), and the simulated sources.
"""

from repro.conversions.names import (
    ln_fn_to_name,
    name_last,
    name_to_ln_fn,
)
from repro.conversions.dates import month_period, year_period
from repro.conversions.codes import (
    CATEGORY_TO_SUBJECT,
    DEPT_CODES,
    category_to_subject,
    dept_code,
)
from repro.conversions.units import cm_to_inches, inches_to_cm

__all__ = [
    "ln_fn_to_name",
    "name_to_ln_fn",
    "name_last",
    "month_period",
    "year_period",
    "dept_code",
    "category_to_subject",
    "DEPT_CODES",
    "CATEGORY_TO_SUBJECT",
    "inches_to_cm",
    "cm_to_inches",
]
