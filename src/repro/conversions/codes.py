"""Code tables: department codes and category-to-subject mappings.

Example 3 maps ``[fac.dept = cs]`` to ``[prof.dept = 230]`` — source T2
uses numeric department codes.  Figure 2 maps the ACM classification code
``D.3`` to Amazon's subject ``programming`` (rule R9).  Both are the kind
of small curated tables a human integrator maintains.
"""

from __future__ import annotations

__all__ = ["DEPT_CODES", "CATEGORY_TO_SUBJECT", "dept_code", "category_to_subject"]

#: Department name -> source T2's numeric code (Example 3 fixes cs = 230).
DEPT_CODES = {
    "cs": 230,
    "ee": 210,
    "me": 220,
    "math": 240,
    "physics": 250,
    "chemistry": 260,
}

#: ACM-style category code -> bookstore subject heading (rule R9).
CATEGORY_TO_SUBJECT = {
    "D.3": "programming",
    "D.4": "operating systems",
    "H.2": "databases",
    "H.3": "information retrieval",
    "I.2": "artificial intelligence",
    "C.2": "networking",
}


def dept_code(dept: str) -> int:
    """``DeptCode``: the numeric code for a department name.

    Raises ``KeyError`` for unknown departments — rule authors wrap this
    with :func:`repro.rules.dsl.table_lookup` so an unknown department
    simply vetoes the rule.
    """
    return DEPT_CODES[dept.strip().lower()]


def category_to_subject(category: str) -> str:
    """Map a classification category code to a subject heading."""
    return CATEGORY_TO_SUBJECT[category.strip()]
