"""Transports for ``repro serve``: JSON-lines over stdio pipes and TCP.

Both transports speak the protocol in :mod:`repro.serve.protocol` and
share one :class:`~repro.serve.MediationService`, so every connection
and every pipelined line benefits from the same translation cache,
single-flight table, and admission budget.

* :func:`serve_jsonl` — read requests line-by-line from a file object
  (stdin in the CLI), dispatch them on a worker pool, write responses
  as they finish.  Responses may be reordered relative to requests —
  clients correlate by ``id`` — but none are lost or duplicated: every
  input line produces exactly one output line, and writes are
  serialized under a lock.
* :func:`serve_tcp` — a threading TCP server, one JSON-lines
  conversation per connection.  Connections are concurrent client
  threads onto the shared service; admission control is global, not
  per-connection.
"""

from __future__ import annotations

import socketserver
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import IO

from repro.serve.protocol import handle_line
from repro.serve.service import MediationService

__all__ = ["serve_jsonl", "serve_tcp"]


def serve_jsonl(
    service: MediationService,
    infile: IO[str],
    outfile: IO[str],
    *,
    workers: int = 1,
) -> int:
    """Serve JSON-lines requests from ``infile`` until EOF.

    ``workers`` > 1 dispatches lines on a thread pool (closed-loop
    pipelining); each request still passes the service's admission
    control.  Blank lines and ``#`` comments are skipped.  Returns the
    number of requests handled.
    """
    write_lock = threading.Lock()
    handled = 0

    def respond(line: str) -> None:
        response = handle_line(service, line)
        with write_lock:
            outfile.write(response + "\n")
            outfile.flush()

    lines = (
        line.strip()
        for line in infile
        if line.strip() and not line.lstrip().startswith("#")
    )
    if workers <= 1:
        for line in lines:
            respond(line)
            handled += 1
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(respond, line) for line in lines]
            for future in futures:
                future.result()  # propagate unexpected (non-protocol) errors
            handled = len(futures)
    return handled


class _JsonLinesHandler(socketserver.StreamRequestHandler):
    """One JSON-lines conversation; the service hangs off the server."""

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line or line.startswith("#"):
                continue
            response = handle_line(self.server.service, line)  # type: ignore[attr-defined]
            self.wfile.write((response + "\n").encode("utf-8"))


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: MediationService):
        super().__init__(address, _JsonLinesHandler)
        self.service = service


def serve_tcp(
    service: MediationService, host: str = "127.0.0.1", port: int = 0
) -> _Server:
    """A threading TCP server bound to ``(host, port)`` — not yet serving.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.server_address``.  Call ``serve_forever()`` (blocking, the
    CLI does this) or drive it from a thread and ``shutdown()`` when
    done (what the tests do).
    """
    return _Server((host, port), service)
