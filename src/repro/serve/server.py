"""Transports for ``repro serve``: JSON-lines over stdio pipes and TCP.

Both transports speak the protocol in :mod:`repro.serve.protocol` and
share one :class:`~repro.serve.MediationService`, so every connection
and every pipelined line benefits from the same translation cache,
single-flight table, and admission budget.

* :func:`serve_jsonl` — read requests line-by-line from a file object
  (stdin in the CLI), dispatch them on a worker pool, write responses
  as they finish.  Responses may be reordered relative to requests —
  clients correlate by ``id`` — but none are lost or duplicated: every
  input line produces exactly one output line, and writes are
  serialized under a lock.
* :func:`serve_tcp` — a threading TCP server, one JSON-lines
  conversation per connection.  Connections are concurrent client
  threads onto the shared service; admission control is global, not
  per-connection.  With ``pipeline_workers > 1`` each connection also
  dispatches its *own* pipelined lines on a thread pool (responses
  correlate by ``id``) — how the cluster front-end keeps one
  multiplexed connection per worker process saturated.

No client input may tear a connection down: the per-line handler is
wrapped so that anything :func:`~repro.serve.protocol.handle_line`'s
own guards miss still produces a structured ``internal-error`` response
on the wire (and the connection keeps serving).
"""

from __future__ import annotations

import socketserver
import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import IO

from repro.serve.protocol import encode_response, error_response, handle_line
from repro.serve.service import MediationService

__all__ = ["serve_jsonl", "serve_tcp"]

#: A transport line handler: one request line in, one response line out.
LineHandler = Callable[[str], str]


def _guarded(handler: LineHandler, line: str) -> str:
    """Run ``handler`` on one line; any escape becomes a structured error."""
    try:
        return handler(line)
    except Exception as exc:  # noqa: BLE001 - transport-level last resort
        return encode_response(
            error_response(None, "internal-error", f"{type(exc).__name__}: {exc}")
        )


def serve_jsonl(
    service: MediationService,
    infile: IO[str],
    outfile: IO[str],
    *,
    workers: int = 1,
    line_handler: LineHandler | None = None,
) -> int:
    """Serve JSON-lines requests from ``infile`` until EOF.

    ``workers`` > 1 dispatches lines on a thread pool (closed-loop
    pipelining); each request still passes the service's admission
    control.  Blank lines and ``#`` comments are skipped.  Returns the
    number of requests handled.
    """
    handler: LineHandler = line_handler or (lambda line: handle_line(service, line))
    write_lock = threading.Lock()
    handled = 0

    def respond(line: str) -> None:
        response = _guarded(handler, line)
        with write_lock:
            outfile.write(response + "\n")
            outfile.flush()

    lines = (
        line.strip()
        for line in infile
        if line.strip() and not line.lstrip().startswith("#")
    )
    if workers <= 1:
        for line in lines:
            respond(line)
            handled += 1
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(respond, line) for line in lines]
            for future in futures:
                future.result()  # propagate unexpected (non-protocol) errors
            handled = len(futures)
    return handled


class _JsonLinesHandler(socketserver.StreamRequestHandler):
    """One JSON-lines conversation; the service hangs off the server."""

    server: "_Server"

    def handle(self) -> None:
        if self.server.pipeline_workers > 1:
            self._handle_pipelined(self.server.pipeline_workers)
            return
        for line in self._lines():
            self._write(_guarded(self.server.line_handler, line))

    def _lines(self):
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line or line.startswith("#"):
                continue
            yield line

    def _write(self, response: str) -> None:
        self.wfile.write((response + "\n").encode("utf-8"))

    def _handle_pipelined(self, workers: int) -> None:
        """Dispatch this connection's lines on a pool; serialize writes.

        Pipelined clients (the cluster front-end) get intra-connection
        concurrency — request coalescing and overlapping source waits —
        at the cost of response ordering, which they recover via ``id``.
        Every line still yields exactly one response line.
        """
        write_lock = threading.Lock()

        def respond(line: str) -> None:
            response = _guarded(self.server.line_handler, line)
            with write_lock:
                try:
                    self._write(response)
                    self.wfile.flush()
                except (OSError, ValueError):  # client went away mid-response
                    pass

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-pipeline"
        ) as pool:
            for line in self._lines():
                pool.submit(respond, line)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: MediationService,
        *,
        line_handler: LineHandler | None = None,
        pipeline_workers: int = 1,
    ):
        super().__init__(address, _JsonLinesHandler)
        self.service = service
        self.line_handler: LineHandler = line_handler or (
            lambda line: handle_line(service, line)
        )
        self.pipeline_workers = pipeline_workers


def serve_tcp(
    service: MediationService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    line_handler: LineHandler | None = None,
    pipeline_workers: int = 1,
) -> _Server:
    """A threading TCP server bound to ``(host, port)`` — not yet serving.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.server_address``.  Call ``serve_forever()`` (blocking, the
    CLI does this) or drive it from a thread and ``shutdown()`` when
    done (what the tests do).  ``line_handler`` overrides the per-line
    dispatch (the cluster workers add their own ops on top of the
    protocol); ``pipeline_workers`` > 1 turns on per-connection pipelined
    dispatch (see :class:`_JsonLinesHandler`).
    """
    return _Server(
        (host, port),
        service,
        line_handler=line_handler,
        pipeline_workers=pipeline_workers,
    )
