"""Warm-start cache snapshots: persist hot translations across restarts.

A long-lived worker accumulates a :class:`~repro.perf.TranslationCache`
working set worth far more than its memory cost — the ROADMAP's serving
target is many restarts (deploys, rebalances, crashes) against the same
query stream.  This module snapshots the hottest cache entries to a JSON
file and restores them on start, so a restarted worker answers its first
requests from cache instead of re-translating the whole working set.

Staleness is the whole problem: a snapshot written against yesterday's
rule set must never be served against today's.  Cache keys embed
:attr:`~repro.rules.MappingSpecification.version`, but that stamp is a
*process-local* counter — meaningless across restarts.  Snapshots
therefore carry a **content digest** of each specification's declarative
surface (:func:`spec_digest`), and :func:`restore_snapshot` re-keys
entries under the live specification's current version stamp only when
the digests match.  A mismatch raises the same
:class:`~repro.core.errors.StaleIndexError` the compiled rule index uses
for in-process staleness; the default (non-strict) restore catches it
and discards that specification's entries, counting them in the
:class:`RestoreReport`.

The digest covers what a specification *declares*: rule names, constraint
patterns, docs, and static exactness flags.  A behavioral change hidden
inside a rule's emit/condition closures without any declarative change is
not detectable — rename the rule (or touch its doc) when changing rule
semantics, exactly as the vocabulary-lifecycle workflow prescribes.

Snapshot files are written atomically (temp file + ``os.replace``) so a
crash mid-write leaves the previous snapshot intact, and every restore
validates the format tag before touching the cache.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections.abc import Mapping
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.errors import StaleIndexError
from repro.core.json_io import query_from_json, query_to_json
from repro.core.tdqm import TdqmStats, TranslationResult
from repro.obs import trace as obs
from repro.perf.cache import TranslationCache
from repro.perf.intern import intern_query
from repro.rules.spec import MappingSpecification

__all__ = [
    "SNAPSHOT_FORMAT",
    "RestoreReport",
    "SnapshotReport",
    "SnapshotTimer",
    "restore_snapshot",
    "snapshot_payload",
    "spec_digest",
    "specs_by_name",
    "write_snapshot",
]

#: Bump when the payload layout changes; restores reject other formats.
SNAPSHOT_FORMAT = 1

_KIND = "repro.serve.cache-snapshot"

#: Per-target-path write locks: two writers racing on one snapshot path
#: (the periodic timer vs. a signal-triggered final export, or any direct
#: caller) serialize here instead of interleaving temp-file writes.
_WRITE_LOCKS: dict[str, threading.Lock] = {}
_WRITE_LOCKS_GUARD = threading.Lock()


def _path_lock(target: Path) -> threading.Lock:
    key = str(target)
    with _WRITE_LOCKS_GUARD:
        lock = _WRITE_LOCKS.get(key)
        if lock is None:
            lock = _WRITE_LOCKS[key] = threading.Lock()
        return lock


def specs_by_name(
    specs: Mapping[str, MappingSpecification],
) -> dict[str, MappingSpecification]:
    """Re-key a mediator's spec table by *specification* name.

    :attr:`~repro.mediator.Mediator.specs` is keyed by **source** name
    (``"Amazon"``), but cache keys — and therefore snapshot sections —
    carry the specification's own name (``"K_Amazon"``).  Every snapshot
    call site wants this mapping.
    """
    return {spec.name: spec for spec in specs.values()}


def spec_digest(spec: MappingSpecification) -> str:
    """A process-independent digest of one specification's rule surface.

    Stable across restarts (unlike the in-process version stamp) and
    sensitive to every declarative mutation: adding, removing, renaming,
    or re-patterning a rule all change the digest.  Since the digest now
    also participates in cache keys and registry versioning it lives on
    the specification itself
    (:attr:`~repro.rules.MappingSpecification.content_digest`); this
    function remains the snapshot layer's public alias.
    """
    return spec.content_digest


@dataclass(frozen=True)
class SnapshotReport:
    """Outcome of one :func:`write_snapshot` / :func:`snapshot_payload`."""

    path: str | None
    entries: int
    specs: int
    #: Entries skipped because their key's version stamp no longer
    #: matches the live specification (logically dead weight) or names
    #: a specification the caller did not supply.
    skipped_stale: int
    skipped_unknown: int

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of one :func:`restore_snapshot`."""

    path: str
    restored: int
    #: Per-spec discards: digest mismatch (the rule set changed since
    #: the snapshot) and specs the live mediator does not serve.
    discarded_stale: int
    discarded_unknown: int
    #: Entries whose key was already live in the cache (restore never
    #: overwrites newer state).
    skipped_present: int
    stale_specs: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        out = asdict(self)
        out["stale_specs"] = list(self.stale_specs)
        return out


def snapshot_payload(
    cache: TranslationCache,
    specs: Mapping[str, MappingSpecification],
    *,
    limit: int | None = None,
) -> tuple[dict, SnapshotReport]:
    """The JSON payload for the hottest ``limit`` entries of ``cache``.

    Only entries keyed at each live specification's *current* version are
    exported — anything older is unreachable garbage awaiting eviction,
    not state worth persisting.
    """
    sections: dict[str, dict] = {}
    entries = 0
    skipped_stale = 0
    skipped_unknown = 0
    for key, value in cache.export_entries(limit):
        algo, spec_name, version, digest, fingerprint = key
        spec = specs.get(spec_name)
        if spec is None:
            skipped_unknown += 1
            continue
        if (
            version != spec.version
            or digest != spec.content_digest
            or not isinstance(value, TranslationResult)
        ):
            skipped_stale += 1
            continue
        section = sections.setdefault(
            spec_name, {"digest": spec_digest(spec), "entries": []}
        )
        section["entries"].append(
            {
                "algo": algo,
                "fingerprint": fingerprint,
                "mapping": query_to_json(value.mapping),
                "exact": value.exact,
                "stats": asdict(value.stats),
            }
        )
        entries += 1
    payload = {
        "format": SNAPSHOT_FORMAT,
        "kind": _KIND,
        "created": time.time(),
        "specs": sections,
    }
    report = SnapshotReport(
        path=None,
        entries=entries,
        specs=len(sections),
        skipped_stale=skipped_stale,
        skipped_unknown=skipped_unknown,
    )
    return payload, report


def write_snapshot(
    path: str | os.PathLike[str],
    cache: TranslationCache,
    specs: Mapping[str, MappingSpecification],
    *,
    limit: int | None = None,
) -> SnapshotReport:
    """Atomically write a snapshot of ``cache`` to ``path``.

    The payload lands in a *uniquely named* sibling temp file first and
    is moved into place with ``os.replace``, so readers never observe a
    torn file and a crash mid-write preserves the previous snapshot.
    Concurrent writers to the same target serialize on a per-path lock —
    a fixed temp name would let two writers (e.g. the periodic
    :class:`SnapshotTimer` racing a signal-triggered final export)
    truncate each other's temp file between write and rename.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with _path_lock(target), obs.span("serve.snapshot.write", path=str(target)):
        payload, report = snapshot_payload(cache, specs, limit=limit)
        fd, temp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
    obs.count("serve.snapshot.writes")
    obs.count("serve.snapshot.exported_entries", report.entries)
    return SnapshotReport(
        path=str(target),
        entries=report.entries,
        specs=report.specs,
        skipped_stale=report.skipped_stale,
        skipped_unknown=report.skipped_unknown,
    )


def _check_fresh(
    spec_name: str, snapshot_digest: str, spec: MappingSpecification
) -> None:
    """Raise :class:`StaleIndexError` when the live rule set diverged."""
    live = spec_digest(spec)
    if live != snapshot_digest:
        raise StaleIndexError(
            f"snapshot for specification {spec_name!r} was built against "
            f"rule-set digest {snapshot_digest[:12]} but the live rule set "
            f"is {live[:12]}; discarding its entries"
        )


def _restore_entry(
    cache: TranslationCache, spec: MappingSpecification, entry: dict
) -> bool:
    # Intern the deserialized mapping: restored entries then share
    # subtrees with live translations (and with each other), so a warm
    # worker's cache is as compact as one that translated from scratch.
    result = TranslationResult(
        mapping=intern_query(query_from_json(entry["mapping"])),
        exact=bool(entry["exact"]),
        stats=TdqmStats(**entry["stats"]),
    )
    key = (
        entry["algo"],
        spec.name,
        spec.version,
        spec.content_digest,
        entry["fingerprint"],
    )
    return cache.import_entry(key, result)


def restore_snapshot(
    path: str | os.PathLike[str],
    cache: TranslationCache,
    specs: Mapping[str, MappingSpecification],
    *,
    strict: bool = False,
) -> RestoreReport:
    """Restore a snapshot into ``cache``, discarding stale sections.

    Entries are re-keyed under each live specification's current version
    stamp, so the normal invalidation machinery applies from the moment
    they land.  A section whose digest no longer matches the live rule
    set raises :class:`StaleIndexError` internally; non-strict restores
    (the default — what a booting worker wants) catch it, discard the
    section, and report it in :attr:`RestoreReport.stale_specs`, while
    ``strict=True`` propagates for callers that treat staleness as an
    error.
    """
    source = Path(path)
    raw = json.loads(source.read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("kind") != _KIND:
        raise ValueError(f"{source}: not a {_KIND} file")
    if raw.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"{source}: snapshot format {raw.get('format')!r} is not "
            f"the supported format {SNAPSHOT_FORMAT}"
        )
    restored = 0
    discarded_stale = 0
    discarded_unknown = 0
    skipped_present = 0
    stale_specs: list[str] = []
    with obs.span("serve.snapshot.restore", path=str(source)):
        for spec_name, section in sorted(raw.get("specs", {}).items()):
            entries = section.get("entries", [])
            spec = specs.get(spec_name)
            if spec is None:
                discarded_unknown += len(entries)
                continue
            try:
                _check_fresh(spec_name, section.get("digest", ""), spec)
            except StaleIndexError:
                if strict:
                    raise
                discarded_stale += len(entries)
                stale_specs.append(spec_name)
                continue
            for entry in entries:
                if _restore_entry(cache, spec, entry):
                    restored += 1
                else:
                    skipped_present += 1
    obs.count("serve.snapshot.restores")
    obs.count("serve.snapshot.restored_entries", restored)
    if discarded_stale:
        obs.count("serve.snapshot.discarded_stale", discarded_stale)
    return RestoreReport(
        path=str(source),
        restored=restored,
        discarded_stale=discarded_stale,
        discarded_unknown=discarded_unknown,
        skipped_present=skipped_present,
        stale_specs=tuple(stale_specs),
    )


class SnapshotTimer:
    """Periodic + on-stop snapshots for one cache, on a daemon thread.

    Both the cluster workers and single-process ``repro serve
    --snapshot-dir`` use this: start it after restoring, stop it on
    shutdown (the stop writes a final snapshot, so a clean exit always
    persists the freshest working set).  An ``interval`` of zero disables
    the periodic timer but keeps the final on-stop snapshot.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        cache: TranslationCache,
        specs: Mapping[str, MappingSpecification],
        *,
        interval: float = 30.0,
        limit: int | None = None,
    ):
        if interval < 0:
            raise ValueError(f"snapshot interval must be >= 0, got {interval}")
        self.path = Path(path)
        self.cache = cache
        self.specs = dict(specs)
        self.interval = interval
        self.limit = limit
        self.last_report: SnapshotReport | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._write_lock = threading.Lock()

    def write_now(self) -> SnapshotReport:
        """Write one snapshot immediately (serialized against the timer)."""
        with self._write_lock:
            report = write_snapshot(
                self.path, self.cache, self.specs, limit=self.limit
            )
            self.last_report = report
            return report

    def update_spec(self, spec: MappingSpecification) -> bool:
        """Swap a hot-reloaded specification into the snapshot table.

        Without this a long-lived timer would pin the retired spec
        object forever *and* keep exporting against its digest — every
        entry of the replacement spec would be skipped as unknown-
        version garbage.  Returns whether the table held the spec.
        """
        with self._write_lock:
            if spec.name not in self.specs:
                return False
            self.specs[spec.name] = spec
            return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.write_now()

    def start(self) -> "SnapshotTimer":
        if self.interval > 0 and self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="snapshot-timer", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> SnapshotReport:
        """Stop the timer and write the final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        return self.write_now()
