"""Single-flight: coalesce concurrent identical calls into one execution.

A load-serving mediator sees bursts of *identical* requests — the same
query text from many clients inside one cache-miss window.  Running the
pipeline once and fanning the result out to every concurrent waiter
("single-flight", after Go's ``golang.org/x/sync/singleflight``) turns
an N-way stampede into one translation plus N-1 waits.

:class:`SingleFlight` is the generic primitive used by
:class:`repro.serve.MediationService` to deduplicate in-flight
translate/mediate requests by query fingerprint; the translation cache
has its own inlined variant (interleaved with its LRU lock — see
:mod:`repro.perf.cache`).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable
from typing import TypeVar

__all__ = ["SingleFlight"]

T = TypeVar("T")


class _Flight:
    """One in-progress call: the leader resolves it, followers wait on it."""

    __slots__ = ("_done", "_value", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: object = None
        self._error: BaseException | None = None

    def resolve(self, value: object) -> None:
        self._value = value
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self) -> object:
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._value


class SingleFlight:
    """Run at most one concurrent execution of ``fn`` per key.

    The first caller for a key (the *leader*) runs ``fn``; callers that
    arrive while it runs (the *followers*) block and receive the
    **identical** result object.  An exception in the leader propagates
    to every waiter.  The flight is removed before it resolves, so a
    caller arriving after completion starts a fresh execution — results
    are never served stale.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}

    def __len__(self) -> int:
        """Number of keys currently in flight."""
        with self._lock:
            return len(self._flights)

    def do(self, key: Hashable, fn: Callable[[], T]) -> tuple[T, bool]:
        """Execute ``fn`` under single-flight for ``key``.

        Returns ``(value, shared)`` where ``shared`` is True when this
        caller was a follower served by another thread's execution.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                leader = False
            else:
                leader = True
                flight = self._flights[key] = _Flight()
        if not leader:
            return flight.wait(), True  # type: ignore[return-value]
        try:
            value = fn()
        except BaseException as exc:
            with self._lock:
                self._flights.pop(key, None)
            flight.fail(exc)
            raise
        with self._lock:
            self._flights.pop(key, None)
        flight.resolve(value)
        return value, False
