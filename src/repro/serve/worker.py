"""One cluster worker process: a private MediationService shard.

Each worker the cluster front-end (:mod:`repro.serve.cluster`) spawns
runs :func:`worker_main`: build the mediator for the configured built-in
scenario, restore the shard's cache snapshot if one exists, bind an
ephemeral TCP port, report it back over the bootstrap pipe, and serve
the JSON-lines protocol until told to stop.  Workers are shared-nothing
— no cross-process locks, no shared memory; the only coordination is
the front-end's consistent-hash routing, which guarantees a fingerprint
always lands on the same shard (so per-shard caches and coalescing stay
exactly as correct as the single-process service).

On top of the standard protocol a worker answers two ops of its own:

``snapshot``
    Write the shard's cache snapshot now; responds with the
    :class:`~repro.serve.snapshot.SnapshotReport`.
``shard``
    Identity probe: shard id, pid, restore report from boot, and the
    snapshot path (the front-end stamps these into per-shard stats).

Lifecycle: ``SIGTERM`` (or ``SIGINT``) triggers a graceful shutdown —
stop accepting, write a final snapshot, exit 0 — which is what the
front-end sends during a rolling restart, so the replacement worker
starts warm from the state its predecessor just persisted.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import TYPE_CHECKING

from repro.serve.protocol import decode_line, encode_response, error_response, handle_request
from repro.serve.service import MediationService, ServiceConfig
from repro.serve.snapshot import SnapshotTimer, restore_snapshot, specs_by_name

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.serve.snapshot import RestoreReport

__all__ = ["worker_main", "snapshot_path"]


def snapshot_path(snapshot_dir: str, shard_id: int) -> str:
    """The snapshot file one shard owns inside ``snapshot_dir``."""
    return os.path.join(snapshot_dir, f"shard-{shard_id}.json")


def _build_mediator(
    spec_names: tuple[str, ...],
    resilience_args: dict | None,
    *,
    interpret: bool = False,
):
    from repro.obs.stats import builtin_mediator

    mediator = builtin_mediator(set(spec_names))
    if mediator is None:
        raise ValueError(f"{sorted(spec_names)} does not name a built-in scenario")
    mediator.interpret = interpret
    if resilience_args:
        from repro.resilience import FaultPolicy, ResilienceConfig, RetryPolicy

        retry = RetryPolicy(
            retries=resilience_args.get("retries", 2),
            backoff_base=resilience_args.get("backoff", 0.05),
        )
        fault_policies = {
            name: FaultPolicy.parse(spec)
            for name, spec in (resilience_args.get("faults") or {}).items()
        }
        mediator = mediator.with_resilience(
            ResilienceConfig(
                timeout=resilience_args.get("timeout"),
                retry=retry,
                strict=bool(resilience_args.get("strict", False)),
                fault_policies=fault_policies,
            )
        )
    return mediator


class _WorkerRuntime:
    """The per-process state the extended line handler closes over."""

    def __init__(
        self,
        shard_id: int,
        service: MediationService,
        timer: SnapshotTimer | None,
        restore_report: "RestoreReport | None",
    ):
        self.shard_id = shard_id
        self.service = service
        self.timer = timer
        self.restore_report = restore_report

    def handle_line(self, line: str) -> str:
        """The protocol plus the worker-local ``snapshot``/``shard`` ops."""
        request, decode_error = decode_line(line)
        if decode_error is not None:
            return encode_response(decode_error)
        assert request is not None
        op = request.get("op")
        if op == "snapshot":
            return encode_response(self._op_snapshot(request))
        if op == "shard":
            return encode_response(self._op_shard(request))
        return encode_response(handle_request(self.service, request))

    def _base(self, request: dict) -> dict:
        response: dict = {}
        if "id" in request:
            response["id"] = request["id"]
        response["op"] = request["op"]
        return response

    def _op_snapshot(self, request: dict) -> dict:
        if self.timer is None:
            return error_response(
                request,
                "snapshot-disabled",
                "worker runs without --snapshot-dir; nothing to persist",
            )
        report = self.timer.write_now()
        return {**self._base(request), "ok": True, "snapshot": report.to_dict()}

    def _op_shard(self, request: dict) -> dict:
        restored = (
            self.restore_report.to_dict() if self.restore_report is not None else None
        )
        return {
            **self._base(request),
            "ok": True,
            "shard": {
                "shard": self.shard_id,
                "pid": os.getpid(),
                "snapshot_path": str(self.timer.path) if self.timer else None,
                "restore": restored,
            },
        }


def worker_main(
    shard_id: int,
    spec_names: tuple[str, ...],
    service_config: ServiceConfig,
    bootstrap: "Connection",
    *,
    snapshot_dir: str | None = None,
    snapshot_interval: float = 30.0,
    snapshot_limit: int | None = None,
    metrics: bool = False,
    resilience_args: dict | None = None,
    interpret: bool = False,
) -> None:
    """Entry point of one spawned worker process (blocking).

    Reports ``{"port", "pid", "restored"}`` over ``bootstrap`` once
    serving, or ``{"error"}`` if boot fails — the front-end treats a
    silent pipe as a dead worker.  Runs until SIGTERM/SIGINT, then
    writes the final snapshot and returns.
    """
    try:
        from repro.serve.server import serve_tcp

        registry = None
        if metrics:
            from repro import obs

            # Installed process-wide so every layer's counters tee into
            # this shard's registry, exactly like single-process
            # `repro serve --metrics`.
            registry = obs.install(obs.MetricsRegistry())
        mediator = _build_mediator(
            tuple(spec_names), resilience_args, interpret=interpret
        )
        service = MediationService(mediator, service_config, metrics=registry)
        if not interpret:
            # Compile every rule closure now, before the first request —
            # the boot cost buys first-request latency (and snapshot
            # restores below land against warm indexes).
            for spec in mediator.specs.values():
                spec.compiled_index().precompile()

        timer: SnapshotTimer | None = None
        restore_report = None
        cache = mediator.translation_cache
        if snapshot_dir is not None and cache is not None:
            specs = specs_by_name(mediator.specs)
            path = snapshot_path(snapshot_dir, shard_id)
            if os.path.exists(path):
                restore_report = restore_snapshot(path, cache, specs)
            timer = SnapshotTimer(
                path,
                cache,
                specs,
                interval=snapshot_interval,
                limit=snapshot_limit,
            ).start()
            # Hot reloads must repoint the snapshot table too, or the
            # timer would pin the retired spec and keep exporting under
            # its digest (see SnapshotTimer.update_spec).
            service.reload_hooks.append(timer.update_spec)

        runtime = _WorkerRuntime(shard_id, service, timer, restore_report)
        server = serve_tcp(
            service,
            port=0,
            line_handler=runtime.handle_line,
            pipeline_workers=service_config.max_concurrency,
        )
    except Exception as exc:  # noqa: BLE001 - boot failures go up the pipe
        try:
            bootstrap.send({"error": f"{type(exc).__name__}: {exc}"})
        finally:
            bootstrap.close()
        return

    def _shutdown(signum: int, frame: object) -> None:
        # serve_forever() must be stopped from another thread: shutdown()
        # blocks until the serve loop exits, and the signal handler runs
        # *on* the serving thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)

    host, port = server.server_address[:2]
    bootstrap.send(
        {
            "port": int(port),
            "pid": os.getpid(),
            "restored": restore_report.to_dict() if restore_report else None,
        }
    )
    bootstrap.close()
    try:
        server.serve_forever()
    finally:
        server.server_close()
        if timer is not None:
            timer.stop()
