"""Load-serving layer: a concurrent query-mediation service.

``repro.serve`` is the front door for the ROADMAP's "heavy traffic"
target: many client threads, one shared :class:`MediationService` over
one :class:`~repro.mediator.Mediator`.  The service deduplicates
identical in-flight requests (single-flight by canonical query
fingerprint), batches compatible work through the shared
:class:`~repro.perf.TranslationCache`, and applies admission control —
a bounded queue plus a max-concurrency semaphore with a fast
:class:`Overloaded` rejection — while exporting queue-depth and latency
gauges through :mod:`repro.obs`.

Transports (JSON-lines over stdin or TCP) live in
:mod:`repro.serve.server` and power the ``repro serve`` CLI command.
Service model, overload behavior, and tuning: ``docs/serving.md``.
"""

from repro.serve.protocol import handle_line, handle_request
from repro.serve.server import serve_jsonl, serve_tcp
from repro.serve.service import MediationService, Overloaded, ServiceConfig
from repro.serve.singleflight import SingleFlight

__all__ = [
    "MediationService",
    "Overloaded",
    "ServiceConfig",
    "SingleFlight",
    "handle_line",
    "handle_request",
    "serve_jsonl",
    "serve_tcp",
]
