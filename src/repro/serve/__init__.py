"""Load-serving layer: a concurrent query-mediation service.

``repro.serve`` is the front door for the ROADMAP's "heavy traffic"
target: many client threads, one shared :class:`MediationService` over
one :class:`~repro.mediator.Mediator`.  The service deduplicates
identical in-flight requests (single-flight by canonical query
fingerprint), batches compatible work through the shared
:class:`~repro.perf.TranslationCache`, and applies admission control —
a bounded queue plus a max-concurrency semaphore with a fast
:class:`Overloaded` rejection — while exporting queue-depth and latency
gauges through :mod:`repro.obs`.

Transports (JSON-lines over stdin or TCP) live in
:mod:`repro.serve.server` and power the ``repro serve`` CLI command.

Beyond one process, :class:`ClusterServer` shards the service across
worker processes (``repro serve --processes N``): an asyncio front-end
routes each request by consistent-hashing its query fingerprint
(:class:`HashRing`) to a shared-nothing worker, and each worker persists
its cache shard across restarts via :mod:`repro.serve.snapshot`
(:func:`write_snapshot` / :func:`restore_snapshot`).

Specs are live artifacts: the ``reload`` protocol op (and
:meth:`MediationService.reload_spec`) hot-swaps a published
specification into a running service — atomically, with in-flight
requests completing against the spec they started with — and the
cluster front-end rolls the swap across workers one shard at a time.
The durable side of that lifecycle (versioned publish/rollback, the
lint gate, ``--watch-registry``) lives in :mod:`repro.registry`; see
``docs/lifecycle.md``.

Service model, overload behavior, tuning, and the multi-process
architecture: ``docs/serving.md``.
"""

from repro.serve.cluster import ClusterConfig, ClusterError, ClusterServer
from repro.serve.protocol import (
    decode_line,
    encode_response,
    error_response,
    handle_line,
    handle_request,
    resolve_reload_specs,
)
from repro.serve.router import HashRing
from repro.serve.server import serve_jsonl, serve_tcp
from repro.serve.service import MediationService, Overloaded, ServiceConfig
from repro.serve.singleflight import SingleFlight
from repro.serve.snapshot import (
    RestoreReport,
    SnapshotReport,
    SnapshotTimer,
    restore_snapshot,
    spec_digest,
    write_snapshot,
)
from repro.serve.worker import worker_main

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterServer",
    "HashRing",
    "MediationService",
    "Overloaded",
    "RestoreReport",
    "ServiceConfig",
    "SingleFlight",
    "SnapshotReport",
    "SnapshotTimer",
    "decode_line",
    "encode_response",
    "error_response",
    "handle_line",
    "handle_request",
    "resolve_reload_specs",
    "restore_snapshot",
    "serve_jsonl",
    "serve_tcp",
    "spec_digest",
    "worker_main",
    "write_snapshot",
]
