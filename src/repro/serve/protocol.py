"""The `repro serve` wire protocol: JSON-lines requests and responses.

One request per line, one response per line — the same framing over
stdin/stdout and TCP.  Requests name an operation and carry an optional
client ``id`` that the response echoes verbatim, so clients may pipeline
and correlate out-of-order responses:

.. code-block:: json

    {"id": 1, "op": "translate", "query": "[ln = \\"Clancy\\"]"}
    {"id": 1, "ok": true, "op": "translate", "mappings": {"Amazon": {...}}}

Operations
----------

``ping``
    Liveness probe; responds ``{"ok": true, "pong": true}``.
``translate``
    ``query`` (required), ``sources`` (optional list) — per-source
    mappings with text/JSON renderings and exactness.
``mediate``
    ``query`` (required), ``strict`` (optional bool) — mediated rows
    plus completeness and per-source outcomes.
``batch``
    ``queries`` (required list), ``sources`` (optional) — one
    ``translate``-shaped result per query, through the batch path.
``stats``
    The service's exact counters and the shared cache snapshot.
``health``
    Cheap liveness summary: ``status`` (``ok``/``degraded`` by breaker
    state), in-flight/error counts, per-source breaker states.  Always
    available, registry or not.
``metrics``
    The continuous-telemetry snapshot (counters with rolling-window
    rates, gauges, latency histograms with p50/p95/p99).  With
    ``"format": "prometheus"`` the response carries the registry in
    Prometheus text exposition as a single ``text`` field instead.
``sources``
    Per-source scorecards: latency percentiles, error/retry rates,
    rows returned, breaker state, and a trailing-window error rate.
``slowlog``
    The ``n`` (default 10) slowest query fingerprints with per-
    fingerprint counts and max/mean latency.
``reload``
    Hot-swap mapping specifications without a restart: ``spec`` (one
    declarative spec dict), ``specs`` (a list of them), or ``registry``
    (a :mod:`repro.registry` directory whose *active* versions are
    loaded) — each named spec is atomically swapped into the running
    service via :meth:`MediationService.reload_spec
    <repro.serve.service.MediationService.reload_spec>`.  Responds with
    one report per spec (digests, affected sources, cache entries
    invalidated, ``changed`` false for a same-digest no-op).  In-flight
    requests complete against the spec they started with.

``metrics``, ``sources``, and ``slowlog`` need the service to run with
a metrics registry (``repro serve --metrics``); without one they answer
``{"ok": false, "error": {"type": "metrics-disabled"}}``.

Failures never tear the connection: every error becomes an
``{"ok": false, "error": {"type", "message"}}`` response.  An
overloaded service answers ``type = "overloaded"`` immediately —
clients treat it as back-pressure, not as a protocol error.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.core.errors import VocabMapError
from repro.core.json_io import query_to_json
from repro.core.printer import to_text
from repro.serve.service import MediationService, Overloaded

if TYPE_CHECKING:
    from repro.core.tdqm import TranslationResult
    from repro.mediator.mediator import MediatedAnswer

__all__ = [
    "decode_line",
    "encode_response",
    "error_response",
    "handle_request",
    "handle_line",
    "resolve_reload_specs",
]

#: Operations a request may name.
OPS = (
    "ping",
    "translate",
    "mediate",
    "batch",
    "stats",
    "health",
    "metrics",
    "sources",
    "slowlog",
    "reload",
)


def resolve_reload_specs(request: dict, served: "set[str] | None" = None) -> list[dict]:
    """The declarative spec dicts one ``reload`` request names.

    Accepts ``spec`` (one dict), ``specs`` (a list of dicts), or
    ``registry`` (a :mod:`repro.registry` directory — every *active*
    version is loaded, filtered to ``served`` spec names when given).
    Shared by the single-process dispatcher and the cluster front-end so
    both modes resolve one request shape identically.
    """
    if "registry" in request:
        root = request["registry"]
        if not isinstance(root, str) or not root:
            raise ValueError("'registry' must be a directory path")
        from repro.registry import SpecRegistry

        registry = SpecRegistry(root)
        names = [
            name
            for name in registry.names()
            if served is None or name in served
        ]
        specs = [registry.load_raw(name) for name in names]
        if not specs:
            raise ValueError(
                f"registry {root!r} has no active specification "
                f"matching the served set {sorted(served or ())}"
            )
        return specs
    if "specs" in request:
        specs = request["specs"]
        if not isinstance(specs, list) or not all(isinstance(s, dict) for s in specs):
            raise ValueError("'specs' must be a list of declarative spec objects")
        if not specs:
            raise ValueError("'specs' must not be empty")
        return specs
    spec = request.get("spec")
    if not isinstance(spec, dict):
        raise ValueError("reload needs 'spec', 'specs', or 'registry'")
    return [spec]


def _jsonable(value: object) -> object:
    """A JSON-encodable rendering of one row value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _mapping_payload(result: "TranslationResult") -> dict:
    return {
        "text": to_text(result.mapping),
        "json": query_to_json(result.mapping),
        "exact": result.exact,
    }


def _answer_payload(answer: "MediatedAnswer") -> dict:
    rows = [
        [
            {
                "view": view,
                "index": index,
                "row": {k: _jsonable(v) for k, v in pairs},
            }
            for view, index, pairs in row
        ]
        for row in answer.rows
    ]
    payload: dict = {"rows": rows, "count": len(answer.rows), "complete": answer.complete}
    if answer.outcomes:
        payload["sources"] = [outcome.to_dict() for outcome in answer.outcomes]
    return payload


class _MetricsDisabled(VocabMapError):
    """An admin op needs the registry the service was started without."""


def _require_metrics_op(service: MediationService, op: str) -> None:
    if service.metrics is None:
        raise _MetricsDisabled(
            f"op {op!r} needs continuous telemetry; "
            "restart with `repro serve --metrics`"
        )


def _require_query(request: dict) -> str:
    query = request.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ValueError("request needs a non-empty string 'query'")
    return query


def _optional_sources(request: dict) -> list[str] | None:
    sources = request.get("sources")
    if sources is None:
        return None
    if not isinstance(sources, list) or not all(isinstance(s, str) for s in sources):
        raise ValueError("'sources' must be a list of source names")
    return sources


def handle_request(service: MediationService, request: dict) -> dict:
    """Dispatch one decoded request; always returns a response dict."""
    response: dict = {}
    if not isinstance(request, dict):
        return {
            "ok": False,
            "error": {"type": "bad-request", "message": "request must be a JSON object"},
        }
    if "id" in request:
        response["id"] = request["id"]
    op = request.get("op")
    response["op"] = op
    try:
        if op == "ping":
            response.update(ok=True, pong=True)
        elif op == "translate":
            results = service.translate(
                _require_query(request), sources=_optional_sources(request)
            )
            response.update(
                ok=True,
                mappings={name: _mapping_payload(r) for name, r in sorted(results.items())},
            )
        elif op == "mediate":
            strict = request.get("strict")
            if strict is not None and not isinstance(strict, bool):
                raise ValueError("'strict' must be a boolean")
            answer = service.mediate(_require_query(request), strict=strict)
            response["ok"] = True
            response.update(_answer_payload(answer))
        elif op == "batch":
            queries = request.get("queries")
            if not isinstance(queries, list) or not all(
                isinstance(q, str) for q in queries
            ):
                raise ValueError("'queries' must be a list of query strings")
            batched = service.translate_batch(queries, sources=_optional_sources(request))
            response.update(
                ok=True,
                results=[
                    {name: _mapping_payload(r) for name, r in sorted(per.items())}
                    for per in batched
                ],
            )
        elif op == "stats":
            response.update(ok=True, stats=service.stats())
        elif op == "health":
            response.update(ok=True, health=service.health())
        elif op == "metrics":
            fmt = request.get("format", "json")
            if fmt not in ("json", "prometheus"):
                raise ValueError("'format' must be 'json' or 'prometheus'")
            _require_metrics_op(service, op)
            if fmt == "prometheus":
                from repro.obs.export import render_prometheus

                service.metrics_snapshot()  # refresh derived cache gauges
                response.update(
                    ok=True, format="prometheus",
                    text=render_prometheus(service.metrics),
                )
            else:
                response.update(ok=True, metrics=service.metrics_snapshot())
        elif op == "sources":
            _require_metrics_op(service, op)
            response.update(ok=True, sources=service.scorecards())
        elif op == "slowlog":
            n = request.get("n", 10)
            if not isinstance(n, int) or isinstance(n, bool) or n < 1:
                raise ValueError("'n' must be a positive integer")
            _require_metrics_op(service, op)
            response.update(ok=True, slowlog=service.slowlog(n))
        elif op == "reload":
            from repro.rules.declarative import spec_from_dict

            served = {spec.name for spec in service.mediator.specs.values()}
            reports = [
                service.reload_spec(spec_from_dict(data))
                for data in resolve_reload_specs(request, served)
            ]
            response.update(ok=True, reload=reports)
        else:
            raise ValueError(
                f"unknown op {op!r}; expected one of {', '.join(OPS)}"
            )
    except Overloaded as exc:
        response.update(
            ok=False, error={"type": "overloaded", "message": str(exc), "limit": exc.limit}
        )
    except _MetricsDisabled as exc:
        response.update(
            ok=False, error={"type": "metrics-disabled", "message": str(exc)}
        )
    except (ValueError, VocabMapError) as exc:
        kind = "bad-request" if isinstance(exc, ValueError) else type(exc).__name__
        response.update(ok=False, error={"type": kind, "message": str(exc)})
    return response


def error_response(request: object, kind: str, message: str) -> dict:
    """A structured ``{"ok": false}`` response, echoing the request id/op."""
    response: dict = {}
    if isinstance(request, dict):
        if "id" in request:
            response["id"] = request["id"]
        response["op"] = request.get("op")
    response.update(ok=False, error={"type": kind, "message": message})
    return response


def decode_line(line: str) -> tuple[dict | None, dict | None]:
    """Decode one request line; returns ``(request, error_response)``.

    Exactly one of the pair is non-``None``.  Decoding failures include
    the obvious :class:`json.JSONDecodeError` *and* the pathological
    inputs the stdlib decoder turns into other exceptions — deeply
    nested garbage raises :class:`RecursionError` from the C scanner —
    all of which must become a structured ``bad-json`` response rather
    than an exception that tears down the client's connection.
    """
    try:
        request = json.loads(line)
    except (ValueError, RecursionError) as exc:
        return None, error_response(None, "bad-json", str(exc) or type(exc).__name__)
    if not isinstance(request, dict):
        return None, {
            "ok": False,
            "error": {"type": "bad-request", "message": "request must be a JSON object"},
        }
    return request, None


def encode_response(response: dict) -> str:
    """Encode one response line; never raises on hostile request echoes.

    A response embeds the client's ``id`` verbatim, and a *valid* JSON
    request can still carry an id too deep for the encoder (the decoder
    and encoder recurse differently) — degrade to a structured error
    without the echo instead of killing the connection.
    """
    try:
        return json.dumps(response, sort_keys=True)
    except (ValueError, TypeError, RecursionError) as exc:
        return json.dumps(
            error_response(
                None, "bad-request", f"response not encodable: {type(exc).__name__}"
            ),
            sort_keys=True,
        )


def handle_line(service: MediationService, line: str) -> str:
    """Decode one request line, dispatch it, encode one response line.

    Never raises on client input: malformed JSON — including adversarial
    inputs like kilobyte-deep nesting that trip :class:`RecursionError`
    inside the decoder — becomes an ``{"ok": false, "error": {"type":
    "bad-json"}}`` response like any other error, and the connection
    stays up.
    """
    request, decode_error = decode_line(line)
    if decode_error is not None:
        return json.dumps(decode_error, sort_keys=True)
    assert request is not None
    return encode_response(handle_request(service, request))
