"""Consistent-hash routing of query fingerprints onto worker shards.

The cluster front-end (:mod:`repro.serve.cluster`) is shared-nothing:
each worker process owns a private :class:`~repro.perf.TranslationCache`
shard, and correctness of request coalescing plus cache warmth both rest
on one invariant — *the same canonical query fingerprint always lands on
the same shard*.  A :class:`HashRing` provides that invariant with the
two extra properties a cluster needs:

* **Stability under membership change** — shards are placed on a ring
  via many virtual points; when one shard dies (or is draining for a
  rolling restart), only the keys it owned move, each to the next live
  shard clockwise.  The other shards' cache working sets are untouched.
* **Determinism** — placement depends only on the shard ids and the
  replica count, never on process identity or startup order, so a
  restarted front-end routes exactly like its predecessor and a restored
  cache snapshot stays on the shard that will receive its fingerprints.

Keys are the hex fingerprints of :func:`repro.perf.query_fingerprint`
(any hex string works); the ring hashes its own points with SHA-256, so
shard placement is uniform without coordinating with the fingerprint
hash.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections.abc import Collection, Iterable, Sequence

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """Ring position of one virtual node label (64-bit, uniform)."""
    return int.from_bytes(hashlib.sha256(label.encode("ascii")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over integer shard ids.

    ``replicas`` virtual points per shard smooth the key distribution
    (64 keeps the max/min shard load within ~2x for random keys, at a
    few KiB of ring state).  The ring itself is immutable; liveness is a
    *query-time* concern — pass the currently routable shards to
    :meth:`route` and dead or draining shards are skipped in ring order.
    """

    def __init__(self, shard_ids: Sequence[int], replicas: int = 64):
        if not shard_ids:
            raise ValueError("HashRing needs at least one shard id")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids: {sorted(shard_ids)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shard_ids = tuple(shard_ids)
        self.replicas = replicas
        points = [
            (_point(f"shard:{shard}:vnode:{replica}"), shard)
            for shard in shard_ids
            for replica in range(replicas)
        ]
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    @staticmethod
    def key_position(key: str) -> int:
        """Ring position of one routing key (a hex fingerprint)."""
        try:
            return int(key[:16], 16)
        except ValueError:
            # Not hex (a fallback routing key): hash it onto the ring.
            return _point(f"key:{key}")

    def preference(self, key: str) -> Iterable[int]:
        """Shard ids in ring order from ``key``'s position, deduplicated.

        The first id is the key's owner; the rest are its failover
        sequence.  Every shard appears exactly once, so walking the
        whole preference list visits the full cluster.
        """
        start = bisect_right(self._points, self.key_position(key))
        seen: set[int] = set()
        total = len(self._owners)
        for offset in range(total):
            shard = self._owners[(start + offset) % total]
            if shard not in seen:
                seen.add(shard)
                yield shard
                if len(seen) == len(self.shard_ids):
                    return

    def route(self, key: str, routable: Collection[int] | None = None) -> int:
        """The owning shard for ``key`` among the ``routable`` ids.

        With ``routable=None`` every shard is eligible.  Raises
        :class:`LookupError` when no eligible shard remains — the
        cluster-down case the caller must answer with a structured
        error, not an exception escaping the event loop.
        """
        for shard in self.preference(key):
            if routable is None or shard in routable:
                return shard
        raise LookupError(f"no routable shard for key {key[:16]!r}")
