"""MediationService: a concurrent front door over one Mediator.

Many client threads call :meth:`~MediationService.translate` /
:meth:`~MediationService.mediate` against one shared service.  The
service layers three serving disciplines over the mediation pipeline:

* **Admission control** — at most ``max_concurrency`` requests execute
  at once (a semaphore) and at most ``queue_depth`` more may wait; a
  request beyond that is rejected *immediately* with :class:`Overloaded`
  rather than queued without bound — the fast-failure contract a client
  with its own deadline needs.
* **Single-flight deduplication** — identical in-flight requests (same
  operation, same canonical query fingerprint, same options) run the
  pipeline once; concurrent duplicates wait and receive the identical
  result object.  Combined with the (also single-flighted)
  :class:`~repro.perf.TranslationCache` this collapses request
  stampedes end to end.
* **Batching** — :meth:`translate_batch` routes a list of queries
  through :meth:`TranslationCache.translate_batch
  <repro.perf.TranslationCache.translate_batch>` under one admission
  slot, sharing normalization, fingerprints, and compiled rule indexes
  across the whole batch.

Everything is observable: the service emits ``serve.*`` counters and
queue-depth/latency gauges through :mod:`repro.obs`, and
:meth:`~MediationService.stats` returns exact local counters (no lost
updates — every mutation happens under the service lock).  Construct
with a :class:`~repro.obs.metrics.MetricsRegistry` (``repro serve
--metrics``) and the service additionally feeds process-lifetime
telemetry: per-operation latency histograms and a bounded slow-query
log keyed by canonical fingerprint, served live through the
``metrics`` / ``sources`` / ``slowlog`` / ``health`` protocol ops.
The registry also receives every ``serve.*`` counter via the obs tee,
so the service never counts the same event twice.

The wire layer (JSON-lines over stdin or TCP) lives in
:mod:`repro.serve.server`; semantics and tuning in ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ast import Query
from repro.core.errors import TranslationError, VocabMapError
from repro.core.normalize import normalize
from repro.core.parser import parse_query
from repro.obs import trace as obs
from repro.perf.fingerprint import query_fingerprint
from repro.perf.intern import intern_query
from repro.serve.singleflight import SingleFlight

if TYPE_CHECKING:
    from repro.core.tdqm import TranslationResult
    from repro.mediator.mediator import MediatedAnswer, Mediator
    from repro.obs.metrics import MetricsRegistry

__all__ = ["MediationService", "Overloaded", "ServiceConfig"]


class Overloaded(VocabMapError):
    """The service is at capacity; the request was rejected, not queued.

    Raised *before* any work happens, so rejection is O(1) — a client
    should back off and retry, or shed the request.  Carries the
    ``limit`` (admitted-request bound) that was hit.
    """

    def __init__(self, message: str, limit: int = 0):
        super().__init__(message)
        self.limit = limit


@dataclass(frozen=True)
class ServiceConfig:
    """Admission-control knobs for one :class:`MediationService`."""

    #: Requests executing concurrently (semaphore width).
    max_concurrency: int = 8
    #: Requests allowed to wait beyond the executing ones; total
    #: admitted = ``max_concurrency + queue_depth``, the rest are
    #: rejected with :class:`Overloaded`.
    queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {self.queue_depth}")

    @property
    def admission_limit(self) -> int:
        """Max requests admitted (executing + queued) at any instant."""
        return self.max_concurrency + self.queue_depth


class MediationService:
    """A thread-safe serving layer over one :class:`~repro.mediator.Mediator`.

    Share one instance across all client threads — the whole point is
    the shared translation cache, the shared single-flight table, and
    the shared admission budget.
    """

    def __init__(
        self,
        mediator: "Mediator",
        config: ServiceConfig | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.mediator = mediator
        self.config = config or ServiceConfig()
        self.metrics = metrics
        #: Callbacks invoked (with the new spec) after every effective
        #: hot reload — the serve layers hang snapshot-table updates and
        #: similar bookkeeping here.
        self.reload_hooks: list = []
        self._slots = threading.Semaphore(self.config.max_concurrency)
        self._flights = SingleFlight()
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._admitted = 0
        self._requests = 0
        self._completed = 0
        self._rejected = 0
        self._coalesced = 0
        self._errors = 0
        self._reloads = 0
        self._queue_high_water = 0
        self._latency_total = 0.0
        self._latency_max = 0.0

    # -- admission control ----------------------------------------------------

    @contextmanager
    def _admitted_request(
        self, op: str = "request", info: dict | None = None
    ) -> Iterator[None]:
        """Admit one request or raise :class:`Overloaded`; track latency.

        ``op`` labels the per-operation latency histogram when a metrics
        registry is attached; the operation may deposit its canonical
        ``fingerprint`` (and optionally the ``query`` text) into ``info``
        once :meth:`_prepare` has run, which routes the request into the
        slow-query log.
        """
        limit = self.config.admission_limit
        with self._lock:
            if self._admitted >= limit:
                self._rejected += 1
                obs.count("serve.rejected")
                raise Overloaded(
                    f"service at capacity ({limit} requests admitted); "
                    "back off and retry",
                    limit=limit,
                )
            self._admitted += 1
            self._requests += 1
            depth = self._admitted
            self._queue_high_water = max(self._queue_high_water, depth)
        obs.count("serve.requests")
        obs.gauge_max("serve.queue_high_water", depth)
        started = time.perf_counter()
        try:
            yield
        except Exception:
            with self._lock:
                self._errors += 1
            obs.count("serve.errors")
            raise
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._admitted -= 1
                self._completed += 1
                self._latency_total += elapsed
                self._latency_max = max(self._latency_max, elapsed)
            obs.gauge_max("serve.latency_ms", round(elapsed * 1e3, 3))
            if self.metrics is not None:
                self.metrics.record_request(
                    op,
                    elapsed,
                    fingerprint=info.get("fingerprint") if info else None,
                    query=info.get("query") if info else None,
                )

    @contextmanager
    def _execution_slot(self) -> Iterator[None]:
        """One of the ``max_concurrency`` execution slots (blocking)."""
        self._slots.acquire()
        try:
            yield
        finally:
            self._slots.release()

    # -- request preparation --------------------------------------------------

    def _prepare(self, query: "Query | str") -> tuple[Query, str]:
        """Parse/intern/normalize once; the fingerprint keys the single-flight.

        Interning first means repeat queries share one AST, so the
        normalize/fingerprint memos (:mod:`repro.perf.intern`) hit on the
        shared node and this whole step collapses to dictionary lookups.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        prepared = normalize(intern_query(parsed))
        return prepared, query_fingerprint(prepared, normalized=True)

    def _single_flight(self, key: tuple, fn):
        """Run ``fn`` deduplicated by ``key``, counting coalesced joins."""
        value, shared = self._flights.do(key, fn)
        if shared:
            with self._lock:
                self._coalesced += 1
            obs.count("serve.coalesced")
        return value

    # -- operations -----------------------------------------------------------

    def translate(
        self, query: "Query | str", sources: Sequence[str] | None = None
    ) -> "dict[str, TranslationResult]":
        """Translate one query for every (or the named) sources.

        Concurrent identical requests share one translation run; repeat
        requests hit the mediator's :class:`~repro.perf.TranslationCache`.
        Returns ``{source name: TranslationResult}``.
        """
        info: dict = {}
        with self._admitted_request("translate", info):
            prepared, fingerprint = self._prepare(query)
            info["fingerprint"] = fingerprint
            if isinstance(query, str):
                info["query"] = query
            names = tuple(sorted(sources if sources is not None else self.mediator.specs))
            key = ("translate", fingerprint, names)

            def run() -> "dict[str, TranslationResult]":
                with self._execution_slot(), obs.span("serve.translate"):
                    cache = self.mediator.translation_cache
                    if cache is None or self.mediator.interpret:
                        return self.mediator.translate_many(
                            [prepared], sources=list(names)
                        )[0]
                    # Hot path: _prepare already normalized and
                    # fingerprinted, so go straight to the shared cache
                    # instead of re-deriving both in the batch pipeline.
                    specs = self.mediator.specs
                    unknown = set(names) - set(specs)
                    if unknown:
                        raise TranslationError(
                            f"translate: unknown sources {sorted(unknown)}"
                        )
                    out: "dict[str, TranslationResult]" = {}
                    for name in names:
                        spec = specs[name]
                        spec.compiled_index()
                        out[name] = cache.tdqm_prepared(prepared, fingerprint, spec)
                    return out

            return self._single_flight(key, run)

    def mediate(
        self, query: "Query | str", *, strict: bool | None = None
    ) -> "MediatedAnswer":
        """Answer one query through the full Eq. 2 pipeline.

        Concurrent identical requests (same fingerprint, same
        strictness) share one mediation run and receive the identical
        :class:`~repro.mediator.MediatedAnswer` object — treat it as
        read-only, as with cached translations.
        """
        info: dict = {}
        with self._admitted_request("mediate", info):
            prepared, fingerprint = self._prepare(query)
            info["fingerprint"] = fingerprint
            if isinstance(query, str):
                info["query"] = query
            key = ("mediate", fingerprint, strict)

            def run() -> "MediatedAnswer":
                with self._execution_slot(), obs.span("serve.mediate"):
                    return self.mediator.answer_mediated(prepared, strict=strict)

            return self._single_flight(key, run)

    def translate_batch(
        self,
        queries: Sequence["Query | str"],
        sources: Sequence[str] | None = None,
    ) -> "list[dict[str, TranslationResult]]":
        """Translate many queries under one admission slot (batch path).

        Routes through the shared cache's batch API, so normalization
        and fingerprints are computed once per query and compiled rule
        indexes once per specification.
        """
        with self._admitted_request("batch"), self._execution_slot():
            with obs.span("serve.batch", queries=len(queries)):
                return self.mediator.translate_many(list(queries), sources=sources)

    # -- hot reload -----------------------------------------------------------

    def reload_spec(self, new_spec) -> dict:
        """Atomically swap one specification under the running service.

        Every source currently served through a spec named
        ``new_spec.name`` is repointed at ``new_spec``: the mediator's
        spec table is *replaced wholesale* (never mutated in place), so
        a request that already captured the old table — or the old spec
        object itself — completes against the rule set it started with,
        while every request admitted after the swap sees only the new
        one.  The new spec's rule closures are compiled *before* the
        swap and the shared :class:`~repro.perf.TranslationCache`
        sections for the spec are invalidated after it (entries keyed
        under the old ``(version, digest)`` are unreachable either way;
        invalidation reclaims their slots eagerly and keeps the
        counters exact).

        A reload to an identical rule set (same
        :attr:`~repro.rules.MappingSpecification.content_digest`) is a
        no-op that preserves cache warmth.  Returns a report dict;
        raises :class:`VocabMapError` when no served source uses a spec
        of that name.
        """
        with self._reload_lock:
            specs = self.mediator.specs
            sources = sorted(
                source for source, spec in specs.items() if spec.name == new_spec.name
            )
            if not sources:
                served = sorted({spec.name for spec in specs.values()})
                raise VocabMapError(
                    f"reload: no served source uses specification "
                    f"{new_spec.name!r}; serving {served}"
                )
            old_spec = specs[sources[0]]
            report = {
                "spec": new_spec.name,
                "sources": sources,
                "previous_digest": old_spec.content_digest,
                "digest": new_spec.content_digest,
                "rules": len(new_spec.rules),
            }
            if old_spec.content_digest == new_spec.content_digest:
                report.update(changed=False, invalidated=0)
                return report
            if not self.mediator.interpret:
                new_spec.compiled_index().precompile()
            replacement = dict(specs)
            for source in sources:
                replacement[source] = new_spec
            # The swap: one attribute store, atomic under the GIL.
            self.mediator.specs = replacement
            cache = self.mediator.translation_cache
            invalidated = cache.invalidate(new_spec.name) if cache is not None else 0
            with self._lock:
                self._reloads += 1
            obs.count("serve.reloads")
            report.update(changed=True, invalidated=invalidated)
            for hook in list(self.reload_hooks):
                hook(new_spec)
            return report

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Exact service counters plus the shared cache's snapshot."""
        with self._lock:
            completed = self._completed
            snapshot = {
                "requests": self._requests,
                "completed": completed,
                "rejected": self._rejected,
                "coalesced": self._coalesced,
                "errors": self._errors,
                "reloads": self._reloads,
                "in_flight": self._admitted,
                "queue_high_water": self._queue_high_water,
                "latency_mean_ms": round(
                    (self._latency_total / completed) * 1e3, 3
                ) if completed else 0.0,
                "latency_max_ms": round(self._latency_max * 1e3, 3),
                "max_concurrency": self.config.max_concurrency,
                "queue_depth": self.config.queue_depth,
            }
        cache = self.mediator.translation_cache
        snapshot["cache"] = cache.stats.to_dict() if cache is not None else None
        return snapshot

    def _require_metrics(self) -> "MetricsRegistry":
        if self.metrics is None:
            raise VocabMapError(
                "continuous telemetry is disabled; "
                "construct MediationService(metrics=...) or run "
                "`repro serve --metrics`"
            )
        return self.metrics

    def metrics_snapshot(self) -> dict:
        """The full registry snapshot, with cache gauges refreshed.

        Counters/histograms accumulate continuously via the obs tee;
        cache *effectiveness* (hit rate, occupancy) is a derived ratio,
        so it is computed here from the shared cache's exact stats and
        published as gauges at snapshot time.
        """
        registry = self._require_metrics()
        cache = self.mediator.translation_cache
        if cache is not None:
            stats = cache.stats.to_dict()
            registry.gauge("perf.cache.hit_rate", stats["hit_rate"])
            registry.gauge("perf.cache.size", stats["size"])
            registry.gauge("perf.cache.maxsize", stats["maxsize"])
        return registry.snapshot()

    def scorecards(self) -> list[dict]:
        """Per-source scorecards (latency percentiles, errors, breaker)."""
        return self._require_metrics().scorecards_snapshot()

    def slowlog(self, n: int = 10) -> list[dict]:
        """The ``n`` slowest query fingerprints seen so far, worst first."""
        return self._require_metrics().slowlog_top(n)

    def health(self) -> dict:
        """Cheap liveness summary; works with or without a registry.

        ``status`` is ``"ok"`` unless a source's circuit breaker is not
        closed (``"degraded"``) — the signal a load balancer or the
        ``repro top`` header needs without the full snapshot cost.
        """
        stats = self.stats()
        out = {
            "status": "ok",
            "metrics_enabled": self.metrics is not None,
            "in_flight": stats["in_flight"],
            "requests": stats["requests"],
            "rejected": stats["rejected"],
            "errors": stats["errors"],
            "sources": {},
        }
        if self.metrics is not None:
            out["uptime_seconds"] = round(self.metrics.uptime(), 3)
            for card in self.metrics.scorecards_snapshot():
                state = card["breaker_state"]
                out["sources"][card["source"]] = {
                    "breaker_state": state,
                    "error_rate": card["error_rate"],
                }
                if state is not None and state != "closed":
                    out["status"] = "degraded"
        return out
