"""Multi-process serving: an asyncio front-end over sharded workers.

The single-process :class:`~repro.serve.MediationService` is GIL-bound —
bench_serve plateaus at ~3x over per-request translation no matter how
many threads it spawns.  ``repro.serve.cluster`` breaks the ceiling with
shared-nothing process sharding:

* An **asyncio front-end** (this module) accepts TCP/JSON-lines client
  connections — the same wire protocol as single-process ``repro serve``
  — and routes each request by consistent-hashing its canonical query
  fingerprint (:mod:`repro.serve.router`) to one of N **worker
  processes** (:mod:`repro.serve.worker`), each running a private
  :class:`~repro.serve.MediationService` with its own
  :class:`~repro.perf.TranslationCache` shard.
* Because a fingerprint always lands on the same shard, request
  coalescing and cache accounting stay exactly as correct as in one
  process — there are no cross-process locks to take, and responses are
  bit-identical to single-process mode.
* When a worker dies, its ring segment **fails over** to the next live
  shard (those keys run cache-cold, nothing more); the dead shard's
  in-flight requests are retried on the failover shard, so clients see
  degraded latency, not errors.  :meth:`ClusterServer.restart_shard`
  does the same dance deliberately — drain, final snapshot, respawn,
  warm restore — for zero-loss rolling restarts.
* Each worker persists its cache shard via
  :mod:`repro.serve.snapshot`, so a full cluster restart starts warm.

Front-end additions to the protocol (everything else proxies verbatim):
``stats`` aggregates exact per-shard counters (and carries them under
``stats.shards``), ``shards`` reports shard topology/liveness,
``drain`` removes/returns a shard from rotation, ``restart`` performs a
rolling restart, ``snapshot`` asks every live worker to persist its
shard now, and ``reload`` hot-swaps mapping specs across the fleet one
shard at a time (drain → swap → precompile → re-admit), so a registry
publish reaches every worker without losing a request or a warm cache
entry for the unchanged specs.  ``health``/``sources``/``slowlog`` fan out and merge;
``metrics`` returns per-shard registry snapshots plus summed counters.

The event loop runs on a dedicated thread so the blocking CLI and the
synchronous tests drive one :class:`ClusterServer` object the same way.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.core.normalize import normalize
from repro.core.parser import parse_query
from repro.obs.metrics import aggregate_scorecards
from repro.perf.fingerprint import query_fingerprint
from repro.serve.protocol import (
    OPS,
    decode_line,
    encode_response,
    error_response,
    resolve_reload_specs,
)
from repro.serve.router import HashRing
from repro.serve.service import ServiceConfig
from repro.serve.worker import worker_main

__all__ = ["ClusterConfig", "ClusterServer", "ClusterError"]

#: Ops the front-end answers itself (everything else goes to a shard).
FRONTEND_OPS = ("stats", "shards", "drain", "restart", "snapshot",
                "health", "metrics", "sources", "slowlog", "reload")

#: Worker counters summed into the aggregated ``stats`` op.
_SUMMED_STATS = ("requests", "completed", "rejected", "coalesced", "errors",
                 "reloads", "in_flight")
_SUMMED_CACHE = ("hits", "misses", "evictions", "invalidations", "coalesced", "size")


class ClusterError(RuntimeError):
    """Cluster lifecycle failure (worker boot, front-end state)."""


class _ShardDied(Exception):
    """The shard's connection dropped while this request was in flight."""


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and per-worker tuning for one :class:`ClusterServer`."""

    #: Built-in scenario the workers serve (e.g. ``("K_Amazon",)``).
    spec_names: tuple[str, ...]
    #: Worker process count (the shard count).
    processes: int = 2
    #: Admission-control knobs applied inside each worker.
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Directory for per-shard warm-start snapshots (``None`` disables).
    snapshot_dir: str | None = None
    #: Seconds between periodic worker snapshots (0 = only on shutdown).
    snapshot_interval: float = 30.0
    #: Hottest-entry bound per snapshot (``None`` = whole cache).
    snapshot_limit: int | None = None
    #: Give each worker its own continuous-telemetry registry.
    metrics: bool = False
    #: Resilience flags forwarded to each worker's mediator
    #: (plain data: ``timeout``/``retries``/``backoff``/``strict``/``faults``).
    resilience_args: dict | None = None
    #: Force interpreted matching in every worker (the compiled-path
    #: escape hatch; see :mod:`repro.perf.compile`).
    interpret: bool = False
    #: Virtual nodes per shard on the routing ring.
    ring_replicas: int = 64
    #: Seconds to wait for one worker to boot and report its port.
    boot_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError(f"processes must be >= 1, got {self.processes}")
        if self.snapshot_interval < 0:
            raise ValueError(
                f"snapshot_interval must be >= 0, got {self.snapshot_interval}"
            )


class _Shard:
    """Front-end state for one worker process + its multiplexed pipe."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process: multiprocessing.process.BaseProcess | None = None
        self.pid: int | None = None
        self.port: int | None = None
        self.restored: dict | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task | None = None
        self.pending: dict[str, asyncio.Future] = {}
        self.write_lock: asyncio.Lock | None = None
        self.alive = False
        self.draining = False
        self.routed = 0
        self.restarts = 0

    @property
    def routable(self) -> bool:
        return self.alive and not self.draining

    def topology(self) -> dict:
        return {
            "shard": self.shard_id,
            "pid": self.pid,
            "alive": self.alive,
            "draining": self.draining,
            "routed": self.routed,
            "restarts": self.restarts,
            "in_flight": len(self.pending),
        }


class _FingerprintMemo:
    """A tiny LRU of query text -> routing fingerprint.

    The front-end must fingerprint every query to route it; on a warm
    stream the same texts recur constantly, and this memo turns the
    parse+normalize+hash into one dict hit.  ``None`` marks texts that
    do not parse — they are routed by a fallback key and the owning
    worker produces the exact single-process error response.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._entries: OrderedDict[str, str | None] = OrderedDict()

    def get(self, text: str) -> str | None:
        try:
            fingerprint = self._entries[text]
        except KeyError:
            try:
                fingerprint = query_fingerprint(
                    normalize(parse_query(text)), normalized=True
                )
            except Exception:  # noqa: BLE001 - worker reproduces the error
                fingerprint = None
            self._entries[text] = fingerprint
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return fingerprint
        self._entries.move_to_end(text)
        return fingerprint

    def __len__(self) -> int:
        return len(self._entries)


class ClusterServer:
    """The multi-process ``repro serve`` front-end (see module docstring).

    Synchronous lifecycle API (:meth:`start` / :meth:`stop` /
    :meth:`restart_shard` / :meth:`kill_shard`) drives a private asyncio
    loop thread, so the CLI, the tests, and the benches all use the same
    object without touching asyncio themselves.
    """

    def __init__(self, config: ClusterConfig, host: str = "127.0.0.1", port: int = 0):
        self.config = config
        self.host = host
        self.port = port
        self.shards = [_Shard(i) for i in range(config.processes)]
        self.ring = HashRing(range(config.processes), replicas=config.ring_replicas)
        self._memo = _FingerprintMemo()
        self._mp = multiprocessing.get_context("spawn")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._next_call = 0
        self._started = False
        self._client_tasks: set[asyncio.Task] = set()
        # Front-end counters (reported under stats.frontend).
        self.requests = 0
        self.failovers = 0
        self.worker_deaths = 0

    # -- sync lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if not self._started or self._server is None:
            raise ClusterError("cluster is not serving")
        return self._server.sockets[0].getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Spawn workers, connect, bind the client port; returns (host, port)."""
        if self._started:
            raise ClusterError("cluster already started")
        for shard in self.shards:
            self._spawn_worker(shard)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="cluster-frontend", daemon=True
        )
        self._loop_thread.start()
        try:
            self._run(self._async_start(), timeout=self.config.boot_timeout)
        except Exception:
            self.stop()
            raise
        self._started = True
        return self.address

    def stop(self) -> None:
        """Stop serving, terminate workers (each writes a final snapshot)."""
        if self._loop is not None and self._loop.is_running():
            try:
                self._run(self._async_stop(), timeout=30.0)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
            self._loop_thread = None
        if self._loop is not None:
            self._loop.close()
            self._loop = None
        for shard in self.shards:
            self._terminate_worker(shard)
        self._started = False

    def restart_shard(self, shard_id: int) -> dict:
        """Rolling restart of one shard, warm from its final snapshot."""
        return self._run(self._async_restart(shard_id), timeout=120.0)

    def reload_specs(self, spec_dicts: list[dict]) -> dict:
        """Rolling hot reload of declarative specs across every shard.

        The synchronous face of the ``reload`` front-end op — what
        ``--watch-registry`` calls when the registry changes under a
        running cluster.
        """
        return self._run(self._async_reload(list(spec_dicts)), timeout=120.0)

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one worker (fault injection for tests/smoke)."""
        shard = self.shards[shard_id]
        if shard.process is not None:
            shard.process.kill()
            shard.process.join(timeout=10.0)

    def __enter__(self) -> "ClusterServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self, coro: Any, timeout: float) -> Any:
        if self._loop is None:
            raise ClusterError("cluster loop is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    # -- worker process management (sync; called from loop via executor) ------

    def _spawn_worker(self, shard: _Shard) -> None:
        parent, child = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(shard.shard_id, self.config.spec_names, self.config.service, child),
            kwargs={
                "snapshot_dir": self.config.snapshot_dir,
                "snapshot_interval": self.config.snapshot_interval,
                "snapshot_limit": self.config.snapshot_limit,
                "metrics": self.config.metrics,
                "resilience_args": self.config.resilience_args,
                "interpret": self.config.interpret,
            },
            daemon=True,
        )
        process.start()
        child.close()
        try:
            if not parent.poll(self.config.boot_timeout):
                raise ClusterError(
                    f"shard {shard.shard_id}: worker did not report within "
                    f"{self.config.boot_timeout}s"
                )
            report = parent.recv()
        except EOFError:
            raise ClusterError(
                f"shard {shard.shard_id}: worker died during boot"
            ) from None
        finally:
            parent.close()
        if "error" in report:
            raise ClusterError(f"shard {shard.shard_id}: {report['error']}")
        shard.process = process
        shard.pid = report["pid"]
        shard.port = report["port"]
        shard.restored = report.get("restored")

    def _terminate_worker(self, shard: _Shard) -> None:
        process = shard.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()  # SIGTERM -> graceful shutdown + final snapshot
            process.join(timeout=15.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        shard.process = None
        shard.alive = False

    # -- async internals ------------------------------------------------------

    async def _async_start(self) -> None:
        for shard in self.shards:
            await self._connect_shard(shard)
        self._server = await asyncio.start_server(
            self._serve_client, host=self.host, port=self.port
        )

    async def _async_stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        self._client_tasks.clear()
        for shard in self.shards:
            await self._disconnect_shard(shard)

    async def _connect_shard(self, shard: _Shard) -> None:
        assert shard.port is not None
        shard.reader, shard.writer = await asyncio.open_connection(
            "127.0.0.1", shard.port
        )
        shard.write_lock = asyncio.Lock()
        shard.pending = {}
        shard.alive = True
        shard.reader_task = asyncio.ensure_future(self._read_responses(shard))

    async def _disconnect_shard(self, shard: _Shard) -> None:
        if shard.reader_task is not None:
            shard.reader_task.cancel()
            try:
                await shard.reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            shard.reader_task = None
        if shard.writer is not None:
            shard.writer.close()
            shard.writer = None
        shard.reader = None
        shard.alive = False

    async def _read_responses(self, shard: _Shard) -> None:
        """Resolve this shard's in-flight futures; detect worker death."""
        assert shard.reader is not None
        try:
            while True:
                raw = await shard.reader.readline()
                if not raw:
                    break
                try:
                    response = json.loads(raw.decode("utf-8", errors="replace"))
                except (ValueError, RecursionError):
                    continue  # a torn line; the future times out via death below
                call_id = response.pop("id", None)
                future = shard.pending.pop(call_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - connection torn down
            pass
        # Worker is gone: fail everything in flight so callers fail over.
        if shard.alive:
            shard.alive = False
            self.worker_deaths += 1
        for future in list(shard.pending.values()):
            if not future.done():
                future.set_exception(_ShardDied(f"shard {shard.shard_id} died"))
        shard.pending.clear()

    async def _call_shard(self, shard: _Shard, payload: dict) -> dict:
        """One request/response over the shard's multiplexed connection."""
        if not shard.alive or shard.writer is None or shard.write_lock is None:
            raise _ShardDied(f"shard {shard.shard_id} is down")
        self._next_call += 1
        call_id = f"c{self._next_call}"
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        shard.pending[call_id] = future
        line = json.dumps({**payload, "id": call_id}) + "\n"
        try:
            async with shard.write_lock:
                shard.writer.write(line.encode("utf-8"))
                await shard.writer.drain()
        except (ConnectionError, OSError) as exc:
            shard.pending.pop(call_id, None)
            raise _ShardDied(f"shard {shard.shard_id} died mid-write") from exc
        try:
            return await future
        finally:
            shard.pending.pop(call_id, None)

    # -- routing --------------------------------------------------------------

    def _routing_key(self, request: dict) -> str:
        """The consistent-hash key for one request.

        Parseable queries route by canonical fingerprint (the invariant
        coalescing and cache warmth rest on); everything else routes by
        a deterministic fallback so the owning worker can produce the
        exact single-process error response.
        """
        query = request.get("query")
        if isinstance(query, str):
            fingerprint = self._memo.get(query)
            if fingerprint is not None:
                return fingerprint
            return f"text:{query}"
        return f"op:{request.get('op')!r}:{query!r}"

    def _routable_ids(self) -> set[int]:
        return {shard.shard_id for shard in self.shards if shard.routable}

    async def _route(self, key: str, payload: dict, request: dict) -> dict:
        """Dispatch to the key's owner, failing over along the ring."""
        for shard_id in self.ring.preference(key):
            shard = self.shards[shard_id]
            if not shard.routable:
                continue
            shard.routed += 1
            try:
                return await self._call_shard(shard, payload)
            except _ShardDied:
                self.failovers += 1
                continue
        return error_response(
            request, "no-workers", "no live worker shard can take this request"
        )

    # -- client connections ---------------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        current = asyncio.current_task()
        if current is not None:
            self._client_tasks.add(current)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                text = raw.decode("utf-8", errors="replace").strip()
                if not text or text.startswith("#"):
                    continue
                task = asyncio.ensure_future(
                    self._answer_line(text, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # front-end shutdown with the client still connected
        finally:
            if current is not None:
                self._client_tasks.discard(current)
            for task in tasks:
                task.cancel()
            writer.close()

    async def _answer_line(
        self, line: str, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            response = await self._handle_line(line)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - never tear the connection
            response = error_response(
                None, "internal-error", f"{type(exc).__name__}: {exc}"
            )
        encoded = encode_response(response) + "\n"
        try:
            async with write_lock:
                writer.write(encoded.encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _handle_line(self, line: str) -> dict:
        request, decode_error = decode_line(line)
        if decode_error is not None:
            return decode_error
        assert request is not None
        self.requests += 1
        op = request.get("op")
        client_id = request.get("id", _MISSING)
        payload = {k: v for k, v in request.items() if k != "id"}

        if op == "ping":
            response: dict = {}
            if client_id is not _MISSING:
                response["id"] = client_id
            response.update(op=op, ok=True, pong=True)
            return response
        if op in FRONTEND_OPS:
            response = await self._frontend_op(op, request)
        elif op == "batch":
            response = await self._scatter_batch(payload, request)
        else:
            # translate / mediate / unknown ops: the owning worker
            # produces the exact single-process response (including the
            # unknown-op error listing the protocol's op table).
            response = await self._route(self._routing_key(request), payload, request)
        if client_id is not _MISSING:
            response["id"] = client_id
        else:
            response.pop("id", None)
        return response

    # -- batch scatter/gather -------------------------------------------------

    async def _scatter_batch(self, payload: dict, request: dict) -> dict:
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            # Identical to the single-process validation error.
            return error_response(
                request, "bad-request", "'queries' must be a list of query strings"
            )
        keys = [self._memo.get(q) for q in queries]
        if not queries or any(key is None for key in keys):
            # Empty or unparseable batches go to one worker wholesale so
            # error semantics (first bad query wins) match single-process.
            return await self._route(
                f"text:{queries[0] if queries else ''}", payload, request
            )
        by_shard: dict[int, list[int]] = {}
        routable = self._routable_ids()
        try:
            for index, key in enumerate(keys):
                assert key is not None
                by_shard.setdefault(self.ring.route(key, routable), []).append(index)
        except LookupError:
            return error_response(
                request, "no-workers", "no live worker shard can take this request"
            )
        parts = await asyncio.gather(
            *(
                self._route(
                    keys[indexes[0]] or "",
                    {**payload, "queries": [queries[i] for i in indexes]},
                    request,
                )
                for indexes in by_shard.values()
            )
        )
        merged: list[dict | None] = [None] * len(queries)
        for indexes, part in zip(by_shard.values(), parts):
            if not part.get("ok"):
                part.pop("id", None)
                return part
            for position, result in zip(indexes, part["results"]):
                merged[position] = result
        return {"op": "batch", "ok": True, "results": merged}

    # -- front-end ops --------------------------------------------------------

    async def _frontend_op(self, op: str, request: dict) -> dict:
        base: dict = {"op": op}
        if op == "shards":
            return {**base, "ok": True, "shards": [s.topology() for s in self.shards]}
        if op == "drain":
            return await self._op_drain(request, base)
        if op == "restart":
            shard_id, bad = self._shard_arg(request)
            if bad is not None:
                return bad
            result = await self._async_restart(shard_id)
            return {**base, "ok": True, "restart": result}
        if op == "snapshot":
            per_shard = await self._fanout({"op": "snapshot"})
            return {**base, "ok": True, "snapshots": per_shard}
        if op == "reload":
            return await self._op_reload(request, base)
        if op == "stats":
            return {**base, "ok": True, "stats": await self._aggregate_stats()}
        if op == "health":
            return {**base, "ok": True, "health": await self._aggregate_health()}
        if op == "sources":
            return await self._aggregate_sources(base)
        if op == "slowlog":
            n = request.get("n", 10)
            if not isinstance(n, int) or isinstance(n, bool) or n < 1:
                return error_response(request, "bad-request", "'n' must be a positive integer")
            return await self._aggregate_slowlog(base, n)
        if op == "metrics":
            return await self._aggregate_metrics(base, request)
        raise AssertionError(f"unhandled front-end op {op!r}")

    def _shard_arg(self, request: dict) -> tuple[int, dict | None]:
        shard_id = request.get("shard")
        if (
            not isinstance(shard_id, int)
            or isinstance(shard_id, bool)
            or not 0 <= shard_id < len(self.shards)
        ):
            return -1, error_response(
                request,
                "bad-request",
                f"'shard' must be an integer in [0, {len(self.shards) - 1}]",
            )
        return shard_id, None

    async def _op_drain(self, request: dict, base: dict) -> dict:
        shard_id, bad = self._shard_arg(request)
        if bad is not None:
            return bad
        shard = self.shards[shard_id]
        if request.get("resume"):
            shard.draining = False
            return {**base, "ok": True, "shard": shard.topology()}
        shard.draining = True
        await self._wait_drained(shard)
        return {**base, "ok": True, "shard": shard.topology()}

    async def _wait_drained(self, shard: _Shard, timeout: float = 30.0) -> None:
        deadline = asyncio.get_event_loop().time() + timeout
        while shard.pending and asyncio.get_event_loop().time() < deadline:
            await asyncio.sleep(0.01)

    async def _op_reload(self, request: dict, base: dict) -> dict:
        try:
            spec_dicts = resolve_reload_specs(request, set(self.config.spec_names))
        except ValueError as exc:
            return error_response(request, "bad-request", str(exc))
        except Exception as exc:  # noqa: BLE001 - registry load failures
            return error_response(
                request, type(exc).__name__, str(exc) or type(exc).__name__
            )
        result = await self._async_reload(spec_dicts)
        return {**base, **result}

    async def _async_reload(self, spec_dicts: list[dict]) -> dict:
        """Coordinated rolling reload: drain -> swap -> precompile -> re-admit.

        Shards reload one at a time, so at every instant all-but-one
        shard keeps serving (its requests fail over along the ring while
        it drains, exactly like a rolling restart) and each response is
        computed wholly against the old or wholly against the new rule
        set — never a mix.  The worker-side swap precompiles the new
        spec's closures before it lands (``MediationService.reload_spec``),
        and each worker's snapshot table follows the swap, so warm-start
        snapshots are discarded only for the specs that actually changed.
        """
        shard_reports: list[dict] = []
        ok = True
        for shard in self.shards:
            if not shard.alive:
                ok = False
                shard_reports.append(
                    {"shard": shard.shard_id, "ok": False, "error": "shard is down"}
                )
                continue
            shard.draining = True
            try:
                await self._wait_drained(shard)
                response = await self._call_shard(
                    shard, {"op": "reload", "specs": spec_dicts}
                )
            except _ShardDied as exc:
                ok = False
                shard_reports.append(
                    {"shard": shard.shard_id, "ok": False, "error": str(exc)}
                )
                continue
            finally:
                shard.draining = False
            entry = {"shard": shard.shard_id, **response}
            entry.pop("op", None)
            if not response.get("ok"):
                ok = False
            shard_reports.append(entry)
        return {"ok": ok, "reload": shard_reports}

    async def _async_restart(self, shard_id: int) -> dict:
        """Drain -> snapshot via SIGTERM -> respawn -> warm reconnect."""
        shard = self.shards[shard_id]
        shard.draining = True
        await self._wait_drained(shard)
        await self._disconnect_shard(shard)
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, self._terminate_worker, shard)
        await loop.run_in_executor(None, self._spawn_worker, shard)
        await self._connect_shard(shard)
        shard.draining = False
        shard.restarts += 1
        return shard.topology() | {"restored": shard.restored}

    # -- aggregation ----------------------------------------------------------

    def _live_shards(self) -> Iterable[_Shard]:
        return (shard for shard in self.shards if shard.alive)

    async def _fanout(self, payload: dict) -> list[dict]:
        """One op against every live shard; per-shard results labeled."""
        shards = list(self._live_shards())
        results = await asyncio.gather(
            *(self._call_shard(shard, payload) for shard in shards),
            return_exceptions=True,
        )
        out = []
        for shard, result in zip(shards, results):
            if isinstance(result, BaseException):
                out.append({"shard": shard.shard_id, "ok": False, "error": str(result)})
            else:
                out.append({"shard": shard.shard_id, **result})
        return out

    async def _aggregate_stats(self) -> dict:
        per_shard = await self._fanout({"op": "stats"})
        aggregated: dict[str, Any] = dict.fromkeys(_SUMMED_STATS, 0)
        cache: dict[str, Any] = dict.fromkeys(_SUMMED_CACHE, 0)
        cache["maxsize"] = 0
        queue_high_water = 0
        latency_total = 0.0
        latency_max = 0.0
        completed = 0
        seen_cache = False
        shards_out = []
        for shard, entry in zip(self.shards, self._merge_topology(per_shard)):
            shards_out.append(entry)
            stats = entry.get("stats")
            if not stats:
                continue
            for name in _SUMMED_STATS:
                aggregated[name] += stats.get(name, 0)
            queue_high_water = max(queue_high_water, stats.get("queue_high_water", 0))
            latency_max = max(latency_max, stats.get("latency_max_ms", 0.0))
            latency_total += stats.get("latency_mean_ms", 0.0) * stats.get("completed", 0)
            completed += stats.get("completed", 0)
            if stats.get("cache"):
                seen_cache = True
                for name in _SUMMED_CACHE:
                    cache[name] += stats["cache"].get(name, 0)
                cache["maxsize"] += stats["cache"].get("maxsize", 0)
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = round(cache["hits"] / lookups, 4) if lookups else 0.0
        aggregated.update(
            queue_high_water=queue_high_water,
            latency_mean_ms=round(latency_total / completed, 3) if completed else 0.0,
            latency_max_ms=latency_max,
            max_concurrency=self.config.service.max_concurrency,
            queue_depth=self.config.service.queue_depth,
            cache=cache if seen_cache else None,
        )
        aggregated["shards"] = shards_out
        aggregated["frontend"] = {
            "processes": len(self.shards),
            "requests": self.requests,
            "failovers": self.failovers,
            "worker_deaths": self.worker_deaths,
            "fingerprint_memo": len(self._memo),
        }
        return aggregated

    def _merge_topology(self, per_shard: list[dict]) -> list[dict]:
        """Join fan-out results (live shards only) with full topology."""
        by_shard = {entry["shard"]: entry for entry in per_shard}
        merged = []
        for shard in self.shards:
            entry = shard.topology()
            result = by_shard.get(shard.shard_id)
            if result is not None and result.get("ok"):
                for key, value in result.items():
                    if key not in ("id", "op", "ok", "shard"):
                        entry[key] = value
            merged.append(entry)
        return merged

    async def _aggregate_health(self) -> dict:
        per_shard = await self._fanout({"op": "health"})
        out: dict[str, Any] = {
            "status": "ok",
            "metrics_enabled": self.config.metrics,
            "in_flight": 0,
            "requests": 0,
            "rejected": 0,
            "errors": 0,
            "sources": {},
            "shards": [],
        }
        live = 0
        for entry in per_shard:
            health = entry.get("health")
            out["shards"].append(
                {"shard": entry["shard"], "status": (health or {}).get("status", "down")}
            )
            if not health:
                continue
            live += 1
            for name in ("in_flight", "requests", "rejected", "errors"):
                out[name] += health.get(name, 0)
            for source, card in health.get("sources", {}).items():
                known = out["sources"].setdefault(source, card)
                if card.get("breaker_state") not in (None, "closed"):
                    known.update(card)
            if health.get("status") != "ok":
                out["status"] = "degraded"
        if live < len(self.shards):
            out["status"] = "degraded"
        if live == 0:
            out["status"] = "down"
        return out

    async def _aggregate_sources(self, base: dict) -> dict:
        per_shard = await self._fanout({"op": "sources"})
        failed = [e for e in per_shard if not e.get("ok")]
        if failed and len(failed) == len(per_shard):
            return {**base, **{k: v for k, v in failed[0].items() if k != "shard"}}
        cards = [e["sources"] for e in per_shard if e.get("ok")]
        return {
            **base,
            "ok": True,
            "sources": aggregate_scorecards(cards),
            "shards": [
                {"shard": e["shard"], "sources": e.get("sources")}
                for e in per_shard
                if e.get("ok")
            ],
        }

    async def _aggregate_slowlog(self, base: dict, n: int) -> dict:
        per_shard = await self._fanout({"op": "slowlog", "n": n})
        failed = [e for e in per_shard if not e.get("ok")]
        if failed and len(failed) == len(per_shard):
            return {**base, **{k: v for k, v in failed[0].items() if k != "shard"}}
        merged: dict[tuple[str, str], dict] = {}
        for entry in per_shard:
            if not entry.get("ok"):
                continue
            for item in entry["slowlog"]:
                key = (item["op"], item["fingerprint"])
                known = merged.get(key)
                if known is None:
                    merged[key] = dict(item)
                    continue
                total = known["count"] + item["count"]
                known["mean_ms"] = round(
                    (known["mean_ms"] * known["count"] + item["mean_ms"] * item["count"])
                    / total,
                    3,
                )
                known["count"] = total
                known["max_ms"] = max(known["max_ms"], item["max_ms"])
        top = sorted(merged.values(), key=lambda e: e["max_ms"], reverse=True)[:n]
        return {**base, "ok": True, "slowlog": top}

    async def _aggregate_metrics(self, base: dict, request: dict) -> dict:
        if request.get("format", "json") != "json":
            return error_response(
                request,
                "bad-request",
                "cluster mode serves metrics as JSON; scrape workers "
                "individually for Prometheus exposition",
            )
        per_shard = await self._fanout({"op": "metrics"})
        failed = [e for e in per_shard if not e.get("ok")]
        if failed and len(failed) == len(per_shard):
            return {**base, **{k: v for k, v in failed[0].items() if k != "shard"}}
        counters: dict[str, float] = {}
        for entry in per_shard:
            if not entry.get("ok"):
                continue
            for name, counter in entry["metrics"].get("counters", {}).items():
                counters[name] = counters.get(name, 0) + counter.get("total", 0)
        return {
            **base,
            "ok": True,
            "metrics": {
                "aggregated": {"counters": counters},
                "shards": [
                    {"shard": e["shard"], "metrics": e.get("metrics")}
                    for e in per_shard
                    if e.get("ok")
                ],
            },
        }


_MISSING = object()
