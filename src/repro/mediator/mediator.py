"""The mediation pipeline: Eq. 1 (direct) vs Eq. 2 (translated) answering.

:class:`Mediator` owns integrated views, the sources behind them, and one
mapping specification per source.  It answers a user constraint query two
ways:

* :meth:`answer_direct` — materialize every referenced view instance and
  evaluate ``Q`` over their cross product: ``σ_Q(V1 × ... × Vh)``, the
  semantics the user sees (Eq. 1 after view expansion).
* :meth:`answer_mediated` — translate ``Q`` per source with Algorithm
  TDQM, let each source evaluate its mapping natively over its own
  relation instances, reassemble view tuples through the conversion
  functions, and post-filter with the residue ``F``:
  ``σ_F[σ_S1(Q)(R1) × ... × σ_Sn(Q)(Rn) × X]`` (Eq. 2).

Eq. 3 (``Q ≡ F ∧ S1(Q) ∧ ... ∧ Sn(Q)``) says the two answers must agree —
the end-to-end correctness check the integration tests and the mediator
bench run on every workload.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from itertools import product

from repro.core.ast import AttrRef, Query
from repro.core.errors import EvaluationError, SourceUnavailableError, TranslationError
from repro.core.filters import FilterPlan, build_filter
from repro.core.normalize import normalize
from repro.core.tdqm import TranslationResult
from repro.engine.eval import RowEnv, Virtual, evaluate
from repro.engine.source import Source
from repro.engine.views import UnionViewDef, ViewDef
from repro.obs import trace as obs
from repro.perf import TranslationCache, translate_batch
from repro.resilience import (
    ResilienceConfig,
    SourceOutcome,
    record_outcome,
    wrap_sources,
)
from repro.rules.spec import MappingSpecification

__all__ = ["Mediator", "MediatedAnswer"]

#: Sentinel: "construct a default TranslationCache" (pass None to disable).
_DEFAULT_CACHE = object()

#: One result: ((view, index) -> view tuple) frozen for comparison.
ResultRow = tuple


class MediatedAnswer:
    """The mediated result plus the plan(s) that produced it.

    For plain views there is exactly one plan; for *union* views (Section
    2) the query runs once per component choice and ``plans`` holds one
    :class:`~repro.core.filters.FilterPlan` per choice (the residue filter
    depends on which sources the choice involves).

    Under a resilient mediator the answer additionally carries
    **partial-answer semantics**: ``outcomes`` lists one
    :class:`~repro.resilience.SourceOutcome` per source call (status
    ok / retried / failed / timed-out / skipped-open-circuit) and
    ``complete`` is ``False`` when any call failed — the surviving rows
    are then the union of the choices whose sources all answered, never
    wrong rows, just possibly fewer.
    """

    def __init__(
        self,
        rows: list[ResultRow],
        plans: list[FilterPlan],
        outcomes: Sequence[SourceOutcome] | None = None,
        complete: bool = True,
    ):
        self.rows = rows
        self.plans = list(plans)
        #: Per-source-call outcome records (empty for non-resilient runs).
        self.outcomes: list[SourceOutcome] = list(outcomes or [])
        #: Did every source call succeed?  Partial answers are sound but
        #: may be missing the failed sources' contributions.
        self.complete = complete

    @property
    def plan(self) -> FilterPlan:
        """The (first) plan — the only one for non-union mediators."""
        if not self.plans:
            raise ValueError(
                "mediated answer has no plans: zero translation choices "
                "were executed for this query"
            )
        return self.plans[0]

    @property
    def failed_sources(self) -> list[str]:
        """Names of sources whose calls failed, in outcome order."""
        seen: list[str] = []
        for outcome in self.outcomes:
            if not outcome.ok and outcome.source not in seen:
                seen.append(outcome.source)
        return seen

    def __len__(self) -> int:
        return len(self.rows)


class Mediator:
    """A mediator integrating heterogeneous sources behind unified views."""

    def __init__(
        self,
        views: Mapping[str, ViewDef],
        sources: Mapping[str, Source],
        specs: Mapping[str, MappingSpecification],
        view_virtuals: Mapping[str, Virtual] | None = None,
        translation_cache: TranslationCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        resilience: ResilienceConfig | None = None,
        interpret: bool = False,
    ):
        self.views = dict(views)
        # interpret=True runs every translation on the interpreted matcher
        # and bypasses the translation cache — the repro.perf.compile
        # escape hatch / equivalence oracle, at mediator granularity.
        self.interpret = interpret
        # With a resilience config every source sits behind its own
        # SourceAdapter (deadline + retry + breaker); without one the
        # sources are used as given and mediation is byte-identical to
        # the pre-resilience pipeline.
        self.resilience = resilience
        if resilience is not None:
            self.sources = wrap_sources(sources, resilience)
        else:
            self.sources = dict(sources)
        self.specs = dict(specs)
        self.view_virtuals = dict(view_virtuals or {})
        # Hot-path memo of whole translations (repro.perf).  Safe by
        # construction — cache keys pin each specification's version
        # stamp — so it is on by default; pass None to disable or your
        # own TranslationCache to share one across mediators.
        if translation_cache is _DEFAULT_CACHE:
            translation_cache = TranslationCache()
        self.translation_cache = translation_cache
        unknown = set(self.specs) - set(self.sources)
        if unknown:
            raise TranslationError(
                f"specifications for unknown sources: {sorted(unknown)}"
            )
        for view in self.views.values():
            missing = view.sources() - set(self.specs)
            if missing:
                raise TranslationError(
                    f"view {view.name!r} uses sources without a mapping "
                    f"specification: {sorted(missing)}"
                )

    def with_resilience(self, resilience: ResilienceConfig | None) -> Mediator:
        """This mediator with a different resilience config (or none).

        Adapters never stack: the new mediator wraps the *underlying*
        sources, and shares views, specs, virtuals, and the translation
        cache with this one.
        """
        return Mediator(
            views=self.views,
            sources={
                name: getattr(source, "source", source)
                for name, source in self.sources.items()
            },
            specs=self.specs,
            view_virtuals=self.view_virtuals,
            translation_cache=self.translation_cache,
            resilience=resilience,
            interpret=self.interpret,
        )

    # -- query analysis --------------------------------------------------------

    def view_instances(self, query: Query) -> list[tuple[str, int | None]]:
        """The (view, index) instances a query ranges over."""
        instances: set[tuple[str, int | None]] = set()
        for constraint in query.constraints():
            refs = [constraint.lhs]
            if isinstance(constraint.rhs, AttrRef):
                refs.append(constraint.rhs)
            for ref in refs:
                view = ref.view
                if view is None:
                    if len(self.views) != 1:
                        raise EvaluationError(
                            f"unqualified reference {ref} is ambiguous with "
                            f"{len(self.views)} views"
                        )
                    view = next(iter(self.views))
                if view not in self.views:
                    raise EvaluationError(f"unknown view {view!r} in {ref}")
                instances.add((view, ref.index))
        if not instances:
            # A constant query still ranges over the single view, if any.
            if len(self.views) == 1:
                instances.add((next(iter(self.views)), None))
        return sorted(instances, key=lambda vi: (vi[0], vi[1] if vi[1] is not None else -1))

    # -- Eq. 1: direct evaluation ---------------------------------------------

    def answer_direct(self, query: Query) -> list[ResultRow]:
        """Ground truth: evaluate Q over materialized view extensions."""
        with obs.span("mediator.answer_direct"):
            query = normalize(query)
            instances = self.view_instances(query)
            extensions = {
                view: self.views[view].materialize(self.sources)
                for view in {v for v, _ in instances}
            }
            out: list[ResultRow] = []
            pools = [extensions[view] for view, _ in instances]
            for combo in product(*pools):
                env_rows = {
                    ((view,), index): row
                    for (view, index), row in zip(instances, combo)
                }
                env = RowEnv(env_rows, self.view_virtuals)
                if evaluate(query, env):
                    out.append(_canonical(instances, combo))
            if obs.recording():
                scanned = 1
                for pool in pools:
                    scanned *= len(pool)
                obs.count("mediator.direct_rows_scanned", scanned)
                obs.count("mediator.direct_rows_emitted", len(out))
            return out

    # -- Eq. 2: translated evaluation -------------------------------------------

    def _components_of(self, view_name: str) -> list[ViewDef]:
        view = self.views[view_name]
        if isinstance(view, UnionViewDef):
            return list(view.components)
        return [view]

    def answer_mediated(
        self, query: Query, *, strict: bool | None = None
    ) -> MediatedAnswer:
        """Translate per source, execute natively, convert, post-filter.

        Union views are processed one component choice at a time (Section
        2), unioning the per-choice results.  The residue filter is
        computed per choice: a conjunct may be exactly enforced by one
        component's source but not another's.

        Under a resilience config, source calls fan out concurrently and
        failures degrade to a **partial answer** (``complete=False``,
        per-source outcomes attached): a choice with a failed source
        contributes no rows — conservative, never wrong.  ``strict=True``
        (or ``resilience.strict``) raises
        :class:`~repro.core.errors.SourceUnavailableError` instead.
        """
        if strict is None:
            strict = self.resilience.strict if self.resilience is not None else False
        with obs.span("mediator.answer_mediated"):
            query = normalize(query)
            instances = self.view_instances(query)
            choice_lists = [self._components_of(view) for view, _ in instances]

            rows: list[ResultRow] = []
            plans: list[FilterPlan] = []
            outcomes: list[SourceOutcome] = []
            for choice in product(*choice_lists):
                obs.count("mediator.choices")
                components = dict(zip(instances, choice))
                involved = set()
                for component in choice:
                    involved |= component.sources()
                specs = {name: self.specs[name] for name in sorted(involved)}
                plan = build_filter(
                    query,
                    specs,
                    cache=self.translation_cache,
                    interpret=self.interpret,
                )
                plans.append(plan)
                choice_rows, choice_outcomes = self._run_choice(
                    query, plan, instances, components
                )
                rows.extend(choice_rows)
                outcomes.extend(choice_outcomes)
            if not plans:
                # Constant query over zero instances: nothing to execute.
                plans.append(
                    build_filter(
                        query,
                        self.specs,
                        cache=self.translation_cache,
                        interpret=self.interpret,
                    )
                )
                if evaluate(plans[0].filter, RowEnv({}, self.view_virtuals)):
                    rows.append(())
            complete = all(outcome.ok for outcome in outcomes)
            if not complete:
                failed = [o for o in outcomes if not o.ok]
                obs.count("mediator.partial_answers")
                if strict:
                    names = sorted({o.source for o in failed})
                    raise SourceUnavailableError(
                        f"strict mediation failed: source(s) {names} "
                        f"unavailable ({', '.join(o.status for o in failed)})",
                        outcomes=tuple(failed),
                    )
            obs.count("mediator.rows_emitted", len(rows))
            return MediatedAnswer(rows, plans, outcomes=outcomes, complete=complete)

    def _source_keys(
        self,
        source_name: str,
        instances: list[tuple[str, int | None]],
        components: Mapping[tuple[str, int | None], ViewDef],
    ) -> dict:
        """Environment keys a source's relation instances bind in Eq. 2."""
        keys = {}
        for view, index in instances:
            for base in components[(view, index)].bases:
                if base.source == source_name:
                    keys[((view, base.relation), index)] = base.relation
        return keys

    def _execute_resilient(
        self,
        plan: FilterPlan,
        instances: list[tuple[str, int | None]],
        components: Mapping[tuple[str, int | None], ViewDef],
    ) -> tuple[list[list[dict]], list[SourceOutcome]]:
        """Fan the choice's source calls out over a thread pool.

        Each call goes through its :class:`~repro.resilience.SourceAdapter`
        (deadline/retry/breaker); a failed call contributes an *empty*
        rowset, so the choice's cross product — and hence its answer
        contribution — is empty.  Each pool worker runs under an
        ``obs.bind`` handoff prepared here in job order, so its spans and
        counters (including :func:`~repro.resilience.record_outcome`)
        land deterministically in the calling thread's trace.
        """
        assert self.resilience is not None
        ordered = sorted(plan.mappings)
        jobs = []  # (position, source adapter, keys, translated query)
        per_source: list[list[dict]] = [[] for _ in ordered]
        for position, source_name in enumerate(ordered):
            keys = self._source_keys(source_name, instances, components)
            if not keys:
                per_source[position] = [{}]
            else:
                jobs.append(
                    (position, self.sources[source_name], keys, plan.mappings[source_name])
                )
        outcomes: list[SourceOutcome] = []
        workers = self.resilience.workers_for(len(jobs))
        with obs.span("mediator.fanout", sources=len(jobs), workers=workers):
            if workers > 1 and len(jobs) > 1:
                # Handoffs are created here, in sorted-job order, so the
                # fanout span's children are deterministic however the
                # pool schedules the workers.
                bound = [
                    (job, obs.bind("mediator.call", source=job[1].name))
                    for job in jobs
                ]

                def run(entry):
                    (_, adapter, keys, translated), handoff = entry
                    with handoff:
                        rows, outcome = adapter.call(keys, translated)
                        record_outcome(outcome)
                        return rows, outcome

                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(run, bound))
            else:
                results = []
                for _, adapter, keys, translated in jobs:
                    with obs.span("mediator.call", source=adapter.name):
                        rows, outcome = adapter.call(keys, translated)
                        record_outcome(outcome)
                    results.append((rows, outcome))
            for (position, adapter, _, _), (rows, outcome) in zip(jobs, results):
                outcomes.append(outcome)
                if rows is not None:
                    obs.count("mediator.source_rows", len(rows))
                    per_source[position] = rows
        return per_source, outcomes

    def _run_choice(
        self,
        query: Query,
        plan: FilterPlan,
        instances: list[tuple[str, int | None]],
        components: Mapping[tuple[str, int | None], ViewDef],
    ) -> tuple[list[ResultRow], list[SourceOutcome]]:
        """One Eq. 2 execution with a fixed view-component per instance."""
        # Each source evaluates its mapping over the relation instances it
        # contributes to the queried view instances.
        outcomes: list[SourceOutcome] = []
        if self.resilience is not None:
            per_source, outcomes = self._execute_resilient(plan, instances, components)
        else:
            per_source = []
            for source_name in sorted(plan.mappings):
                source = self.sources[source_name]
                keys = self._source_keys(source_name, instances, components)
                if not keys:
                    per_source.append([{}])
                    continue
                started = time.perf_counter()
                with obs.span("mediator.execute", source=source_name):
                    executed = source.execute(keys, plan.mappings[source_name])
                    obs.count("mediator.source_rows", len(executed))
                registry = obs.metrics_sink()
                if registry is not None:
                    # Plain (non-resilient) path: scorecards come from here;
                    # the resilient path records via record_outcome instead.
                    registry.record_source_call(
                        source_name,
                        time.perf_counter() - started,
                        rows=len(executed),
                    )
                per_source.append(executed)

        # Reassemble view tuples through the conversion functions and apply
        # the residue filter F.
        out: list[ResultRow] = []
        filtered = 0
        for parts in product(*per_source):
            merged: dict = {}
            for part in parts:
                merged.update(part)
            view_rows = []
            ok = True
            for view, index in instances:
                view_def = components[(view, index)]
                by_alias = {}
                for base in view_def.bases:
                    key = ((view, base.relation), index)
                    if key not in merged:
                        ok = False
                        break
                    by_alias[base.relation] = merged[key]
                if not ok:
                    break
                view_row = view_def.combine(by_alias)
                if view_row is None:
                    ok = False
                    break
                view_rows.append(view_row)
            if not ok:
                continue
            filtered += 1
            env = RowEnv(
                {
                    ((view,), index): row
                    for (view, index), row in zip(instances, view_rows)
                },
                self.view_virtuals,
            )
            if evaluate(plan.filter, env):
                out.append(_canonical(instances, view_rows))
        if obs.recording():
            # Post-filter selectivity: candidates that reached F vs survivors.
            obs.count("mediator.filter_candidates", filtered)
            obs.count("mediator.filter_survivors", len(out))
        return out, outcomes

    # -- batch translation -------------------------------------------------------

    def translate_many(
        self,
        queries: Sequence[Query | str],
        sources: Sequence[str] | None = None,
    ) -> list[dict[str, TranslationResult]]:
        """Translate a batch of queries for every (or the named) sources.

        The batch path shares everything shareable: each query is parsed,
        normalized, and fingerprinted once (not once per source), each
        source's compiled rule index is built once up front, and all
        translations go through this mediator's :class:`TranslationCache`
        — duplicate queries in the batch, and queries answered before,
        cost a cache lookup.

        Returns one ``{source name: TranslationResult}`` dict per query,
        in input order.
        """
        from repro.core.parser import parse_query

        if sources is None:
            selected = dict(self.specs)
        else:
            unknown = set(sources) - set(self.specs)
            if unknown:
                raise TranslationError(
                    f"translate_many: unknown sources {sorted(unknown)}"
                )
            selected = {name: self.specs[name] for name in sources}
        parsed = [
            parse_query(query) if isinstance(query, str) else query
            for query in queries
        ]
        return translate_batch(
            parsed, selected, cache=self.translation_cache, interpret=self.interpret
        )

    # -- verification ------------------------------------------------------------

    def check_equivalence(self, query: Query) -> bool:
        """Do Eq. 1 and Eq. 2 agree (as multisets) on this query?"""
        direct = Counter(self.answer_direct(query))
        mediated = Counter(self.answer_mediated(query).rows)
        return direct == mediated


def _canonical(instances, rows) -> ResultRow:
    """A hashable, order-stable rendering of one result combination."""
    return tuple(
        (view, index, tuple(sorted((k, _freeze(v)) for k, v in row.items())))
        for (view, index), row in zip(instances, rows)
    )


def _freeze(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(sorted(map(str, value)))
    return value
