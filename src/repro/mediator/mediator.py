"""The mediation pipeline: Eq. 1 (direct) vs Eq. 2 (translated) answering.

:class:`Mediator` owns integrated views, the sources behind them, and one
mapping specification per source.  It answers a user constraint query two
ways:

* :meth:`answer_direct` — materialize every referenced view instance and
  evaluate ``Q`` over their cross product: ``σ_Q(V1 × ... × Vh)``, the
  semantics the user sees (Eq. 1 after view expansion).
* :meth:`answer_mediated` — translate ``Q`` per source with Algorithm
  TDQM, let each source evaluate its mapping natively over its own
  relation instances, reassemble view tuples through the conversion
  functions, and post-filter with the residue ``F``:
  ``σ_F[σ_S1(Q)(R1) × ... × σ_Sn(Q)(Rn) × X]`` (Eq. 2).

Eq. 3 (``Q ≡ F ∧ S1(Q) ∧ ... ∧ Sn(Q)``) says the two answers must agree —
the end-to-end correctness check the integration tests and the mediator
bench run on every workload.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence
from itertools import product

from repro.core.ast import AttrRef, Query
from repro.core.errors import EvaluationError, TranslationError
from repro.core.filters import FilterPlan, build_filter
from repro.core.normalize import normalize
from repro.core.tdqm import TranslationResult
from repro.engine.eval import RowEnv, Virtual, evaluate
from repro.engine.source import Source
from repro.engine.views import UnionViewDef, ViewDef
from repro.obs import trace as obs
from repro.perf import TranslationCache, translate_batch
from repro.rules.spec import MappingSpecification

__all__ = ["Mediator", "MediatedAnswer"]

#: Sentinel: "construct a default TranslationCache" (pass None to disable).
_DEFAULT_CACHE = object()

#: One result: ((view, index) -> view tuple) frozen for comparison.
ResultRow = tuple


class MediatedAnswer:
    """The mediated result plus the plan(s) that produced it.

    For plain views there is exactly one plan; for *union* views (Section
    2) the query runs once per component choice and ``plans`` holds one
    :class:`~repro.core.filters.FilterPlan` per choice (the residue filter
    depends on which sources the choice involves).
    """

    def __init__(self, rows: list[ResultRow], plans: list[FilterPlan]):
        self.rows = rows
        self.plans = list(plans)

    @property
    def plan(self) -> FilterPlan:
        """The (first) plan — the only one for non-union mediators."""
        return self.plans[0]

    def __len__(self) -> int:
        return len(self.rows)


class Mediator:
    """A mediator integrating heterogeneous sources behind unified views."""

    def __init__(
        self,
        views: Mapping[str, ViewDef],
        sources: Mapping[str, Source],
        specs: Mapping[str, MappingSpecification],
        view_virtuals: Mapping[str, Virtual] | None = None,
        translation_cache: TranslationCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
    ):
        self.views = dict(views)
        self.sources = dict(sources)
        self.specs = dict(specs)
        self.view_virtuals = dict(view_virtuals or {})
        # Hot-path memo of whole translations (repro.perf).  Safe by
        # construction — cache keys pin each specification's version
        # stamp — so it is on by default; pass None to disable or your
        # own TranslationCache to share one across mediators.
        if translation_cache is _DEFAULT_CACHE:
            translation_cache = TranslationCache()
        self.translation_cache = translation_cache
        unknown = set(self.specs) - set(self.sources)
        if unknown:
            raise TranslationError(
                f"specifications for unknown sources: {sorted(unknown)}"
            )
        for view in self.views.values():
            missing = view.sources() - set(self.specs)
            if missing:
                raise TranslationError(
                    f"view {view.name!r} uses sources without a mapping "
                    f"specification: {sorted(missing)}"
                )

    # -- query analysis --------------------------------------------------------

    def view_instances(self, query: Query) -> list[tuple[str, int | None]]:
        """The (view, index) instances a query ranges over."""
        instances: set[tuple[str, int | None]] = set()
        for constraint in query.constraints():
            refs = [constraint.lhs]
            if isinstance(constraint.rhs, AttrRef):
                refs.append(constraint.rhs)
            for ref in refs:
                view = ref.view
                if view is None:
                    if len(self.views) != 1:
                        raise EvaluationError(
                            f"unqualified reference {ref} is ambiguous with "
                            f"{len(self.views)} views"
                        )
                    view = next(iter(self.views))
                if view not in self.views:
                    raise EvaluationError(f"unknown view {view!r} in {ref}")
                instances.add((view, ref.index))
        if not instances:
            # A constant query still ranges over the single view, if any.
            if len(self.views) == 1:
                instances.add((next(iter(self.views)), None))
        return sorted(instances, key=lambda vi: (vi[0], vi[1] if vi[1] is not None else -1))

    # -- Eq. 1: direct evaluation ---------------------------------------------

    def answer_direct(self, query: Query) -> list[ResultRow]:
        """Ground truth: evaluate Q over materialized view extensions."""
        with obs.span("mediator.answer_direct"):
            query = normalize(query)
            instances = self.view_instances(query)
            extensions = {
                view: self.views[view].materialize(self.sources)
                for view in {v for v, _ in instances}
            }
            out: list[ResultRow] = []
            pools = [extensions[view] for view, _ in instances]
            for combo in product(*pools):
                env_rows = {
                    ((view,), index): row
                    for (view, index), row in zip(instances, combo)
                }
                env = RowEnv(env_rows, self.view_virtuals)
                if evaluate(query, env):
                    out.append(_canonical(instances, combo))
            if obs.enabled():
                scanned = 1
                for pool in pools:
                    scanned *= len(pool)
                obs.count("mediator.direct_rows_scanned", scanned)
                obs.count("mediator.direct_rows_emitted", len(out))
            return out

    # -- Eq. 2: translated evaluation -------------------------------------------

    def _components_of(self, view_name: str) -> list[ViewDef]:
        view = self.views[view_name]
        if isinstance(view, UnionViewDef):
            return list(view.components)
        return [view]

    def answer_mediated(self, query: Query) -> MediatedAnswer:
        """Translate per source, execute natively, convert, post-filter.

        Union views are processed one component choice at a time (Section
        2), unioning the per-choice results.  The residue filter is
        computed per choice: a conjunct may be exactly enforced by one
        component's source but not another's.
        """
        with obs.span("mediator.answer_mediated"):
            query = normalize(query)
            instances = self.view_instances(query)
            choice_lists = [self._components_of(view) for view, _ in instances]

            rows: list[ResultRow] = []
            plans: list[FilterPlan] = []
            for choice in product(*choice_lists):
                obs.count("mediator.choices")
                components = dict(zip(instances, choice))
                involved = set()
                for component in choice:
                    involved |= component.sources()
                specs = {name: self.specs[name] for name in sorted(involved)}
                plan = build_filter(query, specs, cache=self.translation_cache)
                plans.append(plan)
                rows.extend(self._run_choice(query, plan, instances, components))
            if not plans:
                # Constant query over zero instances: nothing to execute.
                plans.append(build_filter(query, self.specs, cache=self.translation_cache))
                if evaluate(plans[0].filter, RowEnv({}, self.view_virtuals)):
                    rows.append(())
            obs.count("mediator.rows_emitted", len(rows))
            return MediatedAnswer(rows, plans)

    def _run_choice(
        self,
        query: Query,
        plan: FilterPlan,
        instances: list[tuple[str, int | None]],
        components: Mapping[tuple[str, int | None], ViewDef],
    ) -> list[ResultRow]:
        """One Eq. 2 execution with a fixed view-component per instance."""
        # Each source evaluates its mapping over the relation instances it
        # contributes to the queried view instances.
        per_source: list[list[dict]] = []
        for source_name in sorted(plan.mappings):
            source = self.sources[source_name]
            keys = {}
            for view, index in instances:
                for base in components[(view, index)].bases:
                    if base.source == source_name:
                        keys[((view, base.relation), index)] = base.relation
            if not keys:
                per_source.append([{}])
                continue
            with obs.span("mediator.execute", source=source_name):
                executed = source.execute(keys, plan.mappings[source_name])
                obs.count("mediator.source_rows", len(executed))
            per_source.append(executed)

        # Reassemble view tuples through the conversion functions and apply
        # the residue filter F.
        out: list[ResultRow] = []
        filtered = 0
        for parts in product(*per_source):
            merged: dict = {}
            for part in parts:
                merged.update(part)
            view_rows = []
            ok = True
            for view, index in instances:
                view_def = components[(view, index)]
                by_alias = {}
                for base in view_def.bases:
                    key = ((view, base.relation), index)
                    if key not in merged:
                        ok = False
                        break
                    by_alias[base.relation] = merged[key]
                if not ok:
                    break
                view_row = view_def.combine(by_alias)
                if view_row is None:
                    ok = False
                    break
                view_rows.append(view_row)
            if not ok:
                continue
            filtered += 1
            env = RowEnv(
                {
                    ((view,), index): row
                    for (view, index), row in zip(instances, view_rows)
                },
                self.view_virtuals,
            )
            if evaluate(plan.filter, env):
                out.append(_canonical(instances, view_rows))
        if obs.enabled():
            # Post-filter selectivity: candidates that reached F vs survivors.
            obs.count("mediator.filter_candidates", filtered)
            obs.count("mediator.filter_survivors", len(out))
        return out

    # -- batch translation -------------------------------------------------------

    def translate_many(
        self,
        queries: Sequence[Query | str],
        sources: Sequence[str] | None = None,
    ) -> list[dict[str, TranslationResult]]:
        """Translate a batch of queries for every (or the named) sources.

        The batch path shares everything shareable: each query is parsed,
        normalized, and fingerprinted once (not once per source), each
        source's compiled rule index is built once up front, and all
        translations go through this mediator's :class:`TranslationCache`
        — duplicate queries in the batch, and queries answered before,
        cost a cache lookup.

        Returns one ``{source name: TranslationResult}`` dict per query,
        in input order.
        """
        from repro.core.parser import parse_query

        if sources is None:
            selected = dict(self.specs)
        else:
            unknown = set(sources) - set(self.specs)
            if unknown:
                raise TranslationError(
                    f"translate_many: unknown sources {sorted(unknown)}"
                )
            selected = {name: self.specs[name] for name in sources}
        parsed = [
            parse_query(query) if isinstance(query, str) else query
            for query in queries
        ]
        return translate_batch(parsed, selected, cache=self.translation_cache)

    # -- verification ------------------------------------------------------------

    def check_equivalence(self, query: Query) -> bool:
        """Do Eq. 1 and Eq. 2 agree (as multisets) on this query?"""
        direct = Counter(self.answer_direct(query))
        mediated = Counter(self.answer_mediated(query).rows)
        return direct == mediated


def _canonical(instances, rows) -> ResultRow:
    """A hashable, order-stable rendering of one result combination."""
    return tuple(
        (view, index, tuple(sorted((k, _freeze(v)) for k, v in row.items())))
        for (view, index), row in zip(instances, rows)
    )


def _freeze(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(sorted(map(str, value)))
    return value
