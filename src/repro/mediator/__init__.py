"""Mediation pipeline: per-source translation, execution, and filtering."""

from repro.mediator.builtin import (
    bookstore_federation,
    bookstore_mediator,
    faculty_mediator,
    map_mediator,
    realty_mediator,
    synthetic_federation,
)
from repro.mediator.mediator import MediatedAnswer, Mediator

__all__ = [
    "Mediator",
    "MediatedAnswer",
    "bookstore_mediator",
    "bookstore_federation",
    "faculty_mediator",
    "map_mediator",
    "realty_mediator",
    "synthetic_federation",
]
