"""Ready-made mediators for the paper's three scenarios.

* :func:`bookstore_mediator` — Example 1 / Figure 2: the integrated
  ``book`` view over an Amazon-style or Clbooks-style catalog;
* :func:`faculty_mediator` — Example 3 / Figure 5: ``fac`` and ``pub``
  views integrating sources T1 and T2;
* :func:`map_mediator` — Example 8 / Figure 9: the mediator context F over
  the map source G.

Each factory wires the views' conversion functions (the conceptual
relations ``X`` of Section 2) to the :mod:`repro.conversions` package, so
the same human-maintained code serves both view definition and rule
emission — the symmetry Section 3 discusses.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.conversions import DEPT_CODES, name_to_ln_fn
from repro.conversions.codes import CATEGORY_TO_SUBJECT
from repro.core.errors import TranslationError
from repro.engine.sources_builtin import (
    DEFAULT_AUBIB,
    DEFAULT_BOOKS,
    DEFAULT_PAPERS,
    DEFAULT_POINTS,
    DEFAULT_PROF,
    MAP_MEDIATOR_VIRTUALS,
    make_amazon,
    make_clbooks,
    make_map_source,
    make_t1,
    make_t2,
)
from repro.engine.views import BaseRef, ViewDef
from repro.mediator.mediator import Mediator
from repro.rules.library import K1, K2, K_AMAZON, K_CLBOOKS, K_MAP
from repro.text import TextPattern, matches

__all__ = [
    "bookstore_mediator",
    "bookstore_federation",
    "faculty_mediator",
    "realty_mediator",
    "map_mediator",
    "synthetic_federation",
]

_SUBJECT_TO_CATEGORY = {subject: code for code, subject in CATEGORY_TO_SUBJECT.items()}
_CODE_TO_DEPT = {code: dept for dept, code in DEPT_CODES.items()}

BOOK_ATTRS = (
    "title", "ln", "fn", "pyear", "pmonth", "publisher", "id-no",
    "category", "subject",
)


def _book_row(by_alias: Mapping[str, Mapping]) -> dict:
    """NameLnFn + renames: one catalog tuple -> one book view tuple."""
    row = by_alias["catalog"]
    ln, fn = name_to_ln_fn(row["author"])
    return {
        "title": row["title"],
        "ln": ln,
        "fn": fn,
        "pyear": row["year"],
        "pmonth": row["month"],
        "publisher": row["publisher"],
        "id-no": row["isbn"],
        "category": _SUBJECT_TO_CATEGORY.get(row["subject"], "unknown"),
        "subject": row["subject"],
    }


def _book_virtuals() -> dict:
    """View-level search semantics for the book view.

    ``ti`` searches the title text; ``kwd`` searches title *or* subject —
    the semantics under which rule R8's disjunction is the minimal
    subsuming mapping.
    """

    def ti(row: Mapping, op: str, value: object) -> bool:
        if op == "=":
            return str(row["title"]).strip().lower() == str(value).strip().lower()
        return _match_text(row["title"], op, value)

    def kwd(row: Mapping, op: str, value: object) -> bool:
        return _match_text(row["title"], op, value) or _match_text(
            row["subject"], op, value
        )

    return {"ti": ti, "kwd": kwd}


def _match_text(text: object, op: str, value: object) -> bool:
    if op != "contains":
        raise TranslationError(f"text attributes support only contains, got {op!r}")
    if isinstance(value, TextPattern):
        return matches(value, str(text))
    return matches_word(str(text), str(value))


def matches_word(text: str, word: str) -> bool:
    from repro.text import tokenize

    return word.lower() in tokenize(text)


def bookstore_mediator(
    store: str = "amazon",
    rows: Iterable[Mapping] = DEFAULT_BOOKS,
    grammar=None,
) -> Mediator:
    """The Example 1 mediator over one bookstore (``amazon`` | ``clbooks``).

    ``grammar`` optionally restricts the native interface's query *form*
    (a :class:`~repro.engine.grammar.QueryGrammar`); the mediation
    pipeline then drives the store through a compensating wrapper.
    """
    if store == "amazon":
        source, spec = make_amazon(rows), K_AMAZON
    elif store == "clbooks":
        source, spec = make_clbooks(rows), K_CLBOOKS
    else:
        raise TranslationError(f"unknown bookstore {store!r}")
    if grammar is not None:
        source.grammar = grammar
    book = ViewDef(
        name="book",
        attributes=BOOK_ATTRS,
        bases=(BaseRef(source.name, "catalog"),),
        combine=_book_row,
    )
    return Mediator(
        views={"book": book},
        sources={source.name: source},
        specs={source.name: spec},
        view_virtuals=_book_virtuals(),
    )


#: Titles only Clbooks stocks, to make the federation's union visible.
CLBOOKS_ONLY_BOOKS = (
    {"title": "Compilers in Anger", "author": "Chang, Kevin", "year": 1997,
     "month": 5, "publisher": "mit", "isbn": "900000001X",
     "subject": "programming"},
    {"title": "Query Mapping for Fun", "author": "Clancy, Tom", "year": 1998,
     "month": 1, "publisher": "mit", "isbn": "900000002X",
     "subject": "databases"},
)


def bookstore_federation(
    amazon_rows: Iterable[Mapping] = DEFAULT_BOOKS,
    clbooks_rows: Iterable[Mapping] = tuple(DEFAULT_BOOKS) + CLBOOKS_ONLY_BOOKS,
) -> Mediator:
    """The intro's acses.com scenario: one ``book`` view over *both* stores.

    The view is a union of two SPJ components (Section 2); each component
    is processed separately with its own mapping specification and residue
    filter, and the results are unioned.  A book carried by both stores
    shows up once per store, as a shopping comparator would want.
    """
    amazon = make_amazon(amazon_rows)
    clbooks = make_clbooks(clbooks_rows)
    from repro.engine.views import UnionViewDef

    amazon_component = ViewDef(
        name="book@Amazon",
        attributes=BOOK_ATTRS,
        bases=(BaseRef(amazon.name, "catalog"),),
        combine=_book_row,
    )
    clbooks_component = ViewDef(
        name="book@Clbooks",
        attributes=BOOK_ATTRS,
        bases=(BaseRef(clbooks.name, "catalog"),),
        combine=_book_row,
    )
    book = UnionViewDef(
        name="book",
        components=(amazon_component, clbooks_component),
    )
    return Mediator(
        views={"book": book},
        sources={amazon.name: amazon, clbooks.name: clbooks},
        specs={amazon.name: K_AMAZON, clbooks.name: K_CLBOOKS},
        view_virtuals=_book_virtuals(),
    )


def faculty_mediator(
    papers: Iterable[Mapping] = DEFAULT_PAPERS,
    aubib: Iterable[Mapping] = DEFAULT_AUBIB,
    prof: Iterable[Mapping] = DEFAULT_PROF,
) -> Mediator:
    """The Example 3 mediator: fac(ln, fn, bib, dept) and pub(ti, ln, fn)."""
    t1 = make_t1(papers, aubib)
    t2 = make_t2(prof)

    def fac_row(by_alias: Mapping[str, Mapping]) -> dict | None:
        aubib_row = by_alias["aubib"]
        prof_row = by_alias["prof"]
        ln, fn = name_to_ln_fn(aubib_row["name"])
        if fn is None:
            return None
        if prof_row["ln"] != ln or prof_row["fn"] != fn:
            return None
        dept = _CODE_TO_DEPT.get(prof_row["dept"])
        if dept is None:
            return None
        return {"ln": ln, "fn": fn, "bib": aubib_row["bib"], "dept": dept}

    def pub_row(by_alias: Mapping[str, Mapping]) -> dict:
        paper_row = by_alias["paper"]
        ln, fn = name_to_ln_fn(paper_row["au"])
        return {"ti": paper_row["ti"], "ln": ln, "fn": fn or ""}

    fac = ViewDef(
        name="fac",
        attributes=("ln", "fn", "bib", "dept"),
        bases=(BaseRef("T1", "aubib"), BaseRef("T2", "prof")),
        combine=fac_row,
    )
    pub = ViewDef(
        name="pub",
        attributes=("ti", "ln", "fn"),
        bases=(BaseRef("T1", "paper"),),
        combine=pub_row,
    )

    def bib_virtual(row: Mapping, op: str, value: object) -> bool:
        return _match_text(row["bib"], op, value)

    return Mediator(
        views={"fac": fac, "pub": pub},
        sources={"T1": t1, "T2": t2},
        specs={"T1": K1, "T2": K2},
        view_virtuals={"bib": bib_virtual},
    )


def realty_mediator(rows=None) -> Mediator:
    """The realty scenario: inequality mapping with value conversions.

    The mediator's ``listing(id, city, price-usd, area-sqft,
    quality-rank)`` view sits over the metric/cent listings catalog;
    ``K_realty`` flips comparison operators where the conversion reverses
    order (rank ↔ score).  See :mod:`repro.rules.library_realty`.
    """
    from repro.rules.library_realty import (
        BEST_RANK_SCORE,
        DEFAULT_LISTINGS,
        K_REALTY,
        make_listings_source,
    )

    source = make_listings_source(rows if rows is not None else DEFAULT_LISTINGS)

    def listing_row(by_alias: Mapping[str, Mapping]) -> dict:
        row = by_alias["listings"]
        return {
            "id": row["id"],
            "city": row["city"],
            "price-usd": row["price_cents"] / 100,
            "area-sqft": round(row["area_m2"] / 0.092903, 2),
            "quality-rank": BEST_RANK_SCORE + 1 - int(row["score"]),
        }

    listing = ViewDef(
        name="listing",
        attributes=("id", "city", "price-usd", "area-sqft", "quality-rank"),
        bases=(BaseRef("listings", "listings"),),
        combine=listing_row,
    )
    virtuals = {
        "area-min-sqft": lambda row, op, v: op == "=" and float(row["area-sqft"]) >= float(v),
        "area-max-sqft": lambda row, op, v: op == "=" and float(row["area-sqft"]) <= float(v),
    }
    return Mediator(
        views={"listing": listing},
        sources={"listings": source},
        specs={"listings": K_REALTY},
        view_virtuals=virtuals,
    )


def synthetic_federation(
    n_sources: int = 3,
    rows_per_source: int = 6,
    *,
    resilience=None,
) -> Mediator:
    """An n-source federation for resilience tests and benchmarks.

    Source ``Si`` exposes one relation ``r`` with a single attribute
    ``a{i}`` (values ``0..rows_per_source-1``) behind view ``v{i}``; its
    specification maps ``a{i}`` through identically and exactly.  Each
    view deliberately uses a *distinct* attribute name: a bare pattern
    like ``cpat("a", ...)`` matches any view qualification, so shared
    names would cross-match between specifications and produce unsound
    plans.

    A query such as ``[v0.a0 = 2] and [v1.a1 = 3] and [v2.a2 = 4]``
    touches every source exactly once — the shape the fan-out and
    fault-injection scenarios need.

    ``resilience`` is an optional
    :class:`~repro.resilience.ResilienceConfig` passed to the mediator.
    """
    from repro.core.ast import C
    from repro.engine.capabilities import Capability
    from repro.engine.relation import Relation
    from repro.engine.source import Source
    from repro.rules.dsl import V, cpat, rule, value_is
    from repro.rules.spec import MappingSpecification

    if n_sources < 1:
        raise TranslationError(f"synthetic_federation needs >= 1 source, got {n_sources}")
    views: dict[str, ViewDef] = {}
    sources: dict[str, Source] = {}
    specs: dict[str, MappingSpecification] = {}
    for i in range(n_sources):
        attr = f"a{i}"
        source_name = f"S{i}"
        relation = Relation(
            "r", (attr,), [{attr: value} for value in range(rows_per_source)]
        )
        sources[source_name] = Source(
            source_name,
            {"r": relation},
            Capability.of(selections=[(attr, "=")]),
        )
        specs[source_name] = MappingSpecification(
            name=f"K_{source_name}",
            target=source_name,
            rules=(
                rule(
                    f"R_{attr}",
                    patterns=[cpat(attr, "=", V("X"))],
                    where=[value_is("X")],
                    emit=lambda b, attr=attr: C(attr, "=", b["X"]),
                    exact=True,
                    doc=f"{attr} passes through unchanged.",
                ),
            ),
            description=f"Synthetic identity mapping for source {source_name}.",
        )
        views[f"v{i}"] = ViewDef(
            name=f"v{i}",
            attributes=(attr,),
            bases=(BaseRef(source_name, "r"),),
            combine=lambda by_alias: dict(by_alias["r"]),
        )
    return Mediator(
        views=views,
        sources=sources,
        specs=specs,
        resilience=resilience,
    )


def map_mediator(rows: Iterable[Mapping] = DEFAULT_POINTS) -> Mediator:
    """The Example 8 mediator context F over the map source G."""
    source = make_map_source(rows)
    pt = ViewDef(
        name="pt",
        attributes=("id", "x", "y"),
        bases=(BaseRef("G", "points"),),
        combine=lambda by_alias: dict(by_alias["points"]),
    )
    return Mediator(
        views={"pt": pt},
        sources={"G": source},
        specs={"G": K_MAP},
        view_virtuals=dict(MAP_MEDIATOR_VIRTUALS),
    )
