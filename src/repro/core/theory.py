"""Constraint-level theory reasoning and mapping minimization.

Section 8 notes that *term minimization* [22] can post-process mappings
(while stressing that no minimization rescues DNF's inherent two-level
blow-up).  This module supplies that post-processing: a sound, partial
implication/satisfiability theory over the built-in operators, and a
query simplifier built on it.

The theory answers three questions about constraints **on the same
attribute** (everything else is "unknown", which the simplifier treats
conservatively):

* :func:`constraint_implies` — does ``c1`` entail ``c2``?
  (``[a = 5] ⟹ [a >= 3]``, ``[pdate during May/97] ⟹ [pdate during 97]``,
  ``[ti contains a (and) b] ⟹ [ti contains a]``, ...)
* :func:`conjunction_satisfiable` — can ``c1 ∧ c2 ∧ ...`` hold at all?
  (``[a = 1] ∧ [a = 4]`` cannot; numeric bounds intersect as intervals.)
* :func:`simplify_query` — drop entailed conjuncts, collapse
  unsatisfiable conjunctions to ``false``, and absorb redundant disjuncts
  (``A ∨ (A ∧ B) → A``).

Everything is *sound for simplification*: an "unknown" answer never
changes the query, and every rewrite preserves logical equivalence under
the operators' evaluation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import (
    FALSE,
    And,
    AttrRef,
    BoolConst,
    Constraint,
    Or,
    Query,
    conj,
    disj,
)
from repro.core.values import DatePeriod, Month, Year
from repro.text.patterns import AndPat, NearPat, PhrasePat, TextPattern, Word

__all__ = [
    "constraint_implies",
    "conjunction_satisfiable",
    "simplify_query",
    "query_implies",
]

_NUMERIC = (int, float)


# ---------------------------------------------------------------------------
# Intervals over numeric comparison constraints
# ---------------------------------------------------------------------------


@dataclass
class _Interval:
    """A (possibly open-ended, possibly open-bounded) numeric interval."""

    lo: float | None = None
    hi: float | None = None
    lo_open: bool = False
    hi_open: bool = False

    def intersect(self, other: "_Interval") -> "_Interval":
        lo, lo_open = self.lo, self.lo_open
        if other.lo is not None and (lo is None or other.lo > lo or (other.lo == lo and other.lo_open)):
            lo, lo_open = other.lo, other.lo_open
        hi, hi_open = self.hi, self.hi_open
        if other.hi is not None and (hi is None or other.hi < hi or (other.hi == hi and other.hi_open)):
            hi, hi_open = other.hi, other.hi_open
        return _Interval(lo, hi, lo_open, hi_open)

    @property
    def empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def contains_interval(self, other: "_Interval") -> bool:
        """Does every point of ``other`` lie inside ``self``?"""
        if self.lo is not None:
            if other.lo is None:
                return False
            if other.lo < self.lo:
                return False
            if other.lo == self.lo and self.lo_open and not other.lo_open:
                return False
        if self.hi is not None:
            if other.hi is None:
                return False
            if other.hi > self.hi:
                return False
            if other.hi == self.hi and self.hi_open and not other.hi_open:
                return False
        return True


def _interval_of(constraint: Constraint) -> _Interval | None:
    """The numeric interval a comparison constraint describes, if any."""
    value = constraint.rhs
    if not isinstance(value, _NUMERIC) or isinstance(value, bool):
        return None
    op = constraint.op
    if op == "=":
        return _Interval(value, value)
    if op == "<":
        return _Interval(None, value, hi_open=True)
    if op == "<=":
        return _Interval(None, value)
    if op == ">":
        return _Interval(value, None, lo_open=True)
    if op == ">=":
        return _Interval(value, None)
    return None


# ---------------------------------------------------------------------------
# Text-pattern entailment (word-occurrence model)
# ---------------------------------------------------------------------------


def _required_words(pattern: TextPattern) -> frozenset[str] | None:
    """Words guaranteed to occur in any matching text, or None if unclear.

    Sound for Word / Phrase / And / Near (all parts must occur); an Or
    guarantees nothing in particular, so it contributes None.
    """
    if isinstance(pattern, Word):
        return frozenset({pattern.text})
    if isinstance(pattern, PhrasePat):
        return frozenset(pattern.tokens)
    if isinstance(pattern, (AndPat, NearPat)):
        out: frozenset[str] = frozenset()
        for part in pattern.parts:
            required = _required_words(part)
            if required is None:
                return None
            out |= required
        return out
    return None


def _contains_implies(p1: object, p2: object) -> bool:
    """Does ``contains p1`` entail ``contains p2``?  (Word-set model.)

    Sound but partial: only the "p2 requires a subset of p1's guaranteed
    words, and p2 has no structure beyond word conjunction" case.
    """
    if not isinstance(p1, TextPattern) or not isinstance(p2, TextPattern):
        return False
    required_1 = _required_words(p1)
    if required_1 is None:
        return False
    if isinstance(p2, Word):
        return p2.text in required_1
    if isinstance(p2, AndPat) and all(isinstance(part, Word) for part in p2.parts):
        return all(part.text in required_1 for part in p2.parts)
    return False


# ---------------------------------------------------------------------------
# Date periods
# ---------------------------------------------------------------------------


def _period_implies(p1: object, p2: object) -> bool:
    """Is period p1 contained in period p2 (``during p1 ⟹ during p2``)?"""
    if isinstance(p1, Month) and isinstance(p2, Month):
        return p1 == p2
    if isinstance(p1, Month) and isinstance(p2, Year):
        return p1.year == p2.year
    if isinstance(p1, Year) and isinstance(p2, Year):
        return p1 == p2
    return False


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def constraint_implies(c1: Constraint, c2: Constraint) -> bool:
    """Sound, partial entailment test: every tuple satisfying c1 satisfies c2.

    Returns False when entailment does not hold *or is unknown*.  Only
    constraints on the same attribute reference are ever related.
    """
    if isinstance(c1.rhs, AttrRef) or isinstance(c2.rhs, AttrRef):
        return c1 == c2  # joins: only syntactic identity
    if c1.lhs != c2.lhs:
        return False
    if c1 == c2:
        return True

    # Numeric comparisons via interval containment.
    i1, i2 = _interval_of(c1), _interval_of(c2)
    if i1 is not None and i2 is not None:
        return i2.contains_interval(i1)

    # Equality entails membership / inequality facts.
    if c1.op == "=":
        if c2.op == "in" and isinstance(c2.rhs, tuple):
            return any(_loose_eq(c1.rhs, item) for item in c2.rhs)
        if c2.op == "!=":
            return _comparable(c1.rhs, c2.rhs) and not _loose_eq(c1.rhs, c2.rhs)
        if c2.op == "starts" and isinstance(c1.rhs, str) and isinstance(c2.rhs, str):
            return c1.rhs.strip().lower().startswith(c2.rhs.strip().lower())
    if c1.op == "in" and c2.op == "in":
        if isinstance(c1.rhs, tuple) and isinstance(c2.rhs, tuple):
            return all(
                any(_loose_eq(item, other) for other in c2.rhs) for item in c1.rhs
            )

    # Prefixes: a longer prefix entails a shorter one.
    if c1.op == "starts" and c2.op == "starts":
        if isinstance(c1.rhs, str) and isinstance(c2.rhs, str):
            return c1.rhs.strip().lower().startswith(c2.rhs.strip().lower())

    # Date periods: a month entails its year.
    if c1.op == "during" and c2.op == "during":
        return _period_implies(c1.rhs, c2.rhs)

    # Text containment: more required words entail fewer.
    if c1.op == "contains" and c2.op == "contains":
        return _contains_implies(c1.rhs, c2.rhs)

    return False


def _loose_eq(a: object, b: object) -> bool:
    if isinstance(a, str) and isinstance(b, str):
        return a.strip().lower() == b.strip().lower()
    return a == b


def _comparable(a: object, b: object) -> bool:
    return isinstance(a, type(b)) or isinstance(b, type(a)) or (
        isinstance(a, _NUMERIC) and isinstance(b, _NUMERIC)
    )


def conjunction_satisfiable(constraints: list[Constraint]) -> bool:
    """Can all constraints hold together?  False = provably not.

    Sound and partial: True means "no contradiction found".  Detected
    contradictions: conflicting equalities, empty numeric intervals,
    equality vs exclusion (``=`` / ``!=`` / ``in``), and disjoint
    ``during`` periods — each per attribute.
    """
    by_attr: dict = {}
    for constraint in constraints:
        if isinstance(constraint.rhs, AttrRef):
            continue
        by_attr.setdefault((constraint.lhs.path, constraint.lhs.index), []).append(
            constraint
        )

    for group in by_attr.values():
        interval = _Interval()
        equalities: list[object] = []
        exclusions: list[object] = []
        member_sets: list[tuple] = []
        periods: list[DatePeriod] = []
        for constraint in group:
            described = _interval_of(constraint)
            if described is not None:
                interval = interval.intersect(described)
            if constraint.op == "=" and not isinstance(constraint.rhs, _NUMERIC):
                equalities.append(constraint.rhs)
            if constraint.op == "!=":
                exclusions.append(constraint.rhs)
            if constraint.op == "in" and isinstance(constraint.rhs, tuple):
                member_sets.append(constraint.rhs)
            if constraint.op == "during" and isinstance(constraint.rhs, DatePeriod):
                periods.append(constraint.rhs)

        if interval.empty:
            return False
        for i, left in enumerate(equalities):
            for right in equalities[i + 1 :]:
                if _comparable(left, right) and not _loose_eq(left, right):
                    return False
        for value in equalities:
            for excluded in exclusions:
                if _loose_eq(value, excluded):
                    return False
            for members in member_sets:
                if not any(_loose_eq(value, item) for item in members):
                    return False
        for i, p1 in enumerate(periods):
            for p2 in periods[i + 1 :]:
                if not (_period_implies(p1, p2) or _period_implies(p2, p1)):
                    return False
    return True


def simplify_query(query: Query, absorb: bool = True) -> Query:
    """Equivalence-preserving minimization of a query.

    * conjunctions: drop conjunct leaves entailed by a sibling leaf;
      collapse to ``false`` when the leaves are jointly unsatisfiable;
    * disjunctions (``absorb=True``): drop a disjunct entailed by a
      sibling (absorption ``A ∨ (A ∧ B) → A``), judged by
      :func:`query_implies`.

    This is the [22]-style post-pass Section 8 alludes to.  Note the
    paper's point stands: minimization cannot make a DNF compact when its
    2^n terms are pairwise non-redundant.
    """
    if isinstance(query, (BoolConst, Constraint)):
        return query
    if isinstance(query, And):
        children = [simplify_query(child, absorb) for child in query.children]
        leaves = [child for child in children if isinstance(child, Constraint)]
        if not conjunction_satisfiable(leaves):
            return FALSE
        dropped: set[int] = set()
        for i, leaf in enumerate(leaves):
            for j, other in enumerate(leaves):
                if i == j or other == leaf or j in dropped:
                    continue
                if constraint_implies(other, leaf):
                    if constraint_implies(leaf, other) and i < j:
                        continue  # mutually entailing: keep the earlier
                    dropped.add(i)
                    break
        surviving = set(i for i in range(len(leaves)) if i not in dropped)
        out = []
        leaf_index = 0
        for child in children:
            if isinstance(child, Constraint):
                if leaf_index in surviving:
                    out.append(child)
                leaf_index += 1
            else:
                out.append(child)
        return conj(out)
    if isinstance(query, Or):
        children = [simplify_query(child, absorb) for child in query.children]
        if not absorb or len(children) > 12:
            return disj(children)
        kept = []
        for i, child in enumerate(children):
            absorbed = False
            for j, other in enumerate(children):
                if i == j:
                    continue
                if child == other and j < i:
                    absorbed = True
                    break
                if child != other and query_implies(child, other):
                    absorbed = True
                    break
            if not absorbed:
                kept.append(child)
        return disj(kept)
    raise TypeError(f"unknown query node: {query!r}")


def query_implies(narrow: Query, broad: Query, limit: int = 14) -> bool:
    """Theory-aware implication: ``narrow ⟹ broad``.

    Enumerates truth assignments over the union of atoms, restricted to
    assignments consistent with the pairwise theory (entailments and
    contradictions from :func:`constraint_implies` /
    :func:`conjunction_satisfiable`).  Sound and partial — a ``False``
    means "not proven".  Refuses queries with more than ``limit`` atoms.
    """
    from itertools import product

    from repro.core.subsume import evaluate_assignment

    atoms = sorted(narrow.constraints() | broad.constraints(), key=str)
    if len(atoms) > limit:
        return False

    entails = {
        (a, b)
        for a in atoms
        for b in atoms
        if a != b and constraint_implies(a, b)
    }
    conflicts = {
        frozenset((a, b))
        for i, a in enumerate(atoms)
        for b in atoms[i + 1 :]
        if not conjunction_satisfiable([a, b])
    }

    for bits in product((False, True), repeat=len(atoms)):
        assignment = dict(zip(atoms, bits))
        if any(assignment[a] and not assignment[b] for a, b in entails):
            continue
        if any(
            all(assignment[atom] for atom in pair) for pair in conflicts
        ):
            continue
        if evaluate_assignment(narrow, assignment) and not evaluate_assignment(
            broad, assignment
        ):
            return False
    return True
