"""Algorithm DNF — the DNF-based baseline mapper (Figure 6, Section 5).

Convert the query to disjunctive normal form (disjuncts are *always*
separable, Example 5 / reference [15]), map every disjunct with Algorithm
SCM, and disjoin the results.  Optimal but blind: the conversion is global
and exponential, the result is not compact, and repeated constraints are
re-translated once per disjunct — exactly the costs Algorithm TDQM avoids.

:func:`dnf_map_translate` reports work counters (number of SCM calls and
total constraint slots processed) for the Section 5/8 comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import FALSE, TRUE, Query, disj
from repro.core.dnf import dnf_terms
from repro.core.matching import Matcher
from repro.core.normalize import normalize
from repro.core.scm import scm_translate
from repro.obs import trace as obs
from repro.rules.spec import MappingSpecification

__all__ = ["DNFMapResult", "dnf_map", "dnf_map_translate"]


@dataclass(frozen=True)
class DNFMapResult:
    """Outcome of Algorithm DNF plus work accounting."""

    mapping: Query
    exact: bool
    disjunct_count: int
    scm_calls: int
    constraint_slots: int  # total constraints across all disjuncts (with repeats)


def dnf_map_translate(
    query: Query,
    spec: MappingSpecification | Matcher,
    *,
    cache=None,
    interpret: bool = False,
) -> DNFMapResult:
    """Run Algorithm DNF, returning the mapping and work counters.

    ``cache`` (a :class:`repro.perf.TranslationCache`) memoizes whole
    results exactly as for :func:`repro.core.tdqm.tdqm_translate` —
    consulted only when ``spec`` is a :class:`MappingSpecification`.
    ``interpret=True`` forces the interpreted matcher walk and bypasses
    the cache (see :mod:`repro.perf.compile`).
    """
    if cache is not None and not interpret and isinstance(spec, MappingSpecification):
        return cache.dnf(query, spec)
    query = normalize(query)
    if isinstance(spec, MappingSpecification):
        matcher = spec.matcher(interpret=interpret)
    else:
        matcher = spec
    # Prematch once over the full constraint set so per-disjunct matching
    # is a filter, as the Section 7.1.3 discussion allows for SCM too.
    matcher.potential(query.constraints())

    terms = dnf_terms(query)
    if not terms:
        return DNFMapResult(FALSE, exact=True, disjunct_count=0, scm_calls=0, constraint_slots=0)

    obs.count("dnf.terms", len(terms))
    mappings = []
    exact = True
    slots = 0
    for term in terms:
        result = scm_translate(term if term else TRUE, matcher)
        mappings.append(result.mapping)
        exact = exact and result.exact
        slots += len(term)
    return DNFMapResult(
        mapping=disj(mappings),
        exact=exact,
        disjunct_count=len(terms),
        scm_calls=len(terms),
        constraint_slots=slots,
    )


def dnf_map(
    query: Query, spec: MappingSpecification | Matcher, *, interpret: bool = False
) -> Query:
    """``DNF(Q, K)``: minimal subsuming mapping via the DNF route."""
    return dnf_map_translate(query, spec, interpret=interpret).mapping
