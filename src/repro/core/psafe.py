"""Algorithm PSafe — partitioning conjuncts into safe, minimal blocks
(Figure 11, Section 7.2).

Given a conjunction ``Q̂ = Č1 ∧ ... ∧ Čn``, find a partition of the
conjuncts such that the blocks can be translated independently
(``S(Q̂) = S(∧B1) ... S(∧Bm)``, Theorem 6) and no block can be split
further safely.

Step 1 walks every disjunct of ``D(Q̂)`` (built from the conjuncts'
*essential* DNF — Lemma 3 proves this equivalent to full DNF), finds the
cross-matchings, and enumerates the candidate blocks that *minimally
cover* each one.  Step 2 selects a minimal family of candidate blocks
covering all cross-matchings, merges overlapping chosen blocks, and gives
every untouched conjunct its own singleton block.

A cross-matching occurring in different disjunct terms counts as a
distinct covering obligation (Example 14 treats ``m1``/``m2`` this way) —
that distinction is what forces the merge in Example 13's ``Q̂_b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product

from repro.core.ast import Constraint, Query
from repro.core.ednf import Term, ednf
from repro.core.errors import TranslationError
from repro.core.matching import Matcher
from repro.obs import trace as obs

__all__ = ["CrossMatching", "PSafeResult", "psafe", "psafe_partition"]

#: Above this many candidate blocks, step 2 switches from exact
#: minimum-cover search to a deterministic greedy + irredundancy prune.
_EXACT_COVER_LIMIT = 14


@dataclass(frozen=True)
class CrossMatching:
    """One covering obligation: a cross-matching inside one disjunct term.

    ``term_id`` identifies the disjunct of ``D(Q̂)`` it was found in;
    ``candidates`` are the conjunct-index blocks that minimally cover it.
    """

    term_id: int
    constraints: frozenset[Constraint]
    candidates: tuple[frozenset[int], ...]


@dataclass(frozen=True)
class PSafeResult:
    """Partition plus the evidence it was derived from."""

    blocks: tuple[tuple[int, ...], ...]
    cross_matchings: tuple[CrossMatching, ...]
    chosen_blocks: tuple[frozenset[int], ...]

    @property
    def is_fully_separable(self) -> bool:
        """True when every conjunct landed in its own block (safe Q̂)."""
        return all(len(block) == 1 for block in self.blocks)


def psafe(
    conjuncts: list[Query], matcher: Matcher, use_ednf: bool = True
) -> PSafeResult:
    """Partition the conjuncts of ``∧(conjuncts)`` safely and minimally.

    ``use_ednf=False`` switches to the brute-force full-DNF variant of
    Section 7.1.3 — same partition by Lemma 3, exponentially more terms to
    examine.  It exists for the ablation bench; leave it on.
    """
    n = len(conjuncts)
    if n == 0:
        raise TranslationError("psafe needs at least one conjunct")
    if not obs.enabled():
        return _psafe(conjuncts, matcher, use_ednf, n)
    with obs.span("psafe", conjuncts=n):
        obs.count("psafe.calls")
        result = _psafe(conjuncts, matcher, use_ednf, n)
        obs.count("psafe.cross_matchings", len(result.cross_matchings))
        obs.count("psafe.blocks", len(result.blocks))
        if result.chosen_blocks:
            obs.gauge_max(
                "psafe.cover_size_max", max(len(b) for b in result.chosen_blocks)
            )
        return result


def _psafe(
    conjuncts: list[Query], matcher: Matcher, use_ednf: bool, n: int
) -> PSafeResult:
    # Seed M_p with the whole conjunction's constraints before computing
    # any per-conjunct EDNF — a conjunct's essential constraints are the
    # ones participating in matchings that may reach *outside* it.
    universe: set = set()
    for child in conjuncts:
        universe |= child.constraints()
    matcher.potential(universe)
    if use_ednf:
        essentials = [ednf(child, matcher).essential for child in conjuncts]
    else:
        from repro.core.dnf import dnf_terms

        essentials = [dnf_terms(child) for child in conjuncts]
    obligations = _find_cross_matchings(essentials, matcher)
    chosen = _choose_blocks(obligations)
    blocks = _assemble_partition(chosen, n)
    return PSafeResult(
        blocks=blocks,
        cross_matchings=tuple(obligations),
        chosen_blocks=tuple(chosen),
    )


def psafe_partition(conjuncts: list[Query], matcher: Matcher) -> list[list[int]]:
    """Just the partition, as lists of conjunct indices."""
    return [list(block) for block in psafe(conjuncts, matcher).blocks]


# ---------------------------------------------------------------------------
# Step 1: cross-matchings and their candidate blocks
# ---------------------------------------------------------------------------


def _find_cross_matchings(
    essentials: list[list[Term]], matcher: Matcher
) -> list[CrossMatching]:
    obligations: list[CrossMatching] = []
    term_id = 0
    for combo in product(*essentials):
        ingredients = list(combo)
        union = Term().union(*ingredients)
        if union:
            cross = _delta(union, ingredients, matcher)
        else:
            cross = []
        for m in cross:
            candidates = _minimal_covers(m, ingredients)
            if not candidates:
                raise TranslationError(
                    f"cross-matching {sorted(map(str, m))} has no covering "
                    f"block; the EDNF terms are inconsistent"
                )
            obligations.append(
                CrossMatching(
                    term_id=term_id,
                    constraints=m,
                    candidates=tuple(candidates),
                )
            )
        term_id += 1
    return obligations


def _delta(
    union: frozenset[Constraint],
    ingredients: list[Term],
    matcher: Matcher,
) -> list[frozenset[Constraint]]:
    """δ = M(D̂, K) − ∪ M(Î_i, K): matchings crossing ingredient borders."""
    whole = {m.constraints for m in matcher.matchings(union)}
    inside: set[frozenset[Constraint]] = set()
    for ingredient in ingredients:
        if ingredient:
            inside.update(
                m.constraints for m in matcher.matchings(ingredient)
            )
    cross = whole - inside
    return sorted(cross, key=lambda s: (len(s), str(sorted(map(str, s)))))


def _minimal_covers(
    m: frozenset[Constraint], ingredients: list[Term]
) -> list[frozenset[int]]:
    """All minimal conjunct-index sets whose ingredients cover ``m``."""
    relevant = [i for i, ing in enumerate(ingredients) if ing & m]
    covers: list[frozenset[int]] = []
    for size in range(1, len(relevant) + 1):
        for subset in combinations(relevant, size):
            covered = Term().union(*(ingredients[i] for i in subset))
            if not m <= covered:
                continue
            block = frozenset(subset)
            if any(existing < block for existing in covers):
                continue  # not minimal: a smaller cover is inside it
            covers.append(block)
    return covers


# ---------------------------------------------------------------------------
# Step 2: choose a minimal family of blocks covering every obligation
# ---------------------------------------------------------------------------


def _choose_blocks(obligations: list[CrossMatching]) -> list[frozenset[int]]:
    if not obligations:
        return []
    universe: list[frozenset[int]] = []
    for obligation in obligations:
        for block in obligation.candidates:
            if block not in universe:
                universe.append(block)
    universe.sort(key=lambda b: (len(b), sorted(b)))

    def covers_all(family: tuple[frozenset[int], ...]) -> bool:
        chosen = set(family)
        return all(
            any(candidate in chosen for candidate in obligation.candidates)
            for obligation in obligations
        )

    if len(universe) <= _EXACT_COVER_LIMIT:
        for size in range(1, len(universe) + 1):
            for family in combinations(universe, size):
                if covers_all(family):
                    return list(family)
        raise TranslationError("no block family covers all cross-matchings")

    # Greedy fallback for very large candidate sets, then prune to an
    # irredundant (minimal) cover.
    remaining = list(obligations)
    chosen: list[frozenset[int]] = []
    while remaining:
        best = max(
            universe,
            key=lambda b: (
                sum(1 for o in remaining if b in o.candidates),
                -len(b),
                [-i for i in sorted(b)],
            ),
        )
        gained = [o for o in remaining if best in o.candidates]
        if not gained:
            raise TranslationError("no block family covers all cross-matchings")
        chosen.append(best)
        remaining = [o for o in remaining if best not in o.candidates]
    for block in list(chosen):
        trimmed = [b for b in chosen if b != block]
        if trimmed and covers_all(tuple(trimmed)):
            chosen = trimmed
    return chosen


# ---------------------------------------------------------------------------
# Assembly: merge overlaps, add singletons
# ---------------------------------------------------------------------------


def _assemble_partition(
    chosen: list[frozenset[int]], n: int
) -> tuple[tuple[int, ...], ...]:
    merged: list[set[int]] = []
    for block in chosen:
        group = set(block)
        absorbed = [g for g in merged if g & group]
        for g in absorbed:
            group |= g
            merged.remove(g)
        merged.append(group)
    covered = set().union(*merged) if merged else set()
    for i in range(n):
        if i not in covered:
            merged.append({i})
    blocks = [tuple(sorted(group)) for group in merged]
    blocks.sort(key=lambda block: block[0])
    return tuple(blocks)
