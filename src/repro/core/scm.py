"""Algorithm SCM — Simple-Conjunction Mapping (Figure 4).

Given a simple conjunction Q̂ and a mapping specification K:

1. find all matchings ``M(Q̂, K)`` of any rule in K;
2. suppress submatchings (a matching that is a proper subset of another is
   redundant — its emission is implied, Lemma 1);
3. output the conjunction of the remaining matchings' emissions.

By Theorem 1 the output is the minimal subsuming mapping ``S(Q̂)`` whenever
K is sound and complete.  Constraints participating in no matching
contribute ``True`` (no constraint at the target).

:func:`scm_translate` additionally reports the kept matchings and an
*exactness* verdict used by the filter builder: the translation is exact
(logically equivalent, not just subsuming) when the exact kept matchings
alone cover every constraint of Q̂.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import BoolConst, Constraint, Query, conj
from repro.core.dnf import is_simple_conjunction
from repro.core.errors import TranslationError
from repro.core.matching import Matcher, Matching
from repro.obs import trace as obs
from repro.rules.spec import MappingSpecification

__all__ = ["SCMResult", "scm", "scm_translate", "suppress_submatchings"]


@dataclass(frozen=True)
class SCMResult:
    """Outcome of one SCM run."""

    mapping: Query
    all_matchings: tuple[Matching, ...]
    kept_matchings: tuple[Matching, ...]
    exact: bool


def suppress_submatchings(matchings: list[Matching]) -> list[Matching]:
    """Step 2 of Algorithm SCM: drop matchings proper-subset of another.

    Equal constraint sets produced by different rules (or bindings) are all
    kept — for sound rules their emissions are equivalent, and conjoining
    them is harmless.
    """
    kept: list[Matching] = []
    for candidate in matchings:
        if any(
            candidate.constraints < other.constraints
            for other in matchings
        ):
            continue
        kept.append(candidate)
    return kept


def scm_translate(
    query: Query | frozenset[Constraint],
    spec: MappingSpecification | Matcher,
    *,
    interpret: bool = False,
) -> SCMResult:
    """Run Algorithm SCM, returning the mapping plus its trace.

    ``interpret=True`` forces the interpreted matcher walk when ``spec``
    is a specification (a readymade :class:`Matcher` carries its own
    mode; see :mod:`repro.perf.compile`).
    """
    if not obs.enabled():
        return _scm_translate(query, spec, interpret)
    with obs.span("scm"):
        return _scm_translate(query, spec, interpret)


def _scm_translate(
    query: Query | frozenset[Constraint],
    spec: MappingSpecification | Matcher,
    interpret: bool = False,
) -> SCMResult:
    if isinstance(query, frozenset):
        constraints = query
        order = {c: i for i, c in enumerate(sorted(constraints, key=str))}
    else:
        if not is_simple_conjunction(query):
            raise TranslationError(
                f"SCM requires a simple conjunction, got: {query}"
            )
        if isinstance(query, BoolConst):
            return SCMResult(query, (), (), exact=True)
        constraints = query.constraints()
        order = {}
        for i, c in enumerate(query.iter_constraints()):
            order.setdefault(c, i)

    if isinstance(spec, MappingSpecification):
        matcher = spec.matcher(interpret=interpret)
    else:
        matcher = spec
    all_matchings = matcher.matchings(constraints)
    kept = suppress_submatchings(all_matchings)
    if obs.enabled():
        obs.count("scm.calls")
        obs.count("scm.matchings", len(all_matchings))
        obs.count("scm.matchings_conjoined", len(kept))
        obs.count("scm.submatchings_suppressed", len(all_matchings) - len(kept))
    # Emit in query order (the paper's figures list emissions this way).
    kept.sort(key=lambda m: min(order[c] for c in m.constraints))
    mapping = conj(matching.emission for matching in kept)

    exactly_covered: set[Constraint] = set()
    for matching in kept:
        if matching.exact:
            exactly_covered |= matching.constraints
    exact = constraints <= exactly_covered

    return SCMResult(
        mapping=mapping,
        all_matchings=tuple(all_matchings),
        kept_matchings=tuple(kept),
        exact=exact,
    )


def scm(
    query: Query | frozenset[Constraint],
    spec: MappingSpecification | Matcher,
    *,
    interpret: bool = False,
) -> Query:
    """``SCM(Q̂, K)``: the minimal subsuming mapping of a simple conjunction."""
    return scm_translate(query, spec, interpret=interpret).mapping
