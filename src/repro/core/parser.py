"""Textual query syntax.

Queries are written very close to the paper's notation::

    [ln = "Clancy"] and [fn = "Tom"]
    ([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]
    [fac.bib contains data (near) mining] and [fac.dept = "cs"]
    [fac[1].ln = fac[2].ln]
    [pdate during May/97]
    [X_range = (10:30)] and [C_ll = (10, 20)]

Grammar::

    query      := or_expr
    or_expr    := and_expr ( "or" and_expr )*
    and_expr   := primary ( "and" primary )*
    primary    := "(" query ")" | "true" | "false" | constraint
    constraint := "[" attrref op rhs "]"

The right-hand side is parsed according to the operator:

* ``contains`` — a text pattern (see :mod:`repro.text.patterns`);
* ``during``   — a date period (``May/97`` or ``1997``);
* ``in``       — a parenthesized comma list of scalars;
* comparisons  — a quoted string, number, ``(lo:hi)`` range, ``(x, y)``
  point, or an attribute reference.  A *bare* single identifier is read as
  a string value; attribute references on the right must be qualified
  (``pub.ln``) or indexed (``fac[2].ln``), which is how the paper always
  writes joins.
"""

from __future__ import annotations

import re

from repro.core.ast import FALSE, TRUE, Constraint, Query, attr, conj, disj
from repro.core.errors import ParseError
from repro.core.values import MONTH_NAMES, Month, Point, Range, Year
from repro.obs import trace as obs

__all__ = ["parse_query", "parse_rhs", "parse_period"]

_ATTR_RE = re.compile(r"[A-Za-z_][\w-]*(?:\[\d+\])?(?:\.[A-Za-z_][\w-]*)*")
_WORD_OPS = ("contains", "starts", "during", "in")
_SYMBOL_OPS = ("<=", ">=", "!=", "=", "<", ">")
_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")


def parse_query(text: str) -> Query:
    """Parse the paper-style textual notation into a query tree."""
    with obs.span("parse"):
        parser = _QueryParser(text)
        query = parser.or_expr()
        parser.skip_ws()
        if parser.pos != len(text):
            raise ParseError("trailing input after query", text, parser.pos)
        if obs.enabled():
            obs.gauge("parse.nodes", query.node_count())
        return query


class _QueryParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low-level helpers ---------------------------------------------------

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.pos)

    def keyword(self, word: str) -> bool:
        """Consume ``word`` if it appears next as a whole word."""
        self.skip_ws()
        end = self.pos + len(word)
        if self.text[self.pos : end].lower() != word:
            return False
        if end < len(self.text) and (self.text[end].isalnum() or self.text[end] == "_"):
            return False
        self.pos = end
        return True

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    # -- grammar ---------------------------------------------------------------

    def or_expr(self) -> Query:
        parts = [self.and_expr()]
        while self.keyword("or"):
            parts.append(self.and_expr())
        return disj(parts) if len(parts) > 1 else parts[0]

    def and_expr(self) -> Query:
        parts = [self.primary()]
        while self.keyword("and"):
            parts.append(self.primary())
        return conj(parts) if len(parts) > 1 else parts[0]

    def primary(self) -> Query:
        self.skip_ws()
        if self.pos >= len(self.text):
            raise self.error("unexpected end of query")
        if self.keyword("not"):
            from repro.core.ast import neg

            return neg(self.primary())
        char = self.text[self.pos]
        if char == "(":
            self.pos += 1
            inner = self.or_expr()
            self.expect(")")
            return inner
        if char == "[":
            return self.constraint()
        if self.keyword("true"):
            return TRUE
        if self.keyword("false"):
            return FALSE
        raise self.error("expected '(', '[', 'true', or 'false'")

    def constraint(self) -> Constraint:
        self.expect("[")
        self.skip_ws()
        match = _ATTR_RE.match(self.text, self.pos)
        if match is None:
            raise self.error("expected attribute reference")
        lhs = attr(match.group(0))
        self.pos = match.end()
        op = self._operator()
        close = self._find_constraint_close()
        raw = self.text[self.pos : close].strip()
        if not raw:
            raise self.error("missing right-hand side in constraint")
        rhs = parse_rhs(op, raw)
        self.pos = close + 1
        return Constraint(lhs, op, rhs)

    def _find_constraint_close(self) -> int:
        """Index of the ``]`` closing the current constraint.

        Skips over nested ``[index]`` brackets (``fac[2].ln``) and quoted
        strings so inner brackets never close the constraint early.
        """
        depth = 1
        i = self.pos
        in_string = False
        while i < len(self.text):
            char = self.text[i]
            if in_string:
                if char == '"':
                    in_string = False
            elif char == '"':
                in_string = True
            elif char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        raise self.error("unterminated constraint (missing ']')")

    def _operator(self) -> str:
        self.skip_ws()
        for word in _WORD_OPS:
            if self.keyword(word):
                return word
        for symbol in _SYMBOL_OPS:
            if self.text.startswith(symbol, self.pos):
                self.pos += len(symbol)
                return symbol
        raise self.error("expected an operator")


def parse_rhs(op: str, raw: str) -> object:
    """Parse a constraint right-hand side according to its operator."""
    if op == "contains":
        from repro.text import parse_pattern

        if raw.startswith('"') and raw.endswith('"') and raw.count('"') == 2:
            raw = raw[1:-1]
        return parse_pattern(raw)
    if op == "during":
        return parse_period(raw)
    if op == "in":
        return _parse_collection(raw)
    return _parse_scalar(raw)


def parse_period(raw: str) -> Year | Month:
    """Parse ``May/97``, ``5/1997``, ``97``, or ``1997`` into a period."""
    raw = raw.strip()
    if "/" in raw:
        month_part, year_part = raw.split("/", 1)
        month_part = month_part.strip()
        if month_part.isdigit():
            month = int(month_part)
        else:
            month = _month_number(month_part, raw)
        return Month(_expand_year(year_part.strip()), month)
    if raw.isdigit():
        return Year(_expand_year(raw))
    raise ParseError(f"cannot parse date period {raw!r}", raw)


_FULL_MONTHS = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)


def _month_number(name: str, raw: str) -> int:
    """Month number for a 3-letter abbreviation or full English name."""
    title = name.capitalize()
    if title in MONTH_NAMES:
        return MONTH_NAMES.index(title) + 1
    if title in _FULL_MONTHS:
        return _FULL_MONTHS.index(title) + 1
    raise ParseError(f"unknown month {name!r}", raw)


def _expand_year(text: str) -> int:
    if not text.isdigit():
        raise ParseError(f"bad year {text!r}", text)
    year = int(text)
    if year < 100:
        year += 1900 if year >= 30 else 2000
    return year


def _parse_collection(raw: str) -> tuple:
    raw = raw.strip()
    if not (raw.startswith("(") and raw.endswith(")")):
        raise ParseError(f"'in' needs a parenthesized list, got {raw!r}", raw)
    items = [part.strip() for part in raw[1:-1].split(",")]
    return tuple(_parse_scalar(item) for item in items if item)


def _parse_scalar(raw: str) -> object:
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw.startswith("(") and raw.endswith(")"):
        body = raw[1:-1]
        if ":" in body:
            lo, hi = body.split(":", 1)
            return Range(_parse_number(lo), _parse_number(hi))
        if "," in body:
            x, y = body.split(",", 1)
            return Point(_parse_number(x), _parse_number(y))
        raise ParseError(f"cannot parse structured value {raw!r}", raw)
    if _NUMBER_RE.fullmatch(raw):
        return float(raw) if "." in raw else int(raw)
    if _is_attr_rhs(raw):
        return attr(raw)
    if _ATTR_RE.fullmatch(raw):
        return raw  # bare identifier: a string value, e.g. [dept = cs]
    raise ParseError(f"cannot parse value {raw!r}", raw)


def _parse_number(text: str) -> float | int:
    text = text.strip()
    if not _NUMBER_RE.fullmatch(text):
        raise ParseError(f"expected a number, got {text!r}", text)
    return float(text) if "." in text else int(text)


def _is_attr_rhs(raw: str) -> bool:
    """A qualified or indexed reference — the only joins the syntax allows."""
    return bool(_ATTR_RE.fullmatch(raw)) and ("." in raw or "[" in raw)
