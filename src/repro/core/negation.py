"""Negation elimination — an extension beyond the paper.

The paper's constraint-query language deliberately excludes negation
("we currently do not consider negations", Section 2).  vocabmap supports
``NOT`` as a strictly additive preprocessing pass:

* De Morgan push-down: ``¬(A ∧ B) → ¬A ∨ ¬B``, ``¬(A ∨ B) → ¬A ∧ ¬B``,
  ``¬¬A → A``, ``¬true → false``;
* at the leaves, ``¬[a op v]`` becomes ``[a comp(op) v]`` using the
  operator's declared *complement* (``=``/``!=``, ``contains`` /
  ``not-contains``, ...).

The result is a plain negation-free query the paper's algorithms handle
unchanged.  Complement constraints typically match no mapping rule, so
they translate to ``True`` and land in the residue filter ``F`` — which
is sound (``True`` subsumes everything) and exactly how the framework
treats any unsupported vocabulary.

``push_negations`` raises :class:`~repro.core.errors.TranslationError`
only if a negated constraint's operator has no registered complement.
"""

from __future__ import annotations

from repro.core.ast import (
    And,
    BoolConst,
    Constraint,
    Not,
    Or,
    Query,
    conj,
    disj,
    neg,
)
from repro.core.errors import TranslationError
from repro.core.operators import get_operator

__all__ = ["push_negations", "has_negation", "complement_constraint"]


def has_negation(query: Query) -> bool:
    """True when the tree contains any ``Not`` node."""
    if isinstance(query, Not):
        return True
    if isinstance(query, (And, Or)):
        return any(has_negation(child) for child in query.children)
    return False


def complement_constraint(constraint: Constraint) -> Constraint:
    """``¬[a op v]`` as a positive constraint with the complement operator."""
    operator = get_operator(constraint.op)
    if operator.complement is None:
        raise TranslationError(
            f"cannot negate {constraint}: operator {constraint.op!r} "
            f"has no registered complement"
        )
    return Constraint(constraint.lhs, operator.complement, constraint.rhs)


def push_negations(query: Query) -> Query:
    """Return an equivalent negation-free query (De Morgan to the leaves)."""
    return _push(query, negated=False)


def _push(query: Query, negated: bool) -> Query:
    if isinstance(query, Not):
        return _push(query.child, not negated)
    if isinstance(query, BoolConst):
        return neg(query) if negated else query
    if isinstance(query, Constraint):
        return complement_constraint(query) if negated else query
    if isinstance(query, And):
        children = [_push(child, negated) for child in query.children]
        return disj(children) if negated else conj(children)
    if isinstance(query, Or):
        children = [_push(child, negated) for child in query.children]
        return conj(children) if negated else disj(children)
    raise TranslationError(f"unknown query node: {query!r}")
