"""Query rendering: round-trippable text and ASCII trees.

``to_text`` emits exactly the notation :func:`repro.core.parser.parse_query`
accepts, so ``parse_query(to_text(q))`` reproduces ``q`` (tested as a
property).  ``render_tree`` draws the query-tree pictures the paper uses in
Figures 7 and 12.
"""

from __future__ import annotations

from repro.core.ast import And, AttrRef, BoolConst, Constraint, Not, Or, Query
from repro.core.values import DatePeriod, Point, Range

__all__ = ["to_text", "render_tree", "to_dot"]


def to_text(query: Query) -> str:
    """Render a query in the parseable textual notation."""
    return _render(query, top=True)


def _render(query: Query, top: bool = False) -> str:
    if isinstance(query, BoolConst):
        return str(query)
    if isinstance(query, Constraint):
        return f"[{query.lhs} {query.op} {_render_rhs(query)}]"
    if isinstance(query, (And, Or)):
        joiner = " and " if isinstance(query, And) else " or "
        body = joiner.join(_render(child) for child in query.children)
        return body if top else f"({body})"
    if isinstance(query, Not):
        inner = _render(query.child)
        return f"not {inner}"
    raise TypeError(f"unknown query node: {query!r}")


def _render_rhs(constraint: Constraint) -> str:
    rhs = constraint.rhs
    if isinstance(rhs, AttrRef):
        return str(rhs)
    if constraint.op == "contains":
        return str(rhs)
    if constraint.op == "in":
        return "(" + ", ".join(_scalar(item) for item in rhs) + ")"
    return _scalar(rhs)


def _scalar(value: object) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, (Range, Point, DatePeriod)):
        return str(value)
    return str(value)


def render_tree(query: Query, annotations: dict[int, str] | None = None) -> str:
    """Draw an ASCII tree of ``query``.

    ``annotations`` optionally maps ``id(node)`` to a suffix string — used
    by the EDNF benches to reproduce the shaded boxes of Figure 7.
    """
    lines: list[str] = []
    _draw(query, "", "", lines, annotations or {})
    return "\n".join(lines)


def _draw(
    node: Query,
    prefix: str,
    child_prefix: str,
    lines: list[str],
    annotations: dict[int, str],
) -> None:
    if isinstance(node, And):
        label = "AND"
    elif isinstance(node, Or):
        label = "OR"
    elif isinstance(node, Not):
        label = "NOT"
    else:
        label = str(node)
    note = annotations.get(id(node))
    if note:
        label = f"{label}   {note}"
    lines.append(prefix + label)
    if isinstance(node, (And, Or, Not)):
        children = node.children if isinstance(node, (And, Or)) else (node.child,)
        for i, child in enumerate(children):
            last = i == len(children) - 1
            connector = "└── " if last else "├── "
            extension = "    " if last else "│   "
            _draw(child, child_prefix + connector, child_prefix + extension, lines, annotations)


def to_dot(query: Query, title: str = "query") -> str:
    """Render a query tree in Graphviz DOT (for figures like Fig. 7/12)."""
    lines = [f'digraph "{title}" {{', "  node [fontname=monospace];"]
    counter = [0]

    def emit(node: Query) -> str:
        name = f"n{counter[0]}"
        counter[0] += 1
        if isinstance(node, And):
            label, shape = "AND", "circle"
            children = node.children
        elif isinstance(node, Or):
            label, shape = "OR", "circle"
            children = node.children
        elif isinstance(node, Not):
            label, shape = "NOT", "circle"
            children = (node.child,)
        else:
            label, shape = str(node).replace('"', '\\"'), "box"
            children = ()
        lines.append(f'  {name} [label="{label}", shape={shape}];')
        for child in children:
            child_name = emit(child)
            lines.append(f"  {name} -> {child_name};")
        return name

    emit(query)
    lines.append("}")
    return "\n".join(lines)
