"""Filter-query (residue) generation — the ``F`` of Eq. 2/3.

After translation, the mediator must post-filter the combined source
results with the conditions not *fully* realized at the sources (Example
1: redo Q at the mediator; Example 3: ``F = c``, the one relaxed
constraint).  The paper defers the construction to references [15, 16];
we implement the sound, exactness-driven form those examples exhibit:

* Write ``Q`` as a top-level conjunction ``c1 ∧ ... ∧ ck`` (a
  non-conjunctive ``Q`` is a single conjunct).
* Per source, partition the conjuncts with Algorithm PSafe (dependent
  conjuncts translate *jointly*, so exactness must be judged per block:
  ``[ln = "Clancy"] ∧ [fn = "Tom"]`` is exact at Amazon only as a pair).
* A conjunct may be dropped from ``F`` iff its block's translation at some
  source is *exact* — logically equivalent, not merely subsuming — because
  that source then removes precisely the tuples the block would.
* Everything else stays in ``F``.

Exactness of a translation is computed by TDQM from the rules' ``exact``
flags (see :class:`repro.core.matching.Rule`); the result is always sound,
merely conservative when a rule author under-declares exactness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import And, Query, conj
from repro.core.matching import Matcher
from repro.core.normalize import normalize
from repro.core.psafe import psafe_partition
from repro.core.tdqm import tdqm_translate
from repro.obs import trace as obs
from repro.rules.spec import MappingSpecification

__all__ = ["FilterPlan", "build_filter", "translate_for_sources"]


@dataclass(frozen=True)
class FilterPlan:
    """Per-source mappings plus the residue filter — Eq. 2's ingredients.

    Invariant (Eq. 3): ``Q ≡ filter ∧ mappings[s1] ∧ ... ∧ mappings[sn]``
    where each mapping applies to its own source's tuples.
    """

    query: Query
    mappings: dict
    filter: Query


def translate_for_sources(
    query: Query, specs: dict[str, MappingSpecification]
) -> dict[str, Query]:
    """``S_i(Q)`` for each source, translated independently (Section 2)."""
    return {name: tdqm_translate(query, spec).mapping for name, spec in specs.items()}


def build_filter(
    query: Query,
    specs: dict[str, MappingSpecification],
    cache=None,
    *,
    interpret: bool = False,
) -> FilterPlan:
    """Translate ``query`` for every source and derive the residue filter.

    ``cache`` (a :class:`repro.perf.TranslationCache`) memoizes the
    per-source translations *and* the per-block exactness probes — the
    hottest part of the mediation path for repeated queries.  The plan is
    identical with or without it: translation is a pure function of the
    (normalized) query and the specification's rule-set version.
    ``interpret=True`` forces interpreted matching everywhere and skips
    the cache (see :mod:`repro.perf.compile`).
    """
    with obs.span("build_filter", sources=len(specs)):
        query = normalize(query)
        conjuncts = list(query.children) if isinstance(query, And) else [query]

        matchers: dict[str, Matcher] = {
            name: spec.matcher(interpret=interpret) for name, spec in specs.items()
        }
        mappings: dict[str, Query] = {}
        droppable: set[int] = set()
        for name, matcher in matchers.items():
            spec = specs[name]

            def translate(q: Query):
                if cache is not None and not interpret:
                    return cache.tdqm(q, spec)
                return tdqm_translate(q, matcher)

            with obs.span("filter.source", source=name):
                mappings[name] = translate(query).mapping
                for block in psafe_partition(conjuncts, matcher):
                    sub = conj(conjuncts[i] for i in block)
                    if translate(sub).exact:
                        droppable.update(block)
                        obs.count("filter.exact_blocks")
                    else:
                        obs.count("filter.relaxed_blocks")

        residue = [c for i, c in enumerate(conjuncts) if i not in droppable]
        obs.count("filter.residue_conjuncts", len(residue))
        return FilterPlan(query=query, mappings=mappings, filter=conj(residue))
