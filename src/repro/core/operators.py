"""Constraint operator registry and evaluation semantics.

The paper's constraints use a wide variety of operators across contexts:
``=``, inequality comparisons, IR ``contains`` (over text patterns), prefix
``starts``, date ``during``, set ``in``.  This module gives each a single
definition used consistently by

* the relational engine (to evaluate queries over tuples),
* the normalizer (inverse/symmetric metadata, Section 4.2), and
* capability descriptions (sources declare which operators they support).

Registering an operator is open: call :func:`register` to extend the
vocabulary — the mapping algorithms never enumerate operators, they only
evaluate and normalize through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core.errors import EvaluationError
from repro.core.values import DatePeriod

__all__ = ["Operator", "register", "get_operator", "known_operators", "evaluate_op"]


@dataclass(frozen=True)
class Operator:
    """Metadata + semantics for one constraint operator.

    ``inverse`` names the operator obtained by swapping the two operands
    (``<`` and ``>``); symmetric operators are their own inverse.  Operators
    with no meaningful operand swap (``contains``) have ``inverse=None`` and
    are never flipped by normalization.

    ``complement`` names the operator selecting exactly the complementary
    tuples (``=`` / ``!=``, ``contains`` / ``not-contains``).  The negation
    extension (:mod:`repro.core.negation`) uses it to push ``NOT`` down to
    the leaves — the paper excludes negation, so this is strictly additive.
    """

    name: str
    evaluate: Callable[[object, object], bool]
    symmetric: bool = False
    inverse: str | None = None
    complement: str | None = None
    doc: str = ""


_REGISTRY: dict[str, Operator] = {}


def register(operator: Operator) -> Operator:
    """Add (or replace) an operator definition in the global registry."""
    _REGISTRY[operator.name] = operator
    return operator


def get_operator(name: str) -> Operator:
    """Look up an operator; raises :class:`EvaluationError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EvaluationError(f"unknown operator {name!r}") from None


def known_operators() -> frozenset[str]:
    """Names of all registered operators."""
    return frozenset(_REGISTRY)


def evaluate_op(name: str, lhs: object, rhs: object) -> bool:
    """Evaluate ``lhs name rhs``; missing (None) operands never match."""
    if lhs is None or rhs is None:
        return False
    return get_operator(name).evaluate(lhs, rhs)


# ---------------------------------------------------------------------------
# Built-in operator semantics
# ---------------------------------------------------------------------------


def _eq(lhs: object, rhs: object) -> bool:
    if isinstance(lhs, str) and isinstance(rhs, str):
        return lhs.strip().lower() == rhs.strip().lower()
    return lhs == rhs


def _compare(check: Callable[[int], bool]) -> Callable[[object, object], bool]:
    def evaluate(lhs: object, rhs: object) -> bool:
        try:
            if lhs < rhs:
                return check(-1)
            if lhs == rhs:
                return check(0)
            return check(1)
        except TypeError as exc:
            raise EvaluationError(f"cannot compare {lhs!r} with {rhs!r}") from exc

    return evaluate


def _contains(lhs: object, rhs: object) -> bool:
    # Deferred import: text is a substrate package layered above core.
    from repro.text import TextPattern, matches, tokenize

    text = lhs if isinstance(lhs, str) else str(lhs)
    if isinstance(rhs, TextPattern):
        return matches(rhs, text)
    if isinstance(rhs, str):
        wanted = tokenize(rhs)
        if not wanted:
            return False
        have = tokenize(text)
        if len(wanted) == 1:
            return wanted[0] in have
        return any(
            have[i : i + len(wanted)] == wanted
            for i in range(len(have) - len(wanted) + 1)
        )
    raise EvaluationError(f"contains requires a text pattern or string, got {rhs!r}")


def _starts(lhs: object, rhs: object) -> bool:
    if not isinstance(rhs, str):
        raise EvaluationError(f"starts requires a string, got {rhs!r}")
    return str(lhs).strip().lower().startswith(rhs.strip().lower())


def _during(lhs: object, rhs: object) -> bool:
    if not isinstance(rhs, DatePeriod):
        raise EvaluationError(f"during requires a DatePeriod, got {rhs!r}")
    return rhs.covers(lhs)


def _in(lhs: object, rhs: object) -> bool:
    try:
        return lhs in rhs  # type: ignore[operator]
    except TypeError as exc:
        raise EvaluationError(f"'in' requires a container, got {rhs!r}") from exc


register(Operator("=", _eq, symmetric=True, inverse="=", complement="!=", doc="loose equality (case-insensitive on strings)"))
register(Operator("!=", lambda a, b: not _eq(a, b), symmetric=True, inverse="!=", complement="=", doc="negated equality"))
register(Operator("<", _compare(lambda c: c < 0), inverse=">", complement=">=", doc="strictly less"))
register(Operator("<=", _compare(lambda c: c <= 0), inverse=">=", complement=">", doc="less or equal"))
register(Operator(">", _compare(lambda c: c > 0), inverse="<", complement="<=", doc="strictly greater"))
register(Operator(">=", _compare(lambda c: c >= 0), inverse="<=", complement="<", doc="greater or equal"))
register(Operator("contains", _contains, complement="not-contains", doc="IR text-pattern / keyword containment"))
register(Operator("starts", _starts, complement="not-starts", doc="case-insensitive prefix"))
register(Operator("during", _during, complement="not-during", doc="date falls inside a period"))
register(Operator("in", _in, complement="not-in", doc="membership in an enumerated collection"))
register(Operator("not-contains", lambda a, b: not _contains(a, b), complement="contains", doc="negated containment"))
register(Operator("not-starts", lambda a, b: not _starts(a, b), complement="starts", doc="negated prefix"))
register(Operator("not-during", lambda a, b: not _during(a, b), complement="during", doc="date outside a period"))
register(Operator("not-in", lambda a, b: not _in(a, b), complement="in", doc="negated membership"))
