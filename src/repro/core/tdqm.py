"""Algorithm TDQM — Top-Down Query Mapping (Figure 8, Section 6).

Translate an arbitrary ∧/∨ query by traversing its tree top-down:

* **Case 1** (∨-node): disjuncts are always separable — recurse on each
  and disjoin the results;
* **Case 2** (∧-node with a non-leaf child): call Algorithm PSafe to
  partition the conjuncts into safe blocks; rewrite each multi-conjunct
  block into a disjunction with ``Disjunctivize`` (one distribution level,
  *local* to the block) and recurse;
* **Case 3** (simple conjunction): the base case — Algorithm SCM.

By Theorem 2 the output equals ``S(Q)``; by Section 8 it is also compact,
because structure is rewritten only inside inseparable blocks.

:func:`tdqm_translate` returns a :class:`TranslationResult` carrying the
exactness verdict (for filter-query generation) and work counters (for the
Section 8 benches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import And, BoolConst, Or, Query, conj, disj
from repro.core.dnf import is_simple_conjunction
from repro.core.errors import TranslationError
from repro.core.matching import Matcher
from repro.core.normalize import normalize
from repro.core.psafe import psafe
from repro.core.scm import scm_translate
from repro.obs import trace as obs
from repro.rules.spec import MappingSpecification

__all__ = ["TdqmStats", "TranslationResult", "tdqm", "tdqm_translate", "disjunctivize"]


@dataclass
class TdqmStats:
    """Work counters accumulated over one TDQM run."""

    scm_calls: int = 0
    psafe_calls: int = 0
    blocks_rewritten: int = 0
    constraint_slots: int = 0  # constraints fed to SCM, with repeats


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of one TDQM translation."""

    mapping: Query
    exact: bool
    stats: TdqmStats


def disjunctivize(conjuncts: list[Query]) -> Query:
    """Rewrite ``∧(conjuncts)`` into a disjunctive form (Figure 8, bottom).

    Single-conjunct blocks pass through unchanged; otherwise the root ∧ is
    distributed over the ∨'s one level below — a *local* conversion, not a
    full DNF.
    """
    if not conjuncts:
        raise TranslationError("disjunctivize needs at least one conjunct")
    if len(conjuncts) == 1:
        return conjuncts[0]
    obs.count("tdqm.disjunctivize_calls")
    alternatives = [
        list(child.children) if isinstance(child, Or) else [child]
        for child in conjuncts
    ]
    terms: list[Query] = []
    _distribute(alternatives, 0, [], terms)
    obs.count("tdqm.disjunctivize_terms", len(terms))
    return disj(terms)


def _distribute(
    alternatives: list[list[Query]],
    idx: int,
    picked: list[Query],
    out: list[Query],
) -> None:
    if idx == len(alternatives):
        out.append(conj(picked))
        return
    for option in alternatives[idx]:
        picked.append(option)
        _distribute(alternatives, idx + 1, picked, out)
        picked.pop()


def tdqm_translate(
    query: Query,
    spec: MappingSpecification | Matcher,
    trace: list[str] | None = None,
    *,
    cache=None,
    interpret: bool = False,
) -> TranslationResult:
    """Run Algorithm TDQM on an arbitrary query.

    When ``trace`` is a list, a human-readable narration of every step
    (case taken, partitions, rewrites, matchings) is appended to it — the
    machinery behind :func:`repro.core.explain.explain_translation`.

    ``cache`` (a :class:`repro.perf.TranslationCache`) memoizes whole
    translations keyed by the query's canonical fingerprint and the
    specification's name + version stamp.  It is consulted only for
    untraced runs against a :class:`MappingSpecification` (a bare matcher
    has no version identity to key on).  Never mutate a result obtained
    through a cache — it is shared by reference.

    ``interpret=True`` forces the interpreted matcher walk and bypasses
    the cache entirely, so the run shares no memoized state with the
    compiled path — the equivalence oracle of :mod:`repro.perf.compile`
    and the escape hatch if a rule's tail turns out to be impure.
    """
    if (
        cache is not None
        and trace is None
        and not interpret
        and isinstance(spec, MappingSpecification)
    ):
        return cache.tdqm(query, spec)
    if not obs.enabled():
        return _translate(query, spec, trace, interpret)
    with obs.span("tdqm"):
        return _translate(query, spec, trace, interpret)


def _translate(
    query: Query,
    spec: MappingSpecification | Matcher,
    trace: list[str] | None,
    interpret: bool = False,
) -> TranslationResult:
    query = normalize(query)
    if isinstance(spec, MappingSpecification):
        matcher = spec.matcher(interpret=interpret)
    else:
        matcher = spec
    matcher.potential(query.constraints())  # prematch M_p once (Section 7.1.3)
    stats = TdqmStats()
    mapping, exact = _tdqm(query, matcher, stats, trace, 0)
    return TranslationResult(mapping=mapping, exact=exact, stats=stats)


def tdqm(
    query: Query, spec: MappingSpecification | Matcher, *, interpret: bool = False
) -> Query:
    """``TDQM(Q, K)``: the minimal subsuming mapping of an arbitrary query."""
    return tdqm_translate(query, spec, interpret=interpret).mapping


def _tdqm(
    query: Query,
    matcher: Matcher,
    stats: TdqmStats,
    trace: list[str] | None = None,
    depth: int = 0,
) -> tuple[Query, bool]:
    pad = "  " * depth

    def note(message: str) -> None:
        if trace is not None:
            trace.append(pad + message)

    traced = obs.enabled()
    if traced:
        obs.gauge_max("tdqm.subtree_nodes_max", query.node_count())

    # Case 3 first: constraints, constants, and ANDs of leaves.
    if is_simple_conjunction(query):
        if traced:
            obs.count("tdqm.case3_scm")
        stats.scm_calls += 1
        if not isinstance(query, BoolConst):
            stats.constraint_slots += len(query.constraints())
        result = scm_translate(query, matcher)
        if trace is not None:
            note(f"case 3 (SCM, {matcher.mode} dispatch): {query}")
            for matching in result.all_matchings:
                kept = "keep" if matching in result.kept_matchings else "drop"
                group = " ∧ ".join(sorted(str(c) for c in matching.constraints))
                note(f"  [{kept}] {matching.rule_name}: {group} "
                     f"-> {matching.emission}"
                     + ("  (exact)" if matching.exact else ""))
            note(f"  S = {result.mapping}")
        return result.mapping, result.exact

    # Case 1: disjunctive query.
    if isinstance(query, Or):
        if traced:
            obs.count("tdqm.case1_or")
        note(f"case 1 (∨-node, {len(query.children)} disjuncts): "
             f"disjuncts are always separable")
        mapped = []
        exact = True
        for child in query.children:
            sub_mapping, sub_exact = _tdqm(child, matcher, stats, trace, depth + 1)
            mapped.append(sub_mapping)
            exact = exact and sub_exact
        return disj(mapped), exact

    # Case 2: conjunctive query with at least one non-leaf child.
    if isinstance(query, And):
        if traced:
            obs.count("tdqm.case2_psafe")
        stats.psafe_calls += 1
        partition = psafe(list(query.children), matcher)
        if trace is not None:
            note(f"case 2 (∧-node, {len(query.children)} conjuncts, "
                 f"{matcher.mode} dispatch): calling PSafe")
            for m in partition.cross_matchings:
                group = ", ".join(sorted(str(c) for c in m.constraints))
                note(f"  cross-matching: {{{group}}}")
            blocks = ["{" + ", ".join(f"C{i + 1}" for i in b) + "}"
                      for b in partition.blocks]
            note(f"  partition: {', '.join(blocks)}")
        mapped = []
        exact = True
        for block in partition.blocks:
            conjuncts = [query.children[i] for i in block]
            if len(conjuncts) > 1:
                stats.blocks_rewritten += 1
                note(f"  rewriting block {{{', '.join(f'C{i + 1}' for i in block)}}}"
                     f" with Disjunctivize")
            rewritten = disjunctivize(conjuncts)
            sub_mapping, sub_exact = _tdqm(rewritten, matcher, stats, trace, depth + 1)
            mapped.append(sub_mapping)
            exact = exact and sub_exact
        return conj(mapped), exact

    raise TranslationError(f"unknown query node: {query!r}")
