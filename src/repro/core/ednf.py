"""Procedure EDNF — essential DNF for separability testing (Figure 10).

The safety conditions of Section 7.1 ultimately depend only on the
existence of *cross-matchings*, so when testing them we may drop every
constraint that can never participate in one.  The *essential DNF* of a
subquery keeps exactly the potentially-dependent constraints; everything
else collapses to the don't-care placeholder ε.

Representation: a DNF (or EDNF) is a list of *terms*; each term is a
``frozenset`` of constraints, with the empty set standing for ε.  Terms are
deduplicated (the ``x ∨ x = x`` simplifying rule) but their order is kept
for reproducible traces.

``ednf`` annotates every node of the query tree bottom-up with its
``D(·)`` (DNF over the children's EDNF) and ``D_e(·)`` (the simplified
essential form), mirroring the shaded boxes of Figure 7.

Nullification rule (lines 17–22 of Figure 10): a disjunct D̂ becomes ε when
every potential matching ``m`` relevant to it (``m ∩ C(D̂) ≠ ∅``)

a. is wholly contained in D̂, and
b. either consists of a single constraint, or some *other* disjunct of the
   current node is disjoint from ``m`` (so the cross-matching would be
   discovered through that sibling anyway — see the ``f_l f_f`` discussion
   in Section 7.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.core.ast import And, BoolConst, Constraint, Or, Query
from repro.core.errors import TranslationError
from repro.core.matching import Matcher
from repro.obs import trace as obs

__all__ = ["Term", "EdnfInfo", "ednf", "format_terms", "combine_conjunct_ednf"]

#: One DNF term: a set of constraints; the empty set is the ε placeholder.
Term = frozenset

#: Safety valve for the EDNF product at a conjunctive node.  The paper's
#: cost model is 2^(ne); workloads beyond this bound indicate pathological
#: dependency degrees rather than realistic specifications.
MAX_TERMS = 200_000


@dataclass
class EdnfInfo:
    """Per-node annotation: the ``D(·)`` and ``D_e(·)`` of Figure 7/10."""

    node: Query
    dnf: list[Term]
    essential: list[Term]
    children: list["EdnfInfo"] = field(default_factory=list)

    def annotation(self) -> str:
        """Render ``D_e / D`` like the shaded boxes of Figure 7."""
        return f"{format_terms(self.essential)} / {format_terms(self.dnf)}"


def format_terms(terms: list[Term]) -> str:
    """Human-readable rendering of a term list (ε for the empty term)."""
    if not terms:
        return "false"
    rendered = []
    for term in terms:
        if not term:
            rendered.append("ε")
        else:
            rendered.append("".join(sorted(f"({c})" for c in term)))
    return " ∨ ".join(rendered)


def ednf(query: Query, matcher: Matcher) -> EdnfInfo:
    """Compute ``D(·)`` and ``D_e(·)`` for every node of ``query``.

    ``matcher`` supplies the potential matchings ``M_p`` over the query's
    full constraint set (line 1 of Figure 10).
    """
    if not obs.enabled():
        return _ednf(query, matcher)
    with obs.span("ednf"):
        obs.count("ednf.calls")
        info = _ednf(query, matcher)
        obs.count("ednf.dnf_terms", len(info.dnf))
        obs.count("ednf.essential_terms", len(info.essential))
        return info


def _ednf(query: Query, matcher: Matcher) -> EdnfInfo:
    potential = [m.constraints for m in matcher.potential(query.constraints())]
    # Only distinct constraint sets matter for safety, and singletons are
    # handled by rule b.1.
    potential = sorted(set(potential), key=lambda s: (len(s), str(sorted(map(str, s)))))
    return _ednf_node(query, potential)


def _ednf_node(query: Query, potential: list[frozenset[Constraint]]) -> EdnfInfo:
    children: list[EdnfInfo] = []

    if isinstance(query, BoolConst):
        dnf = [Term()] if query.value else []
    elif isinstance(query, Constraint):
        dnf = [Term([query])]
    elif isinstance(query, Or):
        children = [_ednf_node(child, potential) for child in query.children]
        dnf = _dedupe(term for child in children for term in child.essential)
    elif isinstance(query, And):
        children = [_ednf_node(child, potential) for child in query.children]
        dnf = combine_conjunct_ednf([child.essential for child in children])
    else:
        raise TranslationError(f"unknown query node: {query!r}")

    essential = simplify_terms(dnf, potential)
    return EdnfInfo(node=query, dnf=dnf, essential=essential, children=children)


def combine_conjunct_ednf(conjunct_terms: list[list[Term]]) -> list[Term]:
    """Disjunctivize a conjunction of term lists (line 12 of Figure 10)."""
    size = 1
    for terms in conjunct_terms:
        size *= max(1, len(terms))
        if size > MAX_TERMS:
            raise TranslationError(
                f"EDNF product exceeds {MAX_TERMS} terms; the query's "
                f"dependency structure is pathological"
            )
    combos = []
    for combo in product(*conjunct_terms):
        combos.append(Term().union(*combo))
    return _dedupe(combos)


def simplify_terms(
    dnf: list[Term], potential: list[frozenset[Constraint]]
) -> list[Term]:
    """Step 2 of Figure 10: nullify useless disjuncts, merge ε's."""
    current = list(dnf)
    for idx, term in enumerate(current):
        if not term:
            continue
        if _is_useless(term, idx, current, potential):
            current[idx] = Term()
    return _dedupe(current)


def _is_useless(
    term: Term,
    idx: int,
    terms: list[Term],
    potential: list[frozenset[Constraint]],
) -> bool:
    for m in potential:
        if not (m & term):
            continue  # not relevant to this disjunct
        if not m <= term:
            return False  # rule (a) fails: m reaches outside the term
        if len(m) == 1:
            continue  # rule (b.1)
        if any(j != idx and not (m & other) for j, other in enumerate(terms)):
            continue  # rule (b.2): a disjoint sibling re-discovers m
        return False
    return True


def _dedupe(terms) -> list[Term]:
    seen: set[Term] = set()
    out: list[Term] = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            out.append(term)
    return out
