"""JSON (de)serialization for queries, constraints, and values.

A mediator and its wrappers are separate processes in a real deployment
(Section 2's architecture); translated queries must cross the wire.  This
module defines a stable, self-describing JSON encoding for every query
node and every built-in value type, round-trip-safe::

    query == query_from_json(query_to_json(query))

Encoding sketch (every non-scalar carries a ``"$"`` type tag)::

    {"$": "and", "children": [...]}
    {"$": "c", "lhs": {"$": "attr", "path": ["fac", "ln"], "index": 1},
     "op": "=", "rhs": "Clancy"}
    {"$": "month", "year": 1997, "month": 5}
    {"$": "near", "parts": [...], "window": 5}

Plain strings, ints, floats, booleans, and None pass through untouched;
lists/tuples become tagged ``{"$": "tuple"}`` objects so the ``in``
operator's collections survive.
"""

from __future__ import annotations

import json

from repro.core.ast import (
    FALSE,
    TRUE,
    And,
    AttrRef,
    BoolConst,
    Constraint,
    Not,
    Or,
    Query,
)
from repro.core.errors import ParseError
from repro.core.values import Date, Month, Point, Range, Year
from repro.text.patterns import (
    MATCH_ALL,
    AndPat,
    MatchAll,
    NearPat,
    OrPat,
    PhrasePat,
    TextPattern,
    Word,
)

__all__ = ["query_to_json", "query_from_json", "dumps", "loads"]


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def query_to_json(query: Query) -> dict:
    """Encode a query tree as JSON-compatible plain data."""
    if isinstance(query, BoolConst):
        return {"$": "bool", "value": query.value}
    if isinstance(query, Constraint):
        return {
            "$": "c",
            "lhs": _attr_to_json(query.lhs),
            "op": query.op,
            "rhs": _value_to_json(query.rhs),
        }
    if isinstance(query, And):
        return {"$": "and", "children": [query_to_json(c) for c in query.children]}
    if isinstance(query, Or):
        return {"$": "or", "children": [query_to_json(c) for c in query.children]}
    if isinstance(query, Not):
        return {"$": "not", "child": query_to_json(query.child)}
    raise TypeError(f"unknown query node: {query!r}")


def _attr_to_json(ref: AttrRef) -> dict:
    out: dict = {"$": "attr", "path": list(ref.path)}
    if ref.index is not None:
        out["index"] = ref.index
    return out


def _value_to_json(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, AttrRef):
        return _attr_to_json(value)
    if isinstance(value, Date):
        return {"$": "date", "year": value.year, "month": value.month, "day": value.day}
    if isinstance(value, Year):
        return {"$": "year", "year": value.year}
    if isinstance(value, Month):
        return {"$": "month", "year": value.year, "month": value.month}
    if isinstance(value, Range):
        return {"$": "range", "lo": value.lo, "hi": value.hi}
    if isinstance(value, Point):
        return {"$": "point", "x": value.x, "y": value.y}
    if isinstance(value, (tuple, list)):
        return {"$": "tuple", "items": [_value_to_json(item) for item in value]}
    if isinstance(value, TextPattern):
        return _pattern_to_json(value)
    raise TypeError(f"cannot serialize value of type {type(value).__name__}: {value!r}")


def _pattern_to_json(pattern: TextPattern) -> dict:
    if isinstance(pattern, MatchAll):
        return {"$": "anytext"}
    if isinstance(pattern, Word):
        return {"$": "word", "text": pattern.text}
    if isinstance(pattern, PhrasePat):
        return {"$": "phrase", "tokens": list(pattern.tokens)}
    if isinstance(pattern, NearPat):
        return {
            "$": "near",
            "parts": [_pattern_to_json(part) for part in pattern.parts],
            "window": pattern.window,
        }
    if isinstance(pattern, AndPat):
        return {"$": "andpat", "parts": [_pattern_to_json(p) for p in pattern.parts]}
    if isinstance(pattern, OrPat):
        return {"$": "orpat", "parts": [_pattern_to_json(p) for p in pattern.parts]}
    raise TypeError(f"unknown pattern type: {pattern!r}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def query_from_json(data: object) -> Query:
    """Decode the output of :func:`query_to_json` back into a query tree."""
    if not isinstance(data, dict) or "$" not in data:
        raise ParseError(f"not an encoded query: {data!r}")
    tag = data["$"]
    if tag == "bool":
        return TRUE if data["value"] else FALSE
    if tag == "c":
        return Constraint(
            _attr_from_json(data["lhs"]), data["op"], _value_from_json(data["rhs"])
        )
    if tag == "and":
        return And([query_from_json(child) for child in data["children"]])
    if tag == "or":
        return Or([query_from_json(child) for child in data["children"]])
    if tag == "not":
        return Not(query_from_json(data["child"]))
    raise ParseError(f"unknown query tag {tag!r}")


def _attr_from_json(data: object) -> AttrRef:
    if not isinstance(data, dict) or data.get("$") != "attr":
        raise ParseError(f"not an encoded attribute: {data!r}")
    return AttrRef(tuple(data["path"]), data.get("index"))


def _value_from_json(data: object) -> object:
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if not isinstance(data, dict) or "$" not in data:
        raise ParseError(f"not an encoded value: {data!r}")
    tag = data["$"]
    if tag == "attr":
        return _attr_from_json(data)
    if tag == "date":
        return Date(data["year"], data["month"], data["day"])
    if tag == "year":
        return Year(data["year"])
    if tag == "month":
        return Month(data["year"], data["month"])
    if tag == "range":
        return Range(data["lo"], data["hi"])
    if tag == "point":
        return Point(data["x"], data["y"])
    if tag == "tuple":
        return tuple(_value_from_json(item) for item in data["items"])
    if tag in {"anytext", "word", "phrase", "near", "andpat", "orpat"}:
        return _pattern_from_json(data)
    raise ParseError(f"unknown value tag {tag!r}")


def _pattern_from_json(data: dict) -> TextPattern:
    tag = data["$"]
    if tag == "anytext":
        return MATCH_ALL
    if tag == "word":
        return Word(data["text"])
    if tag == "phrase":
        return PhrasePat(tuple(data["tokens"]))
    if tag == "near":
        return NearPat(
            tuple(_pattern_from_json(part) for part in data["parts"]),
            window=data["window"],
        )
    if tag == "andpat":
        return AndPat(tuple(_pattern_from_json(part) for part in data["parts"]))
    if tag == "orpat":
        return OrPat(tuple(_pattern_from_json(part) for part in data["parts"]))
    raise ParseError(f"unknown pattern tag {tag!r}")


# ---------------------------------------------------------------------------
# String convenience
# ---------------------------------------------------------------------------


def dumps(query: Query, **kwargs) -> str:
    """Serialize a query to a JSON string."""
    return json.dumps(query_to_json(query), **kwargs)


def loads(text: str) -> Query:
    """Deserialize a query from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}", text) from exc
    return query_from_json(data)
