"""Exception hierarchy for the vocabmap library.

All library errors derive from :class:`VocabMapError` so callers can catch a
single base class.  Each subsystem raises the most specific subclass that
applies.
"""

from __future__ import annotations

__all__ = [
    "VocabMapError",
    "ParseError",
    "RuleError",
    "SpecificationError",
    "StaleIndexError",
    "CapabilityError",
    "TranslationError",
    "EvaluationError",
    "SchemaError",
    "SourceUnavailableError",
    "TransientSourceError",
]


class VocabMapError(Exception):
    """Base class for all errors raised by the vocabmap library."""


class ParseError(VocabMapError):
    """A query or text-pattern string could not be parsed.

    Carries the offending ``text`` and, when known, the character
    ``position`` at which parsing failed.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is not None:
            return f"{base} (at position {self.position} in {self.text!r})"
        return base


class RuleError(VocabMapError):
    """A mapping rule is malformed (bad pattern, unbound variable, ...)."""


class SpecificationError(VocabMapError):
    """A mapping specification violates a structural requirement."""


class StaleIndexError(SpecificationError):
    """A compiled rule index was probed after its specification mutated.

    Raised instead of silently answering from an outdated rule set: a
    matcher (or cache) built before ``add_rule``/``remove_rule`` must be
    rebuilt via :meth:`MappingSpecification.matcher`.
    """


class CapabilityError(VocabMapError):
    """A query uses vocabulary a source does not support."""


class TranslationError(VocabMapError):
    """Query translation failed (e.g. a conversion function raised)."""


class EvaluationError(VocabMapError):
    """A query could not be evaluated against the relational engine."""


class SchemaError(VocabMapError):
    """A relation, view, or tuple does not conform to its declared schema."""


class SourceUnavailableError(VocabMapError):
    """A source could not be reached within the resilience policy's budget.

    Raised by :class:`~repro.resilience.SourceAdapter` when retries are
    exhausted, a deadline passed, or the circuit breaker is open — and by
    strict-mode mediation when any required source failed.  Carries the
    per-source :class:`~repro.resilience.SourceOutcome` records describing
    what went wrong where.
    """

    def __init__(self, message: str, outcomes: tuple = ()):
        super().__init__(message)
        self.outcomes = tuple(outcomes)


class TransientSourceError(SourceUnavailableError):
    """A single source call failed in a way a retry may fix.

    This is what :class:`~repro.resilience.FaultPolicy` injects to
    simulate network blips; real wrappers should raise it (or
    ``TimeoutError`` / ``ConnectionError`` / ``OSError``) for transient
    conditions so the adapter's retry loop engages.  Permanent errors
    (:class:`CapabilityError`, :class:`EvaluationError`) are never
    retried.
    """
