"""Disjunctive normal form (Section 5).

``to_dnf`` performs the *global, blind* conversion Algorithm DNF relies on:
distribute every ``AND`` over the ``OR``s below it until the query is a
disjunction of simple conjunctions.  ``dnf_terms`` returns the disjuncts as
constraint sets; ``dnf_term_count`` predicts the number of disjuncts without
materializing them (used by the scaling benches, where the materialized DNF
would not fit in memory).
"""

from __future__ import annotations

from itertools import product

from repro.core.ast import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    Constraint,
    Or,
    Query,
    conj,
    disj,
)

__all__ = ["to_dnf", "dnf_terms", "dnf_term_count", "is_simple_conjunction"]


def is_simple_conjunction(query: Query) -> bool:
    """True for a constraint, a Boolean constant, or an AND of constraints."""
    if isinstance(query, (Constraint, BoolConst)):
        return True
    if isinstance(query, And):
        return all(isinstance(child, (Constraint, BoolConst)) for child in query.children)
    return False


def dnf_terms(query: Query) -> list[frozenset[Constraint]]:
    """The DNF disjuncts of ``query`` as sets of constraints.

    ``TRUE`` yields one empty term; ``FALSE`` yields no terms.  Terms are
    deduplicated (idempotency) but *not* absorbed into one another — the
    paper's algorithms reason about term counts, so we keep the raw
    distribution apart from set-level duplicates.
    """
    if isinstance(query, BoolConst):
        return [frozenset()] if query.value else []
    if isinstance(query, Constraint):
        return [frozenset([query])]
    if isinstance(query, Or):
        seen: set[frozenset[Constraint]] = set()
        out: list[frozenset[Constraint]] = []
        for child in query.children:
            for term in dnf_terms(child):
                if term not in seen:
                    seen.add(term)
                    out.append(term)
        return out
    if isinstance(query, And):
        child_terms = [dnf_terms(child) for child in query.children]
        if any(not terms for terms in child_terms):
            return []
        seen = set()
        out = []
        for combo in product(*child_terms):
            term = frozenset().union(*combo)
            if term not in seen:
                seen.add(term)
                out.append(term)
        return out
    raise TypeError(f"unknown query node: {query!r}")


def to_dnf(query: Query) -> Query:
    """Convert ``query`` to DNF as a query tree (step 1 of Algorithm DNF)."""
    terms = dnf_terms(query)
    if not terms:
        return FALSE
    if terms == [frozenset()]:
        return TRUE
    disjuncts = [conj(sorted(term, key=str)) for term in terms]
    return disj(disjuncts)


def dnf_term_count(query: Query) -> int:
    """Number of DNF disjuncts *before* idempotent dedup.

    This is the product/sum recurrence the complexity analysis of Sections
    5 and 8 reasons with; it can be astronomically larger than anything
    :func:`dnf_terms` should materialize.
    """
    if isinstance(query, BoolConst):
        return 1 if query.value else 0
    if isinstance(query, Constraint):
        return 1
    if isinstance(query, Or):
        return sum(dnf_term_count(child) for child in query.children)
    if isinstance(query, And):
        count = 1
        for child in query.children:
            count *= dnf_term_count(child)
        return count
    raise TypeError(f"unknown query node: {query!r}")
