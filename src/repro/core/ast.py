"""Query abstract syntax trees.

A *constraint query* (Section 2 of the paper) is a Boolean expression, built
with ``AND`` / ``OR``, over *constraints* of the form ``[attr1 op value]``
(selection) or ``[attr1 op attr2]`` (join).  This module defines:

* :class:`AttrRef` — a (possibly view-qualified, possibly indexed) attribute
  reference such as ``ti``, ``fac.ln``, ``fac[1].ln``, ``fac.aubib.bib``;
* :class:`Constraint` — a single leaf constraint;
* :class:`And` / :class:`Or` — n-ary interior nodes;
* :data:`TRUE` / :data:`FALSE` — Boolean constants (``TRUE`` is the mapping
  of an untranslatable constraint, Section 2);
* smart constructors :func:`conj` and :func:`disj` that flatten nested
  same-type nodes so that ``AND`` and ``OR`` alternate along every path,
  exactly the tree shape Section 6 assumes.

All node types are immutable and hashable: the algorithms manipulate *sets*
of constraints (matchings, cross-matchings) throughout.

Immutability also makes every node a safe memoization site: constraints
cache their hash and rendered text in ``__dict__``, junctions in dedicated
slots (plus ``__weakref__`` so :mod:`repro.perf.intern` can hash-cons them
in a weak table).  The cached values are pure functions of the node, so
sharing nodes across queries — which interning does aggressively — never
changes observable behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

__all__ = [
    "AttrRef",
    "Query",
    "Constraint",
    "And",
    "Or",
    "Not",
    "BoolConst",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
    "neg",
    "attr",
    "C",
]


@dataclass(frozen=True)
class AttrRef:
    """A reference to an attribute, optionally qualified and indexed.

    ``path`` holds the dotted components: ``("ti",)`` for a bare attribute,
    ``("fac", "ln")`` for a view attribute, ``("fac", "aubib", "bib")`` for a
    source relation expanded from a view (Section 4.2).  ``index``
    distinguishes multiple instances of the same view, as in
    ``fac[1].ln = fac[2].ln`` (Section 4.2).
    """

    path: tuple[str, ...]
    index: int | None = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("AttrRef requires at least one path component")
        if not all(isinstance(part, str) and part for part in self.path):
            raise ValueError(f"AttrRef path components must be non-empty strings: {self.path!r}")

    @property
    def attr(self) -> str:
        """The attribute name proper (last path component)."""
        return self.path[-1]

    @property
    def view(self) -> str | None:
        """The containing view (first component) when qualified, else None."""
        return self.path[0] if len(self.path) > 1 else None

    @property
    def qualifier(self) -> tuple[str, ...]:
        """All path components except the attribute name."""
        return self.path[:-1]

    def with_index(self, index: int | None) -> "AttrRef":
        """Return a copy of this reference carrying ``index``."""
        return AttrRef(self.path, index)

    def unqualified(self) -> "AttrRef":
        """Return a bare reference to just the attribute name."""
        return AttrRef((self.attr,))

    def __str__(self) -> str:
        head = self.path[0]
        if self.index is not None:
            head = f"{head}[{self.index}]"
        return ".".join((head, *self.path[1:]))


def attr(spec: str) -> AttrRef:
    """Build an :class:`AttrRef` from a dotted string like ``"fac[1].ln"``.

    Only the first component may carry an ``[index]`` suffix.
    """
    parts = spec.split(".")
    head = parts[0]
    index: int | None = None
    if head.endswith("]") and "[" in head:
        head, bracket = head[:-1].split("[", 1)
        index = int(bracket)
    return AttrRef((head, *parts[1:]), index)


class Query:
    """Base class of all query-tree nodes."""

    __slots__ = ()

    # Memoized derived forms, set lazily (and only on immutable nodes) by
    # repro.perf.fingerprint.canonical_form and repro.core.normalize.
    # Junctions back these with slots; leaf dataclasses use __dict__.
    _canon: str
    _norm: "Query"

    # -- structural accessors -------------------------------------------------

    def constraints(self) -> frozenset["Constraint"]:
        """All distinct leaf constraints in this (sub)query — C(Q) in the paper."""
        return frozenset(self.iter_constraints())

    def iter_constraints(self) -> Iterator["Constraint"]:
        """Yield leaf constraints in left-to-right tree order (with repeats)."""
        raise NotImplementedError

    def node_count(self) -> int:
        """Number of parse-tree nodes — the compactness measure of Section 8."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the tree (a single constraint has depth 1)."""
        raise NotImplementedError

    @property
    def is_leaf(self) -> bool:
        """True for constraints and Boolean constants."""
        return True

    # -- convenience operators -------------------------------------------------

    def __and__(self, other: "Query") -> "Query":
        return conj([self, other])

    def __or__(self, other: "Query") -> "Query":
        return disj([self, other])


@dataclass(frozen=True)
class BoolConst(Query):
    """A Boolean constant leaf.

    ``TRUE`` is the translation of constraints the target cannot express at
    all (``S(f3) = True`` in Example 2); ``FALSE`` is the empty query.
    """

    value: bool

    def iter_constraints(self) -> Iterator["Constraint"]:
        return iter(())

    def node_count(self) -> int:
        return 1

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        return "true" if self.value else "false"

    def __bool__(self) -> bool:
        return self.value


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Constraint(Query):
    """A leaf constraint ``[lhs op rhs]``.

    ``rhs`` is an :class:`AttrRef` for join constraints and any hashable
    value (str, number, :mod:`repro.core.values` type, text pattern, ...)
    for selection constraints.
    """

    lhs: AttrRef
    op: str
    rhs: object

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, AttrRef):
            raise TypeError(f"Constraint lhs must be an AttrRef, got {self.lhs!r}")
        if not isinstance(self.op, str) or not self.op:
            raise TypeError(f"Constraint op must be a non-empty string, got {self.op!r}")
        hash(self.rhs)  # fail fast on unhashable values

    def __hash__(self) -> int:
        # Same formula as the dataclass-generated hash, memoized: constraints
        # are set/dict keys throughout the matcher, and interned nodes are
        # long-lived, so the cache pays for itself on the second use.
        memo = self.__dict__
        cached = memo.get("_hash")
        if cached is None:
            cached = hash((self.lhs, self.op, self.rhs))
            memo["_hash"] = cached
        return cached

    @property
    def is_join(self) -> bool:
        """True when this constrains two attributes against each other."""
        return isinstance(self.rhs, AttrRef)

    @property
    def is_selection(self) -> bool:
        return not self.is_join

    def iter_constraints(self) -> Iterator["Constraint"]:
        yield self

    def node_count(self) -> int:
        return 1

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        memo = self.__dict__
        cached = memo.get("_str")
        if cached is None:
            cached = f"[{self.lhs} {self.op} {_format_rhs(self.rhs)}]"
            memo["_str"] = cached
        return cached

    def __getstate__(self) -> dict[str, object]:
        # Memoized values never cross process boundaries: ``_hash`` is
        # salted per process, and a fresh process re-derives the rest.
        return {"lhs": self.lhs, "op": self.op, "rhs": self.rhs}


def C(lhs: str | AttrRef, op: str, rhs: object) -> Constraint:
    """Shorthand constraint constructor: ``C("fac.ln", "=", "Clancy")``."""
    if isinstance(lhs, str):
        lhs = attr(lhs)
    if isinstance(rhs, str) and op in {"=", "!=", "<", "<=", ">", ">="}:
        # Join shorthand: a dotted/indexed string on the rhs of a comparison
        # is an attribute reference only if explicitly requested via attr();
        # plain strings stay values.
        pass
    return Constraint(lhs, op, rhs)


def _format_rhs(rhs: object) -> str:
    if isinstance(rhs, AttrRef):
        return str(rhs)
    if isinstance(rhs, str):
        return f'"{rhs}"'
    return str(rhs)


class _Junction(Query):
    """Shared implementation of the n-ary interior nodes.

    The extra slots are memoization sites: ``_hash`` is filled eagerly (the
    matcher puts junctions in sets constantly), ``_str`` and ``_canon``
    lazily by :meth:`__str__` and :func:`repro.perf.fingerprint.
    canonical_form`.  ``__weakref__`` lets :mod:`repro.perf.intern` keep
    junctions in a weak hash-consing table.
    """

    __slots__ = ("children", "_hash", "_str", "_canon", "_norm", "__weakref__")
    _symbol = "?"

    children: tuple[Query, ...]
    _hash: int
    _str: str

    def __init__(self, children: Iterable[Query]):
        children = tuple(children)
        if len(children) < 2:
            raise ValueError(
                f"{type(self).__name__} requires >= 2 children; "
                f"use conj()/disj() which collapse trivial cases"
            )
        for child in children:
            if not isinstance(child, Query):
                raise TypeError(f"child must be a Query, got {child!r}")
            if type(child) is type(self):
                raise ValueError(
                    f"nested {type(self).__name__} nodes; build trees with "
                    f"conj()/disj() so operators alternate"
                )
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "_hash", hash((type(self).__name__, children)))

    def __setattr__(self, name: str, value: object) -> None:  # immutability
        raise AttributeError(f"{type(self).__name__} nodes are immutable")

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.children == self.children

    def __hash__(self) -> int:
        return self._hash

    def iter_constraints(self) -> Iterator[Constraint]:
        for child in self.children:
            yield from child.iter_constraints()

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)

    @property
    def is_leaf(self) -> bool:
        return False

    def __str__(self) -> str:
        try:
            return self._str
        except AttributeError:
            pass
        parts = []
        for child in self.children:
            text = str(child)
            if not child.is_leaf:
                text = f"({text})"
            parts.append(text)
        rendered = f" {self._symbol} ".join(parts)
        object.__setattr__(self, "_str", rendered)
        return rendered

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self.children)!r})"


class And(_Junction):
    """An n-ary conjunction node (children never themselves And nodes)."""

    __slots__ = ()
    _symbol = "and"


class Or(_Junction):
    """An n-ary disjunction node (children never themselves Or nodes)."""

    __slots__ = ()
    _symbol = "or"


@dataclass(frozen=True)
class Not(Query):
    """Logical negation — the library's *extension* beyond the paper.

    The paper's query language excludes negation (Section 2); vocabmap
    supports it as a preprocessing step: :func:`repro.core.negation.
    push_negations` drives every ``Not`` down to the leaves and replaces
    negated constraints with their complement operators, so the mapping
    algorithms themselves never see a ``Not`` node.
    """

    child: Query

    def __post_init__(self) -> None:
        if not isinstance(self.child, Query):
            raise TypeError(f"Not child must be a Query, got {self.child!r}")

    def iter_constraints(self) -> Iterator["Constraint"]:
        yield from self.child.iter_constraints()

    def node_count(self) -> int:
        return 1 + self.child.node_count()

    def depth(self) -> int:
        return 1 + self.child.depth()

    @property
    def is_leaf(self) -> bool:
        return False

    def __str__(self) -> str:
        inner = str(self.child)
        if not self.child.is_leaf:
            inner = f"({inner})"
        return f"not {inner}"


def neg(query: Query) -> Query:
    """Negation smart constructor: folds constants and double negation."""
    if query is TRUE or query == TRUE:
        return FALSE
    if query is FALSE or query == FALSE:
        return TRUE
    if isinstance(query, Not):
        return query.child
    return Not(query)


def conj(items: Iterable[Query]) -> Query:
    """Conjunction smart constructor.

    Flattens nested ``And`` children, drops ``TRUE``, short-circuits on
    ``FALSE``, dedupes identical children (idempotency ``x ∧ x = x``), and
    collapses the 0/1-child cases (empty conjunction is ``TRUE``).
    """
    out: list[Query] = []
    seen: set[Query] = set()
    for item in _flatten(items, And):
        if item is TRUE or item == TRUE:
            continue
        if item is FALSE or item == FALSE:
            return FALSE
        if item not in seen:
            seen.add(item)
            out.append(item)
    if not out:
        return TRUE
    if len(out) == 1:
        return out[0]
    return And(out)


def disj(items: Iterable[Query]) -> Query:
    """Disjunction smart constructor (dual of :func:`conj`)."""
    out: list[Query] = []
    seen: set[Query] = set()
    for item in _flatten(items, Or):
        if item is FALSE or item == FALSE:
            continue
        if item is TRUE or item == TRUE:
            return TRUE
        if item not in seen:
            seen.add(item)
            out.append(item)
    if not out:
        return FALSE
    if len(out) == 1:
        return out[0]
    return Or(out)


def _flatten(items: Iterable[Query], kind: type) -> Iterator[Query]:
    """Recursively splice children of ``kind`` nodes into the stream."""
    for item in items:
        if isinstance(item, kind):
            yield from _flatten(item.children, kind)
        else:
            yield item
