"""Query normalization (Section 4.2, Section 6).

Two normalizations keep rule patterns small and query trees canonical:

1. **Structural** — rebuild the tree through the :func:`conj`/:func:`disj`
   smart constructors so nested same-type operators collapse and ``AND`` /
   ``OR`` alternate along every path (the tree shape Algorithm TDQM
   assumes).

2. **Join orientation** — a join constraint can be written two ways
   (``[income > expense]`` ≡ ``[expense < income]``).  We adopt the
   normalized representation the paper suggests: prefer ``>`` over ``<``
   (and ``>=`` over ``<=``); for symmetric operators order the two
   attribute references lexicographically.  Mapping rules then only need
   patterns for the normalized form.
"""

from __future__ import annotations

from repro.core.ast import And, AttrRef, BoolConst, Constraint, Or, Query, conj, disj
from repro.core.operators import get_operator
from repro.obs import trace as obs

__all__ = ["normalize", "normalize_constraint"]

#: Comparison operators we flip away from during normalization.
_FLIP_AWAY = {"<": ">", "<=": ">="}


def normalize(query: Query) -> Query:
    """Return the canonical form of ``query`` (idempotent).

    Negation (the library's extension, see :mod:`repro.core.negation`) is
    eliminated first, so downstream algorithms always see negation-free
    trees.
    """
    from repro.core.negation import has_negation, push_negations

    with obs.span("normalize"):
        try:
            return query._norm
        except AttributeError:
            pass
        source = query
        if has_negation(query):
            obs.count("normalize.negations_pushed")
            query = push_negations(query)
        result = _normalize_positive(query)
        # Nodes are immutable, so the canonical form is a pure function of
        # the node and can be memoized on it (junction slot / leaf __dict__).
        try:
            object.__setattr__(source, "_norm", result)
        except (AttributeError, TypeError):
            pass
        return result


def _normalize_positive(query: Query) -> Query:
    if isinstance(query, BoolConst):
        return query
    if isinstance(query, Constraint):
        return normalize_constraint(query)
    if isinstance(query, And):
        return conj(_normalize_positive(child) for child in query.children)
    if isinstance(query, Or):
        return disj(_normalize_positive(child) for child in query.children)
    raise TypeError(f"unknown query node: {query!r}")


def normalize_constraint(constraint: Constraint) -> Constraint:
    """Orient a join constraint into the normalized representation."""
    if not constraint.is_join:
        return constraint
    lhs, op, rhs = constraint.lhs, constraint.op, constraint.rhs
    assert isinstance(rhs, AttrRef)
    if op in _FLIP_AWAY:
        return Constraint(rhs, _FLIP_AWAY[op], lhs)
    operator = get_operator(op)
    if operator.symmetric and _attr_key(rhs) < _attr_key(lhs):
        return Constraint(rhs, op, lhs)
    return constraint


def _attr_key(ref: AttrRef) -> tuple:
    return (ref.path, -1 if ref.index is None else ref.index)
