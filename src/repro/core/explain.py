"""Human-readable translation explanations.

``explain_translation`` narrates a full Algorithm TDQM run — the query
tree, the potential matchings M_p, every case taken during the traversal
(with PSafe partitions, Disjunctivize rewrites, and per-SCM matching
decisions), and the final mapping with its exactness verdict and size.
This is what the ``repro explain`` CLI command prints, and what an
integrator reads when a rule doesn't fire the way they expected.
"""

from __future__ import annotations

from repro.core.matching import Matcher
from repro.core.normalize import normalize
from repro.core.printer import render_tree, to_text
from repro.core.tdqm import tdqm_translate
from repro.obs.export import counters_table
from repro.obs.trace import tracing
from repro.rules.spec import MappingSpecification

__all__ = ["explain_translation"]


def explain_translation(
    query, spec: MappingSpecification, *, interpret: bool = False
) -> str:
    """A step-by-step account of translating ``query`` under ``spec``.

    ``interpret=True`` forces the interpreted matcher walk, so the
    narration shows the uncompiled path (each traversal step is labelled
    with the dispatch mode that produced it; see
    :mod:`repro.perf.compile`).
    """
    normalized = normalize(query)
    matcher: Matcher = spec.matcher(interpret=interpret)
    potential = matcher.potential(normalized.constraints())

    lines: list[str] = []
    lines.append(f"specification: {spec}")
    lines.append(f"dispatch     : {matcher.mode}")
    lines.append("")
    lines.append("query:")
    lines.extend("  " + line for line in render_tree(normalized).splitlines())
    lines.append("")
    lines.append(f"potential matchings M_p ({len(potential)}):")
    if potential:
        for matching in potential:
            group = " ∧ ".join(sorted(str(c) for c in matching.constraints))
            lines.append(
                f"  {matching.rule_name}: {group} -> {to_text(matching.emission)}"
            )
    else:
        lines.append("  (none — every constraint maps to True)")
    lines.append("")
    lines.append("traversal:")
    trace: list[str] = []
    with tracing("explain") as tracer:
        result = tdqm_translate(normalized, matcher, trace=trace)
    lines.extend("  " + line for line in trace)
    lines.append("")
    lines.append(f"mapping   : {to_text(result.mapping)}")
    lines.append(
        f"exact     : {result.exact}"
        + ("" if result.exact else "  (keep the original query in the filter F)")
    )
    lines.append(
        f"work      : scm_calls={result.stats.scm_calls} "
        f"psafe_calls={result.stats.psafe_calls} "
        f"blocks_rewritten={result.stats.blocks_rewritten}"
    )
    lines.append(
        f"size      : {result.mapping.node_count()} nodes "
        f"(input {normalized.node_count()})"
    )
    lines.append("")
    lines.append(f"counters  : ({tracer.root.elapsed_ms:.3f} ms traced)")
    lines.extend("  " + line for line in counters_table(tracer))
    return "\n".join(lines)
