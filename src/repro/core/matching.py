"""Rule matching engine — computes ``M(Q̂, R)`` (Section 4.1).

A *mapping rule* has a head of constraint patterns plus conditions, and a
tail of value-conversion functions (``let``) plus an ``emit`` clause.  A
*matching* of rule ``R`` in a simple conjunction ``Q̂`` is a subset of Q̂'s
constraints that together satisfies the head; evaluating the tail on the
binding produces the emission — by Definition 3 the minimal subsuming
mapping of that constraint group.

Key facts exploited here:

* rules are not recursive and do not consume constraints (Section 4.4), so
  matchings are *monotone*: the matchings of any sub-conjunction are exactly
  the matchings of the full constraint set that fit inside it.  The
  :class:`Matcher` therefore "prematches" once against all constraints (the
  ``M_p`` of Section 7.1.3) and answers subset queries by filtering.
* matchings are identified by their constraint *set*; the same set reached
  through symmetric pattern assignments is one matching (emissions from
  distinct bindings are all kept and conjoined — for sound rules they are
  equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.core.ast import AttrRef, Constraint, Query
from repro.core.errors import RuleError
from repro.obs import trace as obs

__all__ = [
    "Var",
    "ViewInstance",
    "AttrPattern",
    "ConstraintPattern",
    "Rule",
    "Matching",
    "RejectMatch",
    "Matcher",
    "match_rule",
]

Bindings = dict


@dataclass(frozen=True)
class Var:
    """A rule variable (written in capitals in the paper, e.g. ``P1``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ViewInstance:
    """A bound view variable: view name plus instance index (Section 4.2).

    Rule R5's ``V1`` binds to, e.g., ``ViewInstance("fac", None)`` or
    ``ViewInstance("fac", 1)``.  :meth:`ref` builds target attribute
    references under this instance, as emissions like ``fac.aubib.name``
    require.
    """

    view: str
    index: int | None = None

    def ref(self, *path: str) -> AttrRef:
        """An AttrRef ``view[index].path...`` rooted at this instance."""
        if not path:
            raise ValueError("ViewInstance.ref needs at least one component")
        return AttrRef((self.view, *path), self.index)

    def __str__(self) -> str:
        return self.view if self.index is None else f"{self.view}[{self.index}]"


class RejectMatch(Exception):
    """Raised by a ``let`` function to veto a candidate matching.

    Lets conversion functions do value-dependent filtering (e.g. an unknown
    department code) without the rule author writing a separate condition.
    """


@dataclass(frozen=True)
class AttrPattern:
    """Pattern over an attribute reference.

    Each component is a literal, a :class:`Var`, or ``None`` (don't care):

    * ``view`` — the qualifying view; ``None`` accepts any qualification
      (including none), a ``Var`` binds a :class:`ViewInstance` and requires
      the reference to be qualified;
    * ``attr`` — the attribute name (a ``Var`` binds the name string);
    * ``index`` — the view-instance index; a ``Var`` binds the index (which
      may be ``None``: the paper reads ``fac.bib`` as ``fac[i].bib`` for
      any ``i``).
    """

    attr: str | Var
    view: str | Var | None = None
    index: int | Var | None = None


@dataclass(frozen=True)
class ConstraintPattern:
    """Pattern over one constraint ``[lhs op rhs]``.

    ``lhs`` is an :class:`AttrPattern`, or a :class:`Var` binding the whole
    :class:`AttrRef` (rule R3 of Figure 5 binds ``A1`` this way).  ``rhs``
    is a :class:`Var` (binds the value *or* joined AttrRef), a literal
    value, or an :class:`AttrPattern` (join patterns like R5's ``V2.ln``).
    """

    lhs: AttrPattern | Var
    op: str | Var
    rhs: object


@dataclass(frozen=True)
class Rule:
    """One mapping rule (Figure 3 / Figure 5 rows).

    ``conditions`` are predicates over the binding dict, evaluated once all
    patterns are assigned.  ``let`` computes derived values in order (the
    tail's conversion functions); a let function may raise
    :class:`RejectMatch`.  ``emit`` builds the target query from the final
    bindings.  ``exact=True`` declares the emission *equivalent* to the
    matched constraints (not merely subsuming); the filter builder of
    :mod:`repro.core.filters` uses this to compute the residue F of Eq. 3.
    ``exact`` may also be a predicate over the final bindings, for rules
    whose exactness is value-dependent (rule R4 is exact only when
    ``RewriteTextPat`` did not have to relax the pattern).
    """

    name: str
    patterns: tuple[ConstraintPattern, ...]
    emit: Callable[[Mapping], Query]
    conditions: tuple[Callable[[Mapping], bool], ...] = ()
    let: tuple[tuple[str, Callable[[Mapping], object]], ...] = ()
    exact: bool | Callable[[Mapping], bool] = False
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.patterns:
            raise RuleError(f"rule {self.name!r} has no constraint patterns")

    def __str__(self) -> str:
        return f"Rule({self.name})"


@dataclass(frozen=True)
class Matching:
    """One matching: the constraint group, its rule, and the emission."""

    constraints: frozenset[Constraint]
    rule_name: str
    emission: Query
    exact: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(sorted(str(c) for c in self.constraints))
        return f"{{{body}}} --{self.rule_name}--> {self.emission}"


# ---------------------------------------------------------------------------
# Unification
# ---------------------------------------------------------------------------


def _bind(bindings: Bindings, var: Var, value: object) -> Bindings | None:
    """Extend ``bindings`` with ``var = value``; None on conflict."""
    if var.name in bindings:
        return bindings if bindings[var.name] == value else None
    extended = dict(bindings)
    extended[var.name] = value
    return extended


def _unify_attr(
    pattern: AttrPattern | Var, ref: AttrRef, bindings: Bindings
) -> Bindings | None:
    if isinstance(pattern, Var):
        return _bind(bindings, pattern, ref)
    # attribute name
    if isinstance(pattern.attr, Var):
        bindings = _bind(bindings, pattern.attr, ref.attr)
        if bindings is None:
            return None
    elif pattern.attr != ref.attr:
        return None
    # view qualifier
    if isinstance(pattern.view, Var):
        if ref.view is None:
            return None
        bindings = _bind(bindings, pattern.view, ViewInstance(ref.view, ref.index))
        if bindings is None:
            return None
    elif isinstance(pattern.view, str):
        if ref.view != pattern.view:
            return None
    # instance index
    if isinstance(pattern.index, Var):
        bindings = _bind(bindings, pattern.index, ref.index)
        if bindings is None:
            return None
    elif isinstance(pattern.index, int):
        if ref.index != pattern.index:
            return None
    return bindings


def _unify_constraint(
    pattern: ConstraintPattern, constraint: Constraint, bindings: Bindings
) -> Bindings | None:
    if isinstance(pattern.op, Var):
        bindings = _bind(bindings, pattern.op, constraint.op)
        if bindings is None:
            return None
    elif pattern.op != constraint.op:
        return None

    bindings = _unify_attr(pattern.lhs, constraint.lhs, bindings)
    if bindings is None:
        return None

    rhs_pattern = pattern.rhs
    if isinstance(rhs_pattern, Var):
        return _bind(bindings, rhs_pattern, constraint.rhs)
    if isinstance(rhs_pattern, AttrPattern):
        if not isinstance(constraint.rhs, AttrRef):
            return None
        return _unify_attr(rhs_pattern, constraint.rhs, bindings)
    return bindings if rhs_pattern == constraint.rhs else None


# ---------------------------------------------------------------------------
# Rule evaluation
# ---------------------------------------------------------------------------


def _quick_compatible(pattern: ConstraintPattern, constraint: Constraint) -> bool:
    """Cheap literal-field screen before full unification.

    Filters each pattern's candidate constraints by literal operator and
    attribute-name fields — variables pass everything.  Purely an
    optimization: unification re-checks all of it.
    """
    if isinstance(pattern.op, str) and pattern.op != constraint.op:
        return False
    lhs = pattern.lhs
    if isinstance(lhs, AttrPattern):
        if isinstance(lhs.attr, str) and lhs.attr != constraint.lhs.attr:
            return False
        if isinstance(lhs.view, str) and constraint.lhs.view != lhs.view:
            return False
    return True


def match_rule(
    rule: Rule,
    constraints: Sequence[Constraint],
    pools: list[list[Constraint]] | None = None,
) -> list[Matching]:
    """All matchings of ``rule`` among ``constraints``.

    Patterns are assigned to *distinct* constraints (a matching is a set);
    different assignments yielding the same set and emission collapse.
    ``pools`` lets an index-equipped caller supply the per-pattern
    candidate pools it already computed (see
    :class:`repro.perf.index.CompiledRuleIndex`); the screen is identical
    either way, and unification re-checks everything regardless.
    """
    candidates = pools if pools is not None else [
        [c for c in constraints if _quick_compatible(pattern, c)]
        for pattern in rule.patterns
    ]
    if any(not pool for pool in candidates):
        return []
    results: list[Matching] = []
    seen: set[tuple[frozenset[Constraint], Query]] = set()
    _search(rule, candidates, 0, {}, [], results, seen)
    return results


def _search(
    rule: Rule,
    candidates: list[list[Constraint]],
    pattern_idx: int,
    bindings: Bindings,
    chosen: list[Constraint],
    results: list[Matching],
    seen: set,
) -> None:
    if pattern_idx == len(rule.patterns):
        _finish(rule, bindings, chosen, results, seen)
        return
    pattern = rule.patterns[pattern_idx]
    for constraint in candidates[pattern_idx]:
        if constraint in chosen:
            continue
        extended = _unify_constraint(pattern, constraint, bindings)
        if extended is None:
            continue
        chosen.append(constraint)
        _search(rule, candidates, pattern_idx + 1, extended, chosen, results, seen)
        chosen.pop()


def _finish(
    rule: Rule,
    bindings: Bindings,
    chosen: list[Constraint],
    results: list[Matching],
    seen: set,
) -> None:
    try:
        if not all(condition(bindings) for condition in rule.conditions):
            return
    except KeyError as exc:
        raise RuleError(f"rule {rule.name!r}: condition uses unbound variable {exc}") from exc

    final = dict(bindings)
    try:
        for name, fn in rule.let:
            final[name] = fn(final)
        emission = rule.emit(final)
    except RejectMatch:
        return
    except KeyError as exc:
        raise RuleError(f"rule {rule.name!r}: unbound variable {exc}") from exc

    if not isinstance(emission, Query):
        raise RuleError(
            f"rule {rule.name!r} emitted {emission!r}, which is not a Query"
        )
    exact = rule.exact(final) if callable(rule.exact) else rule.exact
    key = (frozenset(chosen), emission)
    if key in seen:
        return
    seen.add(key)
    results.append(
        Matching(frozenset(chosen), rule.name, emission, exact=exact)
    )


# ---------------------------------------------------------------------------
# Matcher with prematching cache
# ---------------------------------------------------------------------------


class Matcher:
    """Matchings over a fixed rule list, with the Section 7.1.3 prematch.

    ``potential(constraints)`` computes ``M_p`` once per distinct universe;
    ``matchings(subset)`` then answers any subset query by filtering, which
    is valid because matching is monotone (rules neither consume constraints
    nor look outside the matched group).

    ``index`` (a :class:`repro.perf.index.CompiledRuleIndex` built over
    the *same* rule tuple) narrows each prematch to the rules whose head
    signatures can bind the universe — results are identical, only the
    fruitless probes are skipped.  ``MappingSpecification.matcher()``
    attaches it automatically; an index probed after its specification
    mutated raises :class:`~repro.core.errors.StaleIndexError`.

    With an index attached, each candidate rule is dispatched through its
    **compiled closure** (:mod:`repro.perf.compile`) — bit-identical to
    the interpreted walk, just without the per-call pattern dispatch.
    ``interpret=True`` forces the interpreted ``match_rule`` walk even
    when an index is attached (index dispatch still narrows candidates,
    as PR-3 shipped it); it is both the escape hatch and the equivalence
    oracle the compiled path is property-tested against.
    """

    def __init__(self, rules: Sequence[Rule], index=None, *, interpret: bool = False):
        self.rules = tuple(rules)
        if index is not None and len(index) != len(self.rules):
            raise RuleError(
                f"compiled index covers {len(index)} rules but the matcher "
                f"got {len(self.rules)}"
            )
        self._index = index
        self._interpret = bool(interpret)
        self._universe: frozenset[Constraint] | None = None
        self._potential: list[Matching] = []

    @property
    def mode(self) -> str:
        """``"compiled"`` or ``"interpreted"`` — which walk rules take."""
        if self._index is not None and not self._interpret:
            return "compiled"
        return "interpreted"

    def potential(self, constraints: Iterable[Constraint]) -> list[Matching]:
        """``M_p``: all matchings over the constraint universe seen so far.

        The universe only grows: the EDNF of a *subquery* must still see
        potential matchings reaching outside it (Section 7.1.3 keeps
        ``f_l`` essential exactly because of the cross-matching with the
        ``f_f`` elsewhere in the tree).  Use a fresh matcher per
        translation so universes of unrelated queries don't mix.
        """
        universe = frozenset(constraints) | (self._universe or frozenset())
        if universe != self._universe:
            if self._index is not None and not self._interpret:
                # Compiled dispatch: the index memoizes the whole prematch
                # per universe (pure rules + pinned version make M_p a
                # function of the universe alone).
                cached = self._index.prematch_get(universe)
                if cached is not None:
                    self._universe = universe
                    self._potential = list(cached)
                    obs.count("matcher.matchings", len(self._potential))
                    return list(self._potential)
            ordered = sorted(universe, key=str)
            found: list[Matching] = []
            if self._index is not None:
                by_attr: dict[str, list[Constraint]] = {}
                for constraint in ordered:
                    by_attr.setdefault(constraint.lhs.attr, []).append(constraint)
                candidates = self._index.candidate_ids(by_attr)
                if obs.enabled():
                    obs.count("matcher.prematch.misses")
                    obs.count("matcher.rules_tried", len(candidates))
                compiled_dispatch = not self._interpret
                for rule_id in candidates:
                    pools = self._index.pools(rule_id, by_attr, ordered)
                    if pools is None:
                        continue
                    if compiled_dispatch:
                        found.extend(self._index.compiled(rule_id).matchings(pools))
                    else:
                        found.extend(match_rule(self.rules[rule_id], ordered, pools=pools))
                if compiled_dispatch:
                    self._index.prematch_store(universe, found)
            else:
                if obs.enabled():
                    obs.count("matcher.prematch.misses")
                    obs.count("matcher.rules_tried", len(self.rules))
                for rule in self.rules:
                    found.extend(match_rule(rule, ordered))
            self._universe = universe
            self._potential = found
            obs.count("matcher.matchings", len(found))
        else:
            obs.count("matcher.prematch.hits")
        return list(self._potential)

    def matchings(self, constraints: Iterable[Constraint]) -> list[Matching]:
        """``M(Q̂, K)`` for the conjunction of ``constraints``."""
        subset = frozenset(constraints)
        cached = self._universe is not None and subset <= self._universe
        if obs.enabled():
            obs.count("matcher.subset_queries")
            if cached:
                obs.count("matcher.prematch.hits")
        if not cached:
            self.potential(subset | (self._universe or frozenset()))
        return [m for m in self._potential if m.constraints <= subset]
