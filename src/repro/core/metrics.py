"""Query-shape metrics used by the Section 8 benches.

Section 8 measures *compactness* as the number of parse-tree nodes and
compares the TDQM output against the DNF baseline (worst-case ratio 2^n).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import And, BoolConst, Constraint, Or, Query
from repro.core.dnf import dnf_term_count

__all__ = ["QueryStats", "query_stats", "compactness", "compactness_ratio"]


@dataclass(frozen=True)
class QueryStats:
    """Shape summary for one query tree."""

    node_count: int
    leaf_count: int
    distinct_constraints: int
    depth: int
    and_nodes: int
    or_nodes: int
    dnf_terms: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"nodes={self.node_count} leaves={self.leaf_count} "
            f"distinct={self.distinct_constraints} depth={self.depth} "
            f"and={self.and_nodes} or={self.or_nodes} dnf_terms={self.dnf_terms}"
        )


def query_stats(query: Query) -> QueryStats:
    """Compute a :class:`QueryStats` summary for ``query``."""
    leaves = and_nodes = or_nodes = 0
    stack = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            and_nodes += 1
            stack.extend(node.children)
        elif isinstance(node, Or):
            or_nodes += 1
            stack.extend(node.children)
        elif isinstance(node, (Constraint, BoolConst)):
            leaves += 1
        else:
            raise TypeError(f"unknown query node: {node!r}")
    return QueryStats(
        node_count=query.node_count(),
        leaf_count=leaves,
        distinct_constraints=len(query.constraints()),
        depth=query.depth(),
        and_nodes=and_nodes,
        or_nodes=or_nodes,
        dnf_terms=dnf_term_count(query),
    )


def compactness(query: Query) -> int:
    """Parse-tree node count — the Section 8 compactness measure."""
    return query.node_count()


def compactness_ratio(dnf_query: Query, tdqm_query: Query) -> float:
    """How many times larger the DNF mapping is than the TDQM mapping."""
    return compactness(dnf_query) / max(1, compactness(tdqm_query))
