"""Subsumption and equivalence checks (Definition 1, Figure 1).

Two complementary checkers:

* **Propositional** — treat every distinct constraint as an independent
  Boolean atom and compare truth tables.  This is the right tool for
  comparing two *translations built from the same emissions* (e.g. TDQM vs
  Algorithm DNF): they mention the same atoms, and logical equivalence over
  those atoms is exactly what Theorems 1/2 promise.  Exhaustive up to
  :data:`EXACT_ATOM_LIMIT` atoms, randomized (seeded, one-sided) beyond.

* **Empirical** — evaluate both queries over a dataset through a caller-
  supplied evaluator and compare the selected subsets (the σ_Q'(D) ⊇
  σ_Q(D) picture of Figure 1).  This is how the map-source bench checks
  *semantic* subsumption across different vocabularies, where atoms don't
  line up propositionally.
"""

from __future__ import annotations

import random
from itertools import product
from collections.abc import Callable, Mapping

from repro.core.ast import And, BoolConst, Constraint, Not, Or, Query

__all__ = [
    "evaluate_assignment",
    "prop_implies",
    "prop_equivalent",
    "prop_satisfiable",
    "empirical_subsumes",
    "empirical_equivalent",
    "EXACT_ATOM_LIMIT",
]

#: Up to this many distinct atoms, implication checks are exhaustive.
EXACT_ATOM_LIMIT = 18

#: Sample size for the randomized fallback above the exact limit.
_SAMPLES = 4096


def evaluate_assignment(query: Query, assignment: Mapping[Constraint, bool]) -> bool:
    """Evaluate a query under a Boolean assignment to its constraints."""
    if isinstance(query, BoolConst):
        return query.value
    if isinstance(query, Constraint):
        return assignment[query]
    if isinstance(query, And):
        return all(evaluate_assignment(child, assignment) for child in query.children)
    if isinstance(query, Or):
        return any(evaluate_assignment(child, assignment) for child in query.children)
    if isinstance(query, Not):
        return not evaluate_assignment(query.child, assignment)
    raise TypeError(f"unknown query node: {query!r}")


def _assignments(atoms: list[Constraint], exhaustive: bool):
    if exhaustive:
        for bits in product((False, True), repeat=len(atoms)):
            yield dict(zip(atoms, bits))
    else:
        rng = random.Random(0xC0FFEE)
        for _ in range(_SAMPLES):
            yield {atom: rng.random() < 0.5 for atom in atoms}


def prop_implies(narrow: Query, broad: Query) -> bool:
    """Propositional ``narrow ⊆ broad`` (every model of narrow models broad).

    Exact for small atom counts; above :data:`EXACT_ATOM_LIMIT` the check
    is randomized and a ``True`` answer means "no counterexample found".
    """
    atoms = sorted(narrow.constraints() | broad.constraints(), key=str)
    exhaustive = len(atoms) <= EXACT_ATOM_LIMIT
    for assignment in _assignments(atoms, exhaustive):
        if evaluate_assignment(narrow, assignment) and not evaluate_assignment(
            broad, assignment
        ):
            return False
    return True


def prop_equivalent(left: Query, right: Query) -> bool:
    """Propositional equivalence (implication both ways)."""
    atoms = sorted(left.constraints() | right.constraints(), key=str)
    exhaustive = len(atoms) <= EXACT_ATOM_LIMIT
    for assignment in _assignments(atoms, exhaustive):
        if evaluate_assignment(left, assignment) != evaluate_assignment(
            right, assignment
        ):
            return False
    return True


def prop_satisfiable(query: Query) -> bool:
    """Does any Boolean assignment to the constraints satisfy ``query``?

    Exhaustive up to :data:`EXACT_ATOM_LIMIT` atoms, randomized beyond —
    above the limit a ``False`` answer means "no model found", the same
    one-sided caveat as :func:`prop_implies`.  Used by the static analyzer
    to flag rule pairs whose conjoined emissions are contradictory.
    """
    atoms = sorted(query.constraints(), key=str)
    exhaustive = len(atoms) <= EXACT_ATOM_LIMIT
    for assignment in _assignments(atoms, exhaustive):
        if evaluate_assignment(query, assignment):
            return True
    return False


def empirical_subsumes(
    broad: Query,
    narrow: Query,
    dataset: Iterable,
    evaluator: Callable[[Query, object], bool],
) -> bool:
    """Does ``broad`` select a superset of ``narrow`` over ``dataset``?

    ``evaluator(query, item) -> bool`` supplies the semantics (typically
    :func:`repro.engine.eval.evaluate` partially applied to a schema).
    A ``True`` result is evidence of subsumption *on this dataset* — the
    empirical counterpart of Figure 1.
    """
    for item in dataset:
        if evaluator(narrow, item) and not evaluator(broad, item):
            return False
    return True


def empirical_equivalent(
    left: Query,
    right: Query,
    dataset: Iterable,
    evaluator: Callable[[Query, object], bool],
) -> bool:
    """Do both queries select the same subset of ``dataset``?"""
    for item in dataset:
        if evaluator(left, item) != evaluator(right, item):
            return False
    return True
