"""Structured constraint values.

Constraints compare attributes against values.  Besides plain Python scalars
(strings, ints, floats), the paper's examples use several structured values:

* dates and date periods — ``[pyear = 1997]``, ``[pdate during May/97]``
  (Figure 2, rules R6/R7 of Figure 3);
* coordinate ranges and points for the map source of Example 8 —
  ``[X_range = (10:30)]``, ``[C_ll = (10, 20)]``;
* text patterns (``java (near) jdk``) live in :mod:`repro.text.patterns`.

Every value type here is immutable and hashable so constraints can be used
as set members (matchings are *sets* of constraints throughout the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Date",
    "Year",
    "Month",
    "DatePeriod",
    "Range",
    "Point",
    "MONTH_NAMES",
    "month_name",
]

#: Abbreviated month names used in the paper's ``May/97`` notation.
MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


def month_name(month: int) -> str:
    """Return the paper-style abbreviation for a 1-based month number."""
    if not 1 <= month <= 12:
        raise ValueError(f"month must be in 1..12, got {month}")
    return MONTH_NAMES[month - 1]


@dataclass(frozen=True, order=True)
class Date:
    """A concrete calendar date (day may be omitted for month granularity)."""

    year: int
    month: int
    day: int = 1

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}-{self.day:02d}"


class DatePeriod:
    """Base class for date periods usable with the ``during`` operator.

    Subclasses implement :meth:`covers`, which decides whether a concrete
    :class:`Date` (or a bare year int) falls inside the period.
    """

    def covers(self, date: object) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Year(DatePeriod):
    """A whole-year period, e.g. ``during 97`` emitted by rule R7."""

    year: int

    def covers(self, date: object) -> bool:
        if isinstance(date, Date):
            return date.year == self.year
        if isinstance(date, int):
            return date == self.year
        return False

    def __str__(self) -> str:
        return f"{self.year % 100:02d}" if self.year >= 1900 else str(self.year)


@dataclass(frozen=True)
class Month(DatePeriod):
    """A single-month period, e.g. ``during May/97`` emitted by rule R6."""

    year: int
    month: int

    def covers(self, date: object) -> bool:
        if isinstance(date, Date):
            return date.year == self.year and date.month == self.month
        return False

    def __str__(self) -> str:
        return f"{month_name(self.month)}/{self.year % 100:02d}"


@dataclass(frozen=True, order=True)
class Range:
    """A closed numeric interval, printed ``(lo:hi)`` as in Example 8."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty range: lo={self.lo} > hi={self.hi}")

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        return f"({_fmt_num(self.lo)}:{_fmt_num(self.hi)})"


@dataclass(frozen=True, order=True)
class Point:
    """A 2-D coordinate, printed ``(x, y)`` as in Example 8."""

    x: float
    y: float

    def __str__(self) -> str:
        return f"({_fmt_num(self.x)}, {_fmt_num(self.y)})"


def _fmt_num(value: float) -> str:
    """Format a number without a trailing ``.0`` for integral floats."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
