"""Safety and separability of conjunctions (Section 7.1).

*Safety* (Definitions 5 and 6) is the cheap, sufficient test the paper
recommends: a conjunction is safe when no cross-matching spans its
conjuncts, checked over the essential DNF.  *Separability* (Definition 2)
is the semantic property safety approximates; the precise conditions
(Theorems 3 and 4) additionally test whether each cross-matching is
*essential* via subsumption checks — expensive, domain-specific, and only
needed when a target has interrelated attribute pairs like Example 8's
map source.

The precise checks are parameterized by a ``subsumes(broad, narrow)``
callable so callers can plug in semantic knowledge (the map bench passes
an empirical evaluator over a coordinate grid); the default is the
propositional check, under which every cross-matching looks essential —
i.e. precise degenerates to safety, the paper's expected common case.
"""

from __future__ import annotations

from itertools import product
from collections.abc import Callable

from repro.core.ast import Constraint, Query, conj
from repro.core.matching import Matcher
from repro.core.psafe import psafe
from repro.core.scm import scm
from repro.core.subsume import prop_implies

__all__ = [
    "is_safe_base",
    "is_safe",
    "base_cross_matchings",
    "is_separable_base",
    "is_separable_general",
]


def base_cross_matchings(
    conjuncts: list[frozenset[Constraint]], matcher: Matcher
) -> list[frozenset[Constraint]]:
    """δ of Definition 5: matchings of the whole not inside any conjunct."""
    union = frozenset().union(*conjuncts)
    whole = {m.constraints for m in matcher.matchings(union)}
    inside: set[frozenset[Constraint]] = set()
    for conjunct in conjuncts:
        inside.update(m.constraints for m in matcher.matchings(conjunct))
    return sorted(whole - inside, key=lambda s: (len(s), str(sorted(map(str, s)))))


def is_safe_base(
    conjuncts: list[frozenset[Constraint]], matcher: Matcher
) -> bool:
    """Definition 5: a simple-conjunction conjunction is safe iff δ = ∅."""
    return not base_cross_matchings(conjuncts, matcher)


def is_safe(conjuncts: list[Query], matcher: Matcher) -> bool:
    """Definition 6, tested through EDNF (Section 7.1.3).

    ``∧(conjuncts)`` is safe iff no disjunct of ``D(Q̂)`` (built from the
    conjuncts' essential DNF) contains a cross-matching — equivalently,
    Algorithm PSafe would put every conjunct in its own block.
    """
    if len(conjuncts) <= 1:
        return True
    return psafe(conjuncts, matcher).is_fully_separable


def is_separable_base(
    conjuncts: list[frozenset[Constraint]],
    matcher: Matcher,
    subsumes: Callable[[Query, Query], bool] | None = None,
) -> bool:
    """Theorem 3: precise separability for simple-conjunction conjunctions.

    Separable iff every cross-matching m satisfies
    ``S(Č1)...S(Čn) ⊆ S(∧m)`` (Eq. 6) — the cross-matching is *redundant*.
    ``subsumes(broad, narrow)`` decides ``narrow ⊆ broad``; the default
    propositional check treats all cross-matchings as essential.
    """
    subsumes = subsumes or (lambda broad, narrow: prop_implies(narrow, broad))
    delta = base_cross_matchings(conjuncts, matcher)
    if not delta:
        return True
    separated = conj(scm(conjunct, matcher) for conjunct in conjuncts)
    return all(subsumes(scm(m, matcher), separated) for m in delta)


def is_separable_general(
    conjuncts: list[Query],
    matcher: Matcher,
    subsumes: Callable[[Query, Query], bool] | None = None,
) -> bool:
    """Theorem 4: precise separability for disjunctive-query conjunctions.

    Eq. 8 requires, for every disjunct ``D̂_j = I_1k1 ... I_nkn`` of
    Disjunctivize(Q̂), that ``Z_j − S(D̂_j)`` be absorbed by the other
    disjuncts' mappings, where ``Z_j = S(I_1k1) ... S(I_nkn)``.  Since
    ``S(D̂_j) ⊆ Z_j`` always (Lemma 1), Eq. 8 is equivalent to
    ``Z_j ⊆ S(D̂_j) ∨ Σ_{j'≠j} S(D̂_j') = S(Q̂)`` — which is the form
    checked here (it needs no negation).
    """
    from repro.core.ast import Or, disj
    from repro.core.tdqm import tdqm  # local import to avoid a cycle

    subsumes = subsumes or (lambda broad, narrow: prop_implies(narrow, broad))
    if len(conjuncts) <= 1:
        return True

    alternatives = [
        list(child.children) if isinstance(child, Or) else [child]
        for child in conjuncts
    ]
    combos = list(product(*alternatives))
    full_mapping = disj(tdqm(conj(combo), matcher) for combo in combos)
    for combo in combos:
        z_j = conj(tdqm(ingredient, matcher) for ingredient in combo)
        if not subsumes(full_mapping, z_j):
            return False
    return True
