"""The paper's contribution: query algebra + mapping algorithms."""

from repro.core.ast import (
    FALSE,
    TRUE,
    And,
    AttrRef,
    BoolConst,
    C,
    Constraint,
    Not,
    Or,
    Query,
    attr,
    conj,
    disj,
    neg,
)
from repro.core.dnf import dnf_term_count, dnf_terms, is_simple_conjunction, to_dnf
from repro.core.dnf_mapper import DNFMapResult, dnf_map, dnf_map_translate
from repro.core.ednf import EdnfInfo, ednf, format_terms
from repro.core.explain import explain_translation
from repro.core.errors import (
    CapabilityError,
    EvaluationError,
    ParseError,
    RuleError,
    SchemaError,
    SpecificationError,
    TranslationError,
    VocabMapError,
)
from repro.core.filters import FilterPlan, build_filter, translate_for_sources
from repro.core.matching import Matcher, Matching, RejectMatch, Rule, Var, ViewInstance
from repro.core.metrics import QueryStats, compactness, compactness_ratio, query_stats
from repro.core.negation import complement_constraint, has_negation, push_negations
from repro.core.normalize import normalize, normalize_constraint
from repro.core.parser import parse_query
from repro.core.printer import render_tree, to_text
from repro.core.psafe import PSafeResult, psafe, psafe_partition
from repro.core.safety import (
    base_cross_matchings,
    is_safe,
    is_safe_base,
    is_separable_base,
    is_separable_general,
)
from repro.core.scm import SCMResult, scm, scm_translate, suppress_submatchings
from repro.core.theory import (
    conjunction_satisfiable,
    constraint_implies,
    query_implies,
    simplify_query,
)
from repro.core.subsume import (
    empirical_equivalent,
    empirical_subsumes,
    prop_equivalent,
    prop_implies,
)
from repro.core.tdqm import (
    TdqmStats,
    TranslationResult,
    disjunctivize,
    tdqm,
    tdqm_translate,
)
from repro.core.values import Date, Month, Point, Range, Year

__all__ = [
    # ast
    "Query", "Constraint", "And", "Or", "Not", "BoolConst", "TRUE", "FALSE",
    "AttrRef", "attr", "C", "conj", "disj", "neg",
    # negation extension
    "push_negations", "has_negation", "complement_constraint",
    # values
    "Date", "Year", "Month", "Range", "Point",
    # parsing / printing
    "parse_query", "to_text", "render_tree",
    # normalization / DNF
    "normalize", "normalize_constraint", "to_dnf", "dnf_terms",
    "dnf_term_count", "is_simple_conjunction",
    # matching / rules
    "Var", "ViewInstance", "Rule", "Matching", "Matcher", "RejectMatch",
    # algorithms
    "scm", "scm_translate", "SCMResult", "suppress_submatchings",
    "dnf_map", "dnf_map_translate", "DNFMapResult",
    "ednf", "EdnfInfo", "format_terms",
    "psafe", "psafe_partition", "PSafeResult",
    "tdqm", "tdqm_translate", "TranslationResult", "TdqmStats", "disjunctivize",
    # safety / subsumption
    "is_safe", "is_safe_base", "is_separable_base", "is_separable_general",
    "base_cross_matchings",
    "prop_implies", "prop_equivalent", "empirical_subsumes", "empirical_equivalent",
    # theory / minimization
    "constraint_implies", "conjunction_satisfiable", "simplify_query",
    "query_implies",
    # filters / explain
    "build_filter", "translate_for_sources", "FilterPlan",
    "explain_translation",
    # metrics
    "query_stats", "QueryStats", "compactness", "compactness_ratio",
    # errors
    "VocabMapError", "ParseError", "RuleError", "SpecificationError",
    "CapabilityError", "TranslationError", "EvaluationError", "SchemaError",
]
