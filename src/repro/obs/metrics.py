"""Process-lifetime metrics: the continuous-telemetry substrate.

A :class:`~repro.obs.trace.Tracer` is request-scoped by design — it
records one activity and is thrown away with the response.  A long-lived
``repro serve`` therefore accumulated nothing an operator (or the
ROADMAP's cost-based planner) could consult.  This module adds the
missing half: a thread-safe, process-lifetime :class:`MetricsRegistry`
holding

* **counters** — monotonic totals plus a rolling time window, so both
  "how many ever" and "how many per second right now" are answerable;
* **gauges** — last-write-wins point-in-time values (with a
  high-water-mark variant);
* **histograms** — fixed-bucket latency distributions that answer
  p50/p95/p99 by interpolating inside the bucket containing the target
  rank, without storing samples (O(buckets) memory per histogram,
  O(log buckets) per observation);
* **per-source scorecards** — latency percentiles, error/retry/timeout
  rates, breaker state, and row volume for every mediated source, fed
  by :func:`repro.resilience.adapter.record_outcome`;
* a bounded **slow-query log** keyed by canonical query fingerprint.

**Installation and the tee.**  One registry is :func:`install`\\ ed per
process (what ``repro serve --metrics`` does).  The module-level hooks
in :mod:`repro.obs.trace` — :func:`~repro.obs.trace.count`,
:func:`~repro.obs.trace.gauge`, :func:`~repro.obs.trace.gauge_max` —
tee every record into the installed registry *in addition to* the
request tracer, so the counters the pipeline already emits
(``perf.cache.*``, ``serve.*``, ``mediator.*``, ``resilience.*``)
accumulate for the life of the process with no new instrumentation at
the call sites.  When nothing is installed the tee costs one module
global load and one ``is None`` test — the same zero-overhead contract
as the tracer hooks.

The registry is lock-guarded and safe to record into from any number of
threads; snapshots are consistent (taken under the same lock).  It has
no dependencies beyond the standard library and imports nothing from
:mod:`repro.core`, preserving the obs package's layering rule.

Rendering: :func:`repro.obs.export.render_prometheus` emits the
Prometheus text exposition format; the ``metrics`` / ``sources`` /
``slowlog`` / ``health`` protocol ops of a running server return the
JSON snapshots (see ``docs/serving.md``).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections.abc import Iterator
from contextlib import contextmanager
from math import ceil

from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollingWindow",
    "SlowQueryLog",
    "SourceScorecard",
    "active_registry",
    "aggregate_scorecards",
    "install",
    "installed",
    "uninstall",
]

#: Histogram bucket upper bounds in seconds: geometric 100µs → 10s, the
#: range an in-process translation (~µs–ms) through a faulty fan-out
#: with retries (~s) actually spans.  A final implicit +inf bucket
#: catches everything beyond.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class RollingWindow:
    """Per-interval totals in a fixed ring; sums the trailing window.

    ``slots`` intervals of ``width`` seconds each.  Recording computes
    the current interval's epoch and resets a ring slot lazily when it
    is reused for a newer epoch — no timer thread, O(1) per record.
    ``total`` sums only slots whose epoch is still inside the window.
    Not self-locking: callers synchronize (the registry holds its lock).
    """

    __slots__ = ("width", "slots", "_totals", "_epochs")

    def __init__(self, width: float = 1.0, slots: int = 60):
        if width <= 0 or slots < 1:
            raise ValueError(f"need width > 0 and slots >= 1, got {width}/{slots}")
        self.width = width
        self.slots = slots
        self._totals = [0.0] * slots
        self._epochs = [-1] * slots

    @property
    def span(self) -> float:
        """The window's length in seconds (``width * slots``)."""
        return self.width * self.slots

    def add(self, n: float, now: float) -> None:
        epoch = int(now / self.width)
        index = epoch % self.slots
        if self._epochs[index] != epoch:
            self._epochs[index] = epoch
            self._totals[index] = 0.0
        self._totals[index] += n

    def total(self, now: float) -> float:
        epoch = int(now / self.width)
        return sum(
            total
            for slot_epoch, total in zip(self._epochs, self._totals)
            if 0 <= epoch - slot_epoch < self.slots
        )

    def rate(self, now: float) -> float:
        """Windowed total per second."""
        return self.total(now) / self.span


class Counter:
    """A monotonic total plus its rolling window (registry-locked)."""

    __slots__ = ("total", "window")

    def __init__(self, window: RollingWindow):
        self.total = 0.0
        self.window = window

    def add(self, n: float, now: float) -> None:
        self.total += n
        self.window.add(n, now)


class Gauge:
    """A last-write-wins value with an update timestamp."""

    __slots__ = ("value", "updated")

    def __init__(self) -> None:
        self.value: object = None
        self.updated = 0.0

    def set(self, value: object, now: float) -> None:
        self.value = value
        self.updated = now

    def set_max(self, value: float, now: float) -> None:
        prev = self.value
        if not isinstance(prev, (int, float)) or prev < value:
            self.value = value
        self.updated = now


class Histogram:
    """Fixed-bucket distribution with sample-free percentile estimates.

    ``bounds`` are strictly increasing bucket upper limits; one implicit
    overflow bucket catches values beyond the last bound.  Percentiles
    use the nearest-rank definition located by cumulative bucket counts,
    linearly interpolated inside the owning bucket and clamped to the
    observed ``[min, max]`` — so the estimate always lands in the same
    bucket as the true sample percentile (the property
    ``tests/test_obs_metrics.py`` pins with hypothesis).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly increasing, got {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100], interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = max(1, ceil(q / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else self.min
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                estimate = lower + (upper - lower) * ((rank - cumulative) / bucket_count)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-ready summary incl. cumulative buckets (Prometheus shape)."""
        cumulative = 0
        buckets = []
        for bound, bucket_count in zip(
            list(self.bounds) + [float("inf")], self.counts
        ):
            cumulative += bucket_count
            buckets.append({"le": bound if bound != float("inf") else "+Inf",
                            "count": cumulative})
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min, 9) if self.min is not None else None,
            "max": round(self.max, 9) if self.max is not None else None,
            "mean": round(self.mean, 9),
            "p50": round(self.percentile(50), 9),
            "p95": round(self.percentile(95), 9),
            "p99": round(self.percentile(99), 9),
            "buckets": buckets,
        }


class SourceScorecard:
    """Everything the registry knows about one mediated source.

    Fed one record per resilient source call (a
    :class:`~repro.resilience.SourceOutcome`, duck-typed) or one per
    plain mediator execution.  Status strings mirror
    :mod:`repro.resilience.adapter` (``ok`` / ``retried`` / ``failed``
    / ``timed-out`` / ``skipped-open-circuit``) — this module stays
    dependency-free, so they are matched by value, not imported.
    """

    __slots__ = (
        "source", "latency", "calls", "ok", "failures", "timeouts",
        "skipped_open_circuit", "retries", "rows", "breaker_state",
        "last_status", "last_error", "window_calls", "window_failures",
    )

    def __init__(
        self,
        source: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        window_width: float = 1.0,
        window_slots: int = 60,
    ):
        self.source = source
        self.latency = Histogram(bounds)
        self.calls = 0
        self.ok = 0
        self.failures = 0
        self.timeouts = 0
        self.skipped_open_circuit = 0
        self.retries = 0
        self.rows = 0
        self.breaker_state: str | None = None
        self.last_status: str | None = None
        self.last_error: str | None = None
        self.window_calls = RollingWindow(window_width, window_slots)
        self.window_failures = RollingWindow(window_width, window_slots)

    def record(
        self,
        *,
        seconds: float,
        now: float,
        status: str = "ok",
        rows: int = 0,
        retries: int = 0,
        breaker_state: str | None = None,
        error: str | None = None,
    ) -> None:
        self.calls += 1
        self.window_calls.add(1, now)
        self.latency.observe(seconds)
        self.retries += retries
        self.rows += rows
        self.last_status = status
        if status in ("ok", "retried"):
            self.ok += 1
        else:
            self.failures += 1
            self.window_failures.add(1, now)
        if status == "timed-out":
            self.timeouts += 1
        if status == "skipped-open-circuit":
            self.skipped_open_circuit += 1
        if breaker_state is not None:
            self.breaker_state = breaker_state
        if error is not None:
            self.last_error = error

    def snapshot(self, now: float) -> dict:
        latency = self.latency
        window_calls = self.window_calls.total(now)
        window_failures = self.window_failures.total(now)
        return {
            "source": self.source,
            "calls": self.calls,
            "ok": self.ok,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "skipped_open_circuit": self.skipped_open_circuit,
            "retries": self.retries,
            "rows": self.rows,
            "error_rate": round(self.failures / self.calls, 4) if self.calls else 0.0,
            "retry_rate": round(self.retries / self.calls, 4) if self.calls else 0.0,
            "breaker_state": self.breaker_state,
            "last_status": self.last_status,
            "last_error": self.last_error,
            "latency_ms": {
                "p50": round(latency.percentile(50) * 1e3, 3),
                "p95": round(latency.percentile(95) * 1e3, 3),
                "p99": round(latency.percentile(99) * 1e3, 3),
                "mean": round(latency.mean * 1e3, 3),
                "max": round((latency.max or 0.0) * 1e3, 3),
            },
            "window": {
                "seconds": self.window_calls.span,
                "calls": window_calls,
                "failures": window_failures,
                "error_rate": round(window_failures / window_calls, 4)
                if window_calls
                else 0.0,
                "calls_per_second": round(self.window_calls.rate(now), 4),
            },
        }


class _SlowEntry:
    __slots__ = ("fingerprint", "op", "query", "count", "total", "max", "last")

    def __init__(self, fingerprint: str, op: str, query: str | None):
        self.fingerprint = fingerprint
        self.op = op
        self.query = query
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.last = 0.0

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "op": self.op,
            "query": self.query,
            "count": self.count,
            "max_ms": round(self.max * 1e3, 3),
            "mean_ms": round(self.total / self.count * 1e3, 3) if self.count else 0.0,
            "last_ms": round(self.last * 1e3, 3),
        }


class SlowQueryLog:
    """A bounded worst-latency leaderboard keyed by query fingerprint.

    Every completed request is recorded; when the table exceeds
    ``capacity`` distinct fingerprints the one with the *smallest*
    maximum latency is evicted, so what survives is always the N
    slowest fingerprints seen so far (with per-fingerprint counts and
    mean/max latency).  Not self-locking: the registry synchronizes.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"slowlog capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[str, _SlowEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self, fingerprint: str, op: str, seconds: float, query: str | None = None
    ) -> None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = self._entries[fingerprint] = _SlowEntry(fingerprint, op, query)
        elif query is not None and entry.query is None:
            entry.query = query
        entry.count += 1
        entry.total += seconds
        entry.last = seconds
        if seconds > entry.max:
            entry.max = seconds
        if len(self._entries) > self.capacity:
            victim = min(self._entries.values(), key=lambda e: e.max)
            del self._entries[victim.fingerprint]

    def top(self, n: int = 10) -> list[dict]:
        """The ``n`` slowest fingerprints, worst first."""
        ranked = sorted(self._entries.values(), key=lambda e: e.max, reverse=True)
        return [entry.to_dict() for entry in ranked[: max(0, n)]]


class MetricsRegistry:
    """Thread-safe, process-lifetime counters/gauges/histograms/scorecards.

    One internal lock guards every instrument, so concurrent recording
    from service threads, fan-out workers, and snapshot readers is
    exact — no lost updates, and a snapshot is a consistent cut.
    ``clock`` is injectable for tests (monotonic seconds).
    """

    def __init__(
        self,
        *,
        clock=time.monotonic,
        latency_bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        window_width: float = 1.0,
        window_slots: int = 60,
        slowlog_capacity: int = 64,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self._latency_bounds = latency_bounds
        self._window_width = window_width
        self._window_slots = window_slots
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._scorecards: dict[str, SourceScorecard] = {}
        self.slowlog = SlowQueryLog(slowlog_capacity)
        self.started = self._clock()
        self.started_wall = time.time()

    # -- recording (hot paths) ------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        now = self._clock()
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(
                    RollingWindow(self._window_width, self._window_slots)
                )
            counter.add(n, now)

    def gauge(self, name: str, value: object) -> None:
        now = self._clock()
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.set(value, now)

    def gauge_max(self, name: str, value: float) -> None:
        now = self._clock()
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            gauge.set_max(value, now)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(self._latency_bounds)
            histogram.observe(seconds)

    def record_request(
        self,
        op: str,
        seconds: float,
        *,
        fingerprint: str | None = None,
        query: str | None = None,
    ) -> None:
        """One completed service request: per-op + overall histograms + slowlog."""
        with self._lock:
            for name in {f"serve.{op}.latency", "serve.request.latency"}:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(self._latency_bounds)
                histogram.observe(seconds)
            if fingerprint is not None:
                self.slowlog.record(fingerprint, op, seconds, query)

    def record_source_call(
        self,
        source: str,
        seconds: float,
        *,
        status: str = "ok",
        rows: int = 0,
        retries: int = 0,
        breaker_state: str | None = None,
        error: str | None = None,
    ) -> None:
        """One source execution (plain mediator path, or tests)."""
        now = self._clock()
        with self._lock:
            card = self._scorecards.get(source)
            if card is None:
                card = self._scorecards[source] = SourceScorecard(
                    source, self._latency_bounds, self._window_width, self._window_slots
                )
            card.record(
                seconds=seconds,
                now=now,
                status=status,
                rows=rows,
                retries=retries,
                breaker_state=breaker_state,
                error=error,
            )

    def record_source_outcome(self, outcome) -> None:
        """One resilient call's :class:`~repro.resilience.SourceOutcome`.

        Duck-typed (``source``/``status``/``retries``/``rows``/
        ``elapsed``/``breaker_state``/``error``) so this module never
        imports the resilience layer.
        """
        self.record_source_call(
            outcome.source,
            outcome.elapsed,
            status=outcome.status,
            rows=outcome.rows,
            retries=outcome.retries,
            breaker_state=outcome.breaker_state,
            error=outcome.error,
        )

    # -- reading --------------------------------------------------------------

    def uptime(self) -> float:
        return self._clock() - self.started

    def counter_total(self, name: str) -> float:
        with self._lock:
            counter = self._counters.get(name)
            return counter.total if counter is not None else 0.0

    def window_total(self, name: str) -> float:
        now = self._clock()
        with self._lock:
            counter = self._counters.get(name)
            return counter.window.total(now) if counter is not None else 0.0

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def histogram_for_source(self, source: str) -> Histogram | None:
        """The latency histogram of one source's scorecard, or ``None``."""
        with self._lock:
            card = self._scorecards.get(source)
            return card.latency if card is not None else None

    def snapshot(self) -> dict:
        """A consistent JSON-ready cut of every instrument."""
        now = self._clock()
        with self._lock:
            return {
                "uptime_seconds": round(now - self.started, 3),
                "started_at_unix": round(self.started_wall, 3),
                "window_seconds": self._window_width * self._window_slots,
                "counters": {
                    name: {
                        "total": counter.total,
                        "window": counter.window.total(now),
                        "rate_per_second": round(counter.window.rate(now), 4),
                    }
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def scorecards_snapshot(self) -> list[dict]:
        """Per-source scorecards, sorted by source name."""
        now = self._clock()
        with self._lock:
            return [
                self._scorecards[name].snapshot(now)
                for name in sorted(self._scorecards)
            ]

    def slowlog_top(self, n: int = 10) -> list[dict]:
        with self._lock:
            return self.slowlog.top(n)


# ---------------------------------------------------------------------------
# Cross-registry aggregation (the cluster front-end's view)
# ---------------------------------------------------------------------------

#: Worst-first breaker severity: an open circuit anywhere dominates.
_BREAKER_SEVERITY = {"closed": 0, "half-open": 1, "open": 2}

_CARD_SUMMED = (
    "calls", "ok", "failures", "timeouts", "skipped_open_circuit", "retries", "rows",
)


def aggregate_scorecards(snapshots: list[list[dict]]) -> list[dict]:
    """Merge per-process scorecard snapshots into one fleet view.

    Each element of ``snapshots`` is one registry's
    :meth:`MetricsRegistry.scorecards_snapshot` — what every worker
    shard of a ``repro serve --processes N`` cluster reports.  Per
    source: counts (calls, failures, retries, rows, …) are exact sums
    and the rates are recomputed from them; latency percentiles are
    merged pessimistically (the max across shards — without the raw
    histograms a true fleet percentile is not computable, and for
    alerting the worst shard is the honest answer); ``breaker_state``
    is the *most severe* state any shard reports, because an open
    circuit on one shard is an open circuit for the keys it owns.
    """
    merged: dict[str, dict] = {}
    for cards in snapshots:
        for card in cards:
            known = merged.get(card["source"])
            if known is None:
                merged[card["source"]] = {
                    **card,
                    "latency_ms": dict(card["latency_ms"]),
                    "window": dict(card["window"]),
                }
                continue
            for name in _CARD_SUMMED:
                known[name] += card[name]
            for name in ("p50", "p95", "p99", "mean", "max"):
                known["latency_ms"][name] = max(
                    known["latency_ms"][name], card["latency_ms"][name]
                )
            window = known["window"]
            for name in ("calls", "failures", "calls_per_second"):
                window[name] += card["window"][name]
            window["calls_per_second"] = round(window["calls_per_second"], 4)
            if _BREAKER_SEVERITY.get(card["breaker_state"], 0) > _BREAKER_SEVERITY.get(
                known["breaker_state"], 0
            ):
                known["breaker_state"] = card["breaker_state"]
                known["last_status"] = card["last_status"]
                known["last_error"] = card["last_error"]
    for card in merged.values():
        calls = card["calls"]
        card["error_rate"] = round(card["failures"] / calls, 4) if calls else 0.0
        card["retry_rate"] = round(card["retries"] / calls, 4) if calls else 0.0
        window = card["window"]
        window["error_rate"] = (
            round(window["failures"] / window["calls"], 4) if window["calls"] else 0.0
        )
    return [merged[name] for name in sorted(merged)]


# ---------------------------------------------------------------------------
# Process-global installation (the tee target for the trace hooks)
# ---------------------------------------------------------------------------


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Make ``registry`` the process-wide tee target; returns it.

    After this, every :func:`repro.obs.trace.count` / ``gauge`` /
    ``gauge_max`` call — from any thread, tracer or no tracer —
    also lands in the registry.  Installing replaces any previous
    registry (there is one per process, like a Prometheus default
    registry).
    """
    _trace._install_metrics_sink(registry)
    return registry


def uninstall() -> None:
    """Remove the installed registry (hooks go back to tracer-only)."""
    _trace._install_metrics_sink(None)


def active_registry() -> MetricsRegistry | None:
    """The installed process registry, or ``None``."""
    return _trace.metrics_sink()


@contextmanager
def installed(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for a block, restoring the previous one after.

    The test-friendly form — guarantees a registry never leaks across
    test cases even on exceptions.
    """
    previous = _trace.metrics_sink()
    _trace._install_metrics_sink(registry)
    try:
        yield registry
    finally:
        _trace._install_metrics_sink(previous)
