"""The ``repro stats`` pipeline: one fully-traced translation run.

Parses the query, translates it for every requested specification with
Algorithm TDQM, derives the residue filter, and — when the specifications
correspond to one of the built-in simulated scenarios — executes the
mediated pipeline end-to-end, all under a single :class:`~repro.obs.Tracer`.
The result bundles the mappings with the span tree and the counter set
(rules tried, prematch hits, matchings, suppressed submatchings,
Disjunctivize count, DNF terms, residue conjuncts, per-source rows), in
both human-readable and JSON form.

This module depends on :mod:`repro.core` and is therefore imported lazily
by the CLI, never from :mod:`repro.obs` itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.filters import FilterPlan, build_filter
from repro.core.json_io import query_to_json
from repro.core.metrics import query_stats
from repro.core.normalize import normalize
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import TranslationResult, tdqm_translate
from repro.obs.export import counters_table, render_span, report_to_dict
from repro.obs.trace import Tracer, gauge, span, tracing
from repro.rules.spec import MappingSpecification

__all__ = ["StatsReport", "collect_stats", "builtin_mediator", "render_stats", "stats_to_dict"]


@dataclass
class StatsReport:
    """Everything one traced ``repro stats`` run produced."""

    query: object
    normalized: object
    results: dict[str, TranslationResult]
    plan: FilterPlan
    rows: int | None  # mediated row count; None when nothing was executed
    tracer: Tracer
    #: Per-source outcome records; ``None`` unless the run was resilient.
    outcomes: list | None = None
    #: ``False`` when a resilient run lost at least one source.
    complete: bool = True


def builtin_mediator(spec_names: set[str]):
    """The built-in mediator whose sources the named specs describe.

    Returns ``None`` when the specs do not correspond to a simulated
    scenario (e.g. a declarative spec file) — stats then covers
    translation and filtering only.
    """
    from repro.mediator import (
        bookstore_mediator,
        faculty_mediator,
        map_mediator,
    )

    if spec_names == {"K_Amazon"}:
        return bookstore_mediator("amazon")
    if spec_names == {"K_Clbooks"}:
        return bookstore_mediator("clbooks")
    if spec_names and spec_names <= {"K1", "K2"}:
        return faculty_mediator()
    if spec_names == {"K_map"}:
        return map_mediator()
    return None


def collect_stats(
    query,
    specs: dict[str, MappingSpecification],
    mediator=None,
    *,
    resilience=None,
    strict: bool | None = None,
) -> StatsReport:
    """Run the traced pipeline: parse → translate per spec → filter → execute.

    With ``resilience`` (a :class:`~repro.resilience.ResilienceConfig`)
    the mediated execution goes through fault-tolerant source adapters
    and the report carries per-source outcomes plus the ``complete``
    flag; ``strict=True`` turns partial answers into
    :class:`~repro.core.errors.SourceUnavailableError`.
    """
    with tracing("repro.stats") as tracer:
        if isinstance(query, str):
            query = parse_query(query)
        normalized = normalize(query)
        shape = query_stats(normalized)
        gauge("query.nodes", shape.node_count)
        gauge("query.constraints", shape.distinct_constraints)
        gauge("query.dnf_terms", shape.dnf_terms)

        results: dict[str, TranslationResult] = {}
        for name, spec in specs.items():
            with span("translate", spec=name):
                result = tdqm_translate(query, spec)
                gauge("mapping.nodes", result.mapping.node_count())
            results[name] = result

        plan = build_filter(query, specs)

        rows: int | None = None
        outcomes: list | None = None
        complete = True
        if mediator is not None:
            if resilience is not None:
                mediator = mediator.with_resilience(resilience)
            answer = mediator.answer_mediated(query, strict=strict)
            rows = len(answer.rows)
            if resilience is not None:
                outcomes = list(answer.outcomes)
                complete = answer.complete

    return StatsReport(
        query=query,
        normalized=normalized,
        results=results,
        plan=plan,
        rows=rows,
        tracer=tracer,
        outcomes=outcomes,
        complete=complete,
    )


def stats_to_dict(report: StatsReport) -> dict:
    """JSON-compatible encoding of a :class:`StatsReport`."""
    out = {
        "query": to_text(report.query),
        "normalized": to_text(report.normalized),
        "mappings": {
            name: {
                "text": to_text(result.mapping),
                "exact": result.exact,
                "json": query_to_json(result.mapping),
            }
            for name, result in report.results.items()
        },
        "filter": {
            "text": to_text(report.plan.filter),
            "json": query_to_json(report.plan.filter),
        },
        "rows": report.rows,
    }
    if report.outcomes is not None:
        out["complete"] = report.complete
        out["sources"] = [outcome.to_dict() for outcome in report.outcomes]
    out.update(report_to_dict(report.tracer))
    return out


def render_stats(report: StatsReport) -> str:
    """Human-readable stats report: mappings, span tree, counter table."""
    lines: list[str] = []
    lines.append(f"query     : {to_text(report.query)}")
    if to_text(report.normalized) != to_text(report.query):
        lines.append(f"normalized: {to_text(report.normalized)}")
    for name, result in sorted(report.results.items()):
        exactness = "exact" if result.exact else "subsuming"
        lines.append(f"S({name}) = {to_text(result.mapping)}  [{exactness}]")
    lines.append(f"F = {to_text(report.plan.filter)}")
    if report.rows is not None:
        lines.append(f"rows = {report.rows}")
    if report.outcomes is not None:
        lines.append(f"complete = {report.complete}")
        lines.append("sources:")
        for outcome in report.outcomes:
            lines.append(
                f"  {outcome.source:<10} {outcome.status:<20} "
                f"attempts={outcome.attempts} rows={outcome.rows} "
                f"breaker={outcome.breaker_state}"
            )
    lines.append("")
    lines.append("spans:")
    lines.extend("  " + line for line in render_span(report.tracer.root))
    lines.append("")
    lines.append("counters:")
    lines.extend("  " + line for line in counters_table(report.tracer))
    return "\n".join(lines)
