"""Tracing core: hierarchical spans plus a counter/gauge registry.

One :class:`Tracer` records one activity (a translation, a mediation run,
a CLI invocation) as a tree of :class:`Span`\\ s.  Every span carries its
wall-clock time, free-form attributes, and the counters/gauges recorded
while it was the innermost open span; the tracer additionally aggregates
all counters and gauges globally, so a report can show both the per-stage
breakdown and the run totals.

The tracer is installed per *thread* (:func:`tracing`); library code never
receives it explicitly — it calls the module-level hooks, which resolve
the current tracer or do nothing.  That keeps instrumentation to single
lines at the call sites and makes the disabled path trivially cheap.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "tracing",
    "current_tracer",
    "enabled",
    "span",
    "count",
    "gauge",
    "gauge_max",
]


class Span:
    """One timed stage: name, attributes, children, and local metrics."""

    __slots__ = ("name", "attrs", "start", "elapsed", "children", "counters", "gauges")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = 0.0
        self.elapsed = 0.0
        self.children: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, object] = {}

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3

    def total(self, counter: str) -> int:
        """Sum of ``counter`` over this span and its whole subtree."""
        value = self.counters.get(counter, 0)
        for child in self.children:
            value += child.total(counter)
        return value

    def find(self, name: str) -> Span | None:
        """First span named ``name`` in this subtree (pre-order)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name}, {self.elapsed_ms:.3f}ms)"


class Tracer:
    """Collects one span tree plus aggregate counters and gauges."""

    def __init__(self, name: str = "trace"):
        self.root = Span(name)
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, object] = {}
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span under the innermost open span."""
        child = Span(name, attrs)
        self._stack[-1].children.append(child)
        self._stack.append(child)
        child.start = time.perf_counter()
        try:
            yield child
        finally:
            child.elapsed = time.perf_counter() - child.start
            self._stack.pop()

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` on the current span and globally."""
        local = self._stack[-1].counters
        local[name] = local.get(name, 0) + n
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: object) -> None:
        """Record a point-in-time value (last write wins)."""
        self._stack[-1].gauges[name] = value
        self.gauges[name] = value

    def gauge_max(self, name: str, value) -> None:
        """Record a high-water-mark gauge (max of all writes)."""
        local = self._stack[-1].gauges
        if name not in local or local[name] < value:
            local[name] = value
        if name not in self.gauges or self.gauges[name] < value:  # type: ignore[operator]
            self.gauges[name] = value


# ---------------------------------------------------------------------------
# Thread-local installation + no-op module-level hooks
# ---------------------------------------------------------------------------

_tls = threading.local()


class _NoopSpan:
    """Context manager handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def current_tracer() -> Tracer | None:
    """The tracer installed on this thread, or ``None``."""
    return getattr(_tls, "tracer", None)


def enabled() -> bool:
    """True when a tracer is active on this thread.

    Use to guard instrumentation whose *inputs* are expensive to compute
    (e.g. ``query.node_count()``); the plain hooks below already guard
    themselves.
    """
    return getattr(_tls, "tracer", None) is not None


@contextmanager
def tracing(name: str = "trace") -> Iterator[Tracer]:
    """Install a fresh :class:`Tracer` on this thread for the block.

    Nested ``tracing`` blocks shadow the outer tracer (and restore it on
    exit) — each block observes only its own activity.
    """
    tracer = Tracer(name)
    previous = getattr(_tls, "tracer", None)
    _tls.tracer = tracer
    tracer.root.start = time.perf_counter()
    try:
        yield tracer
    finally:
        tracer.root.elapsed = time.perf_counter() - tracer.root.start
        _tls.tracer = previous


def span(name: str, **attrs):
    """Open a span on the current tracer; a shared no-op when disabled."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the current tracer; no-op when disabled."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        tracer.count(name, n)


def gauge(name: str, value: object) -> None:
    """Set a gauge on the current tracer; no-op when disabled."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        tracer.gauge(name, value)


def gauge_max(name: str, value) -> None:
    """Raise a high-water-mark gauge on the current tracer; no-op when disabled."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        tracer.gauge_max(name, value)
