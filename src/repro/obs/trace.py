"""Tracing core: hierarchical spans plus a counter/gauge registry.

One :class:`Tracer` records one activity (a translation, a mediation run,
a CLI invocation) as a tree of :class:`Span`\\ s.  Every span carries its
wall-clock time, free-form attributes, and the counters/gauges recorded
while it was the innermost open span; the tracer additionally aggregates
all counters and gauges globally, so a report can show both the per-stage
breakdown and the run totals.

The tracer is installed per *thread* (:func:`tracing`); library code never
receives it explicitly — it calls the module-level hooks, which resolve
the current tracer or do nothing.  That keeps instrumentation to single
lines at the call sites and makes the disabled path trivially cheap.

**Threads.**  A tracer records safely from any number of threads: the
span tree and the counter/gauge registries are guarded by an internal
lock, and each thread keeps its own span *stack* so concurrent spans
nest correctly per thread.  To carry a trace into a worker pool, the
owning thread calls :meth:`Tracer.bind` once per job — that appends one
handoff span in **call order** (so the resulting tree is deterministic
no matter how the pool schedules the jobs) — and the worker enters the
returned handoff, which installs the tracer on the worker's thread for
the block.  Counter totals are sums and high-water gauges are maxima,
both order-independent, so aggregate numbers are exact under any
interleaving.  The module-level :func:`bind` resolves the current
tracer (or hands back a no-op) just like the other hooks.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "tracing",
    "current_tracer",
    "enabled",
    "recording",
    "metrics_sink",
    "span",
    "count",
    "gauge",
    "gauge_max",
    "bind",
]


class Span:
    """One timed stage: name, attributes, children, and local metrics."""

    __slots__ = ("name", "attrs", "start", "elapsed", "children", "counters", "gauges")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = 0.0
        self.elapsed = 0.0
        self.children: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, object] = {}

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1e3

    def total(self, counter: str) -> int:
        """Sum of ``counter`` over this span and its whole subtree."""
        value = self.counters.get(counter, 0)
        for child in self.children:
            value += child.total(counter)
        return value

    def find(self, name: str) -> Span | None:
        """First span named ``name`` in this subtree (pre-order)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name}, {self.elapsed_ms:.3f}ms)"


class Tracer:
    """Collects one span tree plus aggregate counters and gauges.

    Safe to record into from many threads at once; see the module
    docstring for the :meth:`bind` handoff protocol.
    """

    def __init__(self, name: str = "trace"):
        self.root = Span(name)
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, object] = {}
        self._lock = threading.RLock()
        self._local = threading.local()
        self._local.stack = [self.root]

    def _stack(self) -> list[Span]:
        """This thread's span stack (threads without a handoff record at root)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [self.root]
        return stack

    @property
    def current(self) -> Span:
        return self._stack()[-1]

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span under this thread's innermost open span."""
        child = Span(name, attrs)
        stack = self._stack()
        with self._lock:
            stack[-1].children.append(child)
        stack.append(child)
        child.start = time.perf_counter()
        try:
            yield child
        finally:
            child.elapsed = time.perf_counter() - child.start
            stack.pop()

    def bind(self, name: str = "worker", **attrs) -> "TraceHandoff":
        """Prepare a handoff of this tracer to a worker thread.

        Call on the thread that owns the trace — the handoff span is
        appended under the *caller's* current span immediately, so spans
        land in ``bind()`` call order and the tree is deterministic
        regardless of worker scheduling.  The worker then runs its job
        inside ``with handoff:`` to record spans and counters into the
        subtree.  Each handoff is entered by exactly one thread, once.
        """
        child = Span(name, attrs)
        with self._lock:
            self._stack()[-1].children.append(child)
        return TraceHandoff(self, child)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` on the current span and globally."""
        with self._lock:
            local = self._stack()[-1].counters
            local[name] = local.get(name, 0) + n
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: object) -> None:
        """Record a point-in-time value (last write wins)."""
        with self._lock:
            self._stack()[-1].gauges[name] = value
            self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Record a high-water-mark gauge (max of all writes)."""
        with self._lock:
            local = self._stack()[-1].gauges
            prev = local.get(name)
            if not isinstance(prev, (int, float)) or prev < value:
                local[name] = value
            prev = self.gauges.get(name)
            if not isinstance(prev, (int, float)) or prev < value:
                self.gauges[name] = value


class TraceHandoff:
    """One :meth:`Tracer.bind` handoff, entered on the worker thread.

    Entering installs the tracer on the worker (so the module-level
    hooks resolve it) and makes the handoff span the worker's stack
    base; exiting stamps the span's elapsed time and restores whatever
    tracer the worker had before.
    """

    __slots__ = ("tracer", "span", "_prev_tracer", "_prev_stack")

    def __init__(self, tracer: Tracer, span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Tracer:
        self._prev_tracer = getattr(_tls, "tracer", None)
        self._prev_stack = getattr(self.tracer._local, "stack", None)
        _tls.tracer = self.tracer
        self.tracer._local.stack = [self.span]
        self.span.start = time.perf_counter()
        return self.tracer

    def __exit__(self, *exc) -> bool:
        self.span.elapsed = time.perf_counter() - self.span.start
        self.tracer._local.stack = self._prev_stack
        _tls.tracer = self._prev_tracer
        return False


# ---------------------------------------------------------------------------
# Thread-local installation + no-op module-level hooks
# ---------------------------------------------------------------------------

_tls = threading.local()

#: Process-wide metrics tee target (a ``repro.obs.metrics.MetricsRegistry``),
#: installed via :func:`repro.obs.metrics.install`.  The hooks below forward
#: every count/gauge record here *in addition to* the thread's tracer, which
#: is how request-scoped signals accumulate for the life of a server process.
#: Held here (not in metrics.py) so the hot hooks pay one module-global load
#: and one ``is None`` test when telemetry is off, with no cross-import.
_metrics_sink = None


def _install_metrics_sink(sink) -> None:
    global _metrics_sink
    _metrics_sink = sink


def metrics_sink():
    """The installed process-wide metrics registry, or ``None``."""
    return _metrics_sink


class _NoopSpan:
    """Context manager handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _NoopHandoff:
    """Stateless stand-in for :class:`TraceHandoff` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_HANDOFF = _NoopHandoff()


def current_tracer() -> Tracer | None:
    """The tracer installed on this thread, or ``None``."""
    return getattr(_tls, "tracer", None)


def enabled() -> bool:
    """True when a tracer is active on this thread.

    Use to guard instrumentation whose *inputs* are expensive to compute
    (e.g. ``query.node_count()``); the plain hooks below already guard
    themselves.
    """
    return getattr(_tls, "tracer", None) is not None


def recording() -> bool:
    """True when *anything* would observe a record right now.

    Like :func:`enabled`, but also true when a process-wide metrics
    registry is installed without a tracer — use it to guard
    instrumentation whose inputs are expensive to compute.
    """
    return getattr(_tls, "tracer", None) is not None or _metrics_sink is not None


@contextmanager
def tracing(name: str = "trace") -> Iterator[Tracer]:
    """Install a fresh :class:`Tracer` on this thread for the block.

    Nested ``tracing`` blocks shadow the outer tracer (and restore it on
    exit) — each block observes only its own activity.
    """
    tracer = Tracer(name)
    previous = getattr(_tls, "tracer", None)
    _tls.tracer = tracer
    tracer.root.start = time.perf_counter()
    try:
        yield tracer
    finally:
        tracer.root.elapsed = time.perf_counter() - tracer.root.start
        _tls.tracer = previous


def span(name: str, **attrs):
    """Open a span on the current tracer; a shared no-op when disabled."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def bind(name: str = "worker", **attrs):
    """A worker handoff from the current tracer; a no-op when disabled.

    Call on the owning thread, enter on the worker — see
    :meth:`Tracer.bind`.
    """
    tracer = getattr(_tls, "tracer", None)
    if tracer is None:
        return _NOOP_HANDOFF
    return tracer.bind(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the current tracer and the metrics registry.

    No-op when neither is active; each side is independent (a server
    with ``--metrics`` but no per-request tracing still accumulates).
    """
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        tracer.count(name, n)
    if _metrics_sink is not None:
        _metrics_sink.count(name, n)


def gauge(name: str, value: object) -> None:
    """Set a gauge on the current tracer and the metrics registry."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        tracer.gauge(name, value)
    if _metrics_sink is not None:
        _metrics_sink.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge on the tracer and the metrics registry."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        tracer.gauge_max(name, value)
    if _metrics_sink is not None:
        _metrics_sink.gauge_max(name, value)
