"""Exporters for traces: JSON-compatible dicts and human-readable text.

The JSON form is stable and self-describing so ``repro stats --json``
output (and the ``BENCH_*.json`` trajectories built on it) can be diffed
and post-processed in scripts; the text form is what ``--trace`` and
``--stats`` print for humans.
"""

from __future__ import annotations

from repro.obs.trace import Span, Tracer

__all__ = [
    "span_to_dict",
    "report_to_dict",
    "render_span",
    "render_report",
    "counters_table",
]


def span_to_dict(span: Span) -> dict:
    """Encode one span subtree as JSON-compatible plain data."""
    out: dict = {"name": span.name, "elapsed_ms": round(span.elapsed_ms, 3)}
    if span.attrs:
        out["attrs"] = {k: _plain(v) for k, v in span.attrs.items()}
    if span.counters:
        out["counters"] = dict(sorted(span.counters.items()))
    if span.gauges:
        out["gauges"] = {k: _plain(v) for k, v in sorted(span.gauges.items())}
    if span.children:
        out["children"] = [span_to_dict(child) for child in span.children]
    return out


def report_to_dict(tracer: Tracer) -> dict:
    """The whole trace: span tree plus aggregate counters and gauges."""
    return {
        "span_tree": span_to_dict(tracer.root),
        "counters": dict(sorted(tracer.counters.items())),
        "gauges": {k: _plain(v) for k, v in sorted(tracer.gauges.items())},
    }


def _plain(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def render_span(span: Span, indent: int = 0) -> list[str]:
    """Render one span subtree as indented text lines."""
    attrs = "".join(f" {k}={v}" for k, v in span.attrs.items())
    metrics = dict(sorted(span.counters.items()))
    metrics.update(sorted(span.gauges.items()))
    inline = (
        "  [" + " ".join(f"{k}={v}" for k, v in metrics.items()) + "]"
        if metrics
        else ""
    )
    lines = [f"{'  ' * indent}{span.name}{attrs}  {span.elapsed_ms:.3f}ms{inline}"]
    for child in span.children:
        lines.extend(render_span(child, indent + 1))
    return lines


def counters_table(tracer: Tracer) -> list[str]:
    """Aggregate counters + gauges as aligned ``name value`` lines."""
    rows = sorted(tracer.counters.items())
    rows += [(k, v) for k, v in sorted(tracer.gauges.items())]
    if not rows:
        return ["(no counters recorded)"]
    width = max(len(name) for name, _ in rows)
    return [f"{name:<{width}}  {value}" for name, value in rows]


def render_report(tracer: Tracer) -> str:
    """Full human-readable report: span tree, then the counter table."""
    lines = ["spans:"]
    lines.extend("  " + line for line in render_span(tracer.root))
    lines.append("")
    lines.append("counters:")
    lines.extend("  " + line for line in counters_table(tracer))
    return "\n".join(lines)
