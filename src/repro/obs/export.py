"""Exporters for traces and metrics: JSON dicts, text, and Prometheus.

The JSON form is stable and self-describing so ``repro stats --json``
output (and the ``BENCH_*.json`` trajectories built on it) can be diffed
and post-processed in scripts; the text form is what ``--trace`` and
``--stats`` print for humans.  :func:`render_prometheus` serialises a
process-lifetime :class:`~repro.obs.metrics.MetricsRegistry` in the
Prometheus text exposition format (what the ``metrics`` protocol op of a
running server returns with ``format: "prometheus"``), and
:func:`parse_prometheus` reads that format back into a flat dict for
tests and smoke checks.
"""

from __future__ import annotations

import re

from repro.obs.trace import Span, Tracer

__all__ = [
    "span_to_dict",
    "report_to_dict",
    "render_span",
    "render_report",
    "render_prometheus",
    "parse_prometheus",
    "counters_table",
]


def span_to_dict(span: Span) -> dict:
    """Encode one span subtree as JSON-compatible plain data."""
    out: dict = {"name": span.name, "elapsed_ms": round(span.elapsed_ms, 3)}
    if span.attrs:
        out["attrs"] = {k: _plain(v) for k, v in span.attrs.items()}
    if span.counters:
        out["counters"] = dict(sorted(span.counters.items()))
    if span.gauges:
        out["gauges"] = {k: _plain(v) for k, v in sorted(span.gauges.items())}
    if span.children:
        out["children"] = [span_to_dict(child) for child in span.children]
    return out


def report_to_dict(tracer: Tracer) -> dict:
    """The whole trace: span tree plus aggregate counters and gauges."""
    return {
        "span_tree": span_to_dict(tracer.root),
        "counters": dict(sorted(tracer.counters.items())),
        "gauges": {k: _plain(v) for k, v in sorted(tracer.gauges.items())},
    }


def _plain(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return [_plain(v) for v in sorted(value, key=str)]
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return str(value)


def render_span(span: Span, indent: int = 0) -> list[str]:
    """Render one span subtree as indented text lines."""
    attrs = "".join(f" {k}={v}" for k, v in span.attrs.items())
    metrics = dict(sorted(span.counters.items()))
    metrics.update(sorted(span.gauges.items()))
    inline = (
        "  [" + " ".join(f"{k}={v}" for k, v in metrics.items()) + "]"
        if metrics
        else ""
    )
    lines = [f"{'  ' * indent}{span.name}{attrs}  {span.elapsed_ms:.3f}ms{inline}"]
    for child in span.children:
        lines.extend(render_span(child, indent + 1))
    return lines


def counters_table(tracer: Tracer) -> list[str]:
    """Aggregate counters + gauges as aligned ``name value`` lines."""
    rows = sorted(tracer.counters.items())
    rows += [(k, v) for k, v in sorted(tracer.gauges.items())]
    if not rows:
        return ["(no counters recorded)"]
    width = max(len(name) for name, _ in rows)
    return [f"{name:<{width}}  {value}" for name, value in rows]


def render_report(tracer: Tracer) -> str:
    """Full human-readable report: span tree, then the counter table."""
    lines = ["spans:"]
    lines.extend("  " + line for line in render_span(tracer.root))
    lines.append("")
    lines.append("counters:")
    lines.extend("  " + line for line in counters_table(tracer))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
#: One sample line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_name(name: str, prefix: str = "repro") -> str:
    """``serve.requests`` -> ``repro_serve_requests`` (exposition-legal)."""
    return f"{prefix}_{_METRIC_NAME_RE.sub('_', name)}".strip("_")


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _histogram_lines(name: str, summary: dict, labels: str = "") -> list[str]:
    """``_bucket``/``_sum``/``_count`` series from a histogram summary."""
    lines = [f"# TYPE {name} histogram"]
    for bucket in summary["buckets"]:
        bound = bucket["le"]
        le = bound if isinstance(bound, str) else _prom_value(float(bound))
        label_body = f'le="{le}"' if not labels else f'{labels},le="{le}"'
        lines.append(f"{name}_bucket{{{label_body}}} {bucket['count']}")
    suffix = f"{{{labels}}}" if labels else ""
    lines.append(f"{name}_sum{suffix} {_prom_value(summary['sum'])}")
    lines.append(f"{name}_count{suffix} {summary['count']}")
    return lines


def render_prometheus(registry) -> str:
    """A metrics registry in the Prometheus text exposition format.

    Counters become ``repro_<name>_total``, numeric gauges become
    ``repro_<name>``, request histograms become
    ``repro_<name>_seconds`` bucket series, and per-source scorecards
    become label-discriminated series (``repro_source_calls_total
    {source="amazon"}``, ``repro_source_latency_seconds_bucket{...}``,
    …).  Non-numeric gauges (e.g. breaker-state strings) are carried as
    an ``info``-style gauge with the value in a label, the standard
    Prometheus idiom for enum-ish state.
    """
    snapshot = registry.snapshot()
    lines: list[str] = [
        "# TYPE repro_uptime_seconds gauge",
        f"repro_uptime_seconds {_prom_value(snapshot['uptime_seconds'])}",
    ]
    for name, counter in snapshot["counters"].items():
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter['total'])}")
    for name, value in snapshot["gauges"].items():
        metric = _prom_name(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            lines.append(f"# TYPE {metric}_info gauge")
            escaped = _escape_label(str(value))
            lines.append(f'{metric}_info{{value="{escaped}"}} 1')
            continue
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, summary in snapshot["histograms"].items():
        lines.extend(_histogram_lines(_prom_name(name) + "_seconds", summary))
    for card in registry.scorecards_snapshot():
        label = f'source="{_escape_label(card["source"])}"'
        for field in (
            "calls", "ok", "failures", "timeouts",
            "skipped_open_circuit", "retries", "rows",
        ):
            metric = f"repro_source_{field}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}{{{label}}} {card[field]}")
        if card["breaker_state"] is not None:
            state = _escape_label(str(card["breaker_state"]))
            lines.append("# TYPE repro_source_breaker_info gauge")
            lines.append(
                f'repro_source_breaker_info{{{label},state="{state}"}} 1'
            )
        histogram = registry.histogram_for_source(card["source"])
        if histogram is not None:
            lines.extend(
                _histogram_lines(
                    "repro_source_latency_seconds", histogram.summary(), label
                )
            )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, ((label, value), ...)): value}``.

    The inverse of :func:`render_prometheus` as far as samples go
    (``# HELP``/``# TYPE`` comments are dropped) — enough for
    round-trip tests and the CI smoke check to assert on exact series.
    Raises ``ValueError`` on a line that is neither blank, a comment,
    nor a well-formed sample.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        name, label_body, raw = match.groups()
        labels: tuple[tuple[str, str], ...] = ()
        if label_body:
            labels = tuple(
                (key, value.replace('\\"', '"').replace("\\\\", "\\"))
                for key, value in _LABEL_RE.findall(label_body)
            )
        value = float("inf") if raw == "+Inf" else float(raw)
        samples[(name, labels)] = value
    return samples
