"""Observability: tracing spans, counters/gauges, metrics, and exporters.

A zero-dependency instrumentation core for the translation and mediation
pipeline.  The design constraint is the ROADMAP's "fast as the hardware
allows": instrumentation must cost (almost) nothing when disabled, so

* :func:`tracing` installs a thread-local :class:`Tracer`; until then
  every hook — :func:`span`, :func:`count`, :func:`gauge`, :func:`bind`
  — is a no-op that performs one attribute lookup and one ``is None``
  test;
* a tracer records thread-safely, and :func:`bind` hands it across a
  worker-pool boundary (deterministic span placement, exact counter
  totals — see :mod:`repro.obs.trace`);
* instrumented hot loops aggregate locally and report once (a single
  ``count(name, n)``), never per iteration.

Tracers are request-scoped; the *process-lifetime* half lives in
:mod:`repro.obs.metrics`: :func:`install` a :class:`MetricsRegistry`
(what ``repro serve --metrics`` does) and every ``count``/``gauge``
record tees into it, accumulating counters, latency histograms
(p50/p95/p99 without storing samples), per-source scorecards, and a
bounded slow-query log for the life of the process.  Render it with
:func:`render_prometheus` or query it live via the server's ``metrics``
/ ``sources`` / ``slowlog`` / ``health`` protocol ops — see
docs/observability.md.

The high-level ``repro stats`` pipeline lives in :mod:`repro.obs.stats`
(imported lazily by the CLI — it depends on :mod:`repro.core`, while this
package is imported *by* :mod:`repro.core` and must stay dependency-free).
"""

from repro.obs.export import (
    counters_table,
    parse_prometheus,
    render_prometheus,
    render_report,
    render_span,
    report_to_dict,
    span_to_dict,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    SlowQueryLog,
    SourceScorecard,
    active_registry,
    aggregate_scorecards,
    install,
    installed,
    uninstall,
)
from repro.obs.trace import (
    Span,
    Tracer,
    bind,
    count,
    current_tracer,
    enabled,
    gauge,
    gauge_max,
    metrics_sink,
    recording,
    span,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "tracing",
    "current_tracer",
    "enabled",
    "recording",
    "span",
    "bind",
    "count",
    "gauge",
    "gauge_max",
    "metrics_sink",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "RollingWindow",
    "Histogram",
    "SourceScorecard",
    "SlowQueryLog",
    "install",
    "installed",
    "uninstall",
    "active_registry",
    "aggregate_scorecards",
    "span_to_dict",
    "report_to_dict",
    "render_span",
    "render_report",
    "render_prometheus",
    "parse_prometheus",
    "counters_table",
]
