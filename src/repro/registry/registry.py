"""The on-disk spec registry (see the package docstring).

Layout — one directory per registry::

    <root>/
        registry.json           # the index: active pointers + history
        specs/
            K_Amazon/
                v1.json         # declarative spec, verbatim as published
                v2.json

``registry.json`` is the only mutable file and every update lands via a
unique temp file + ``os.replace``, so a crash mid-publish leaves the
previous index intact and a version file is never referenced before it
exists (version files are written *first*).  Spec payload files are
immutable once written — rollback only moves the ``active`` pointer,
preserving the full history.

Identity is the specification's content digest
(:attr:`~repro.rules.MappingSpecification.content_digest`): publishing a
payload whose digest equals the currently active version's is an
idempotent no-op, and the serving stack compares the same digest to
decide whether a reload actually changes anything.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import VocabMapError
from repro.rules.declarative import spec_from_dict
from repro.rules.spec import MappingSpecification

__all__ = ["REGISTRY_FORMAT", "PublishRejected", "RegistryError", "SpecRegistry", "SpecVersion"]

#: Bump when the index layout changes; loads reject other formats.
REGISTRY_FORMAT = 1

_KIND = "repro.registry"


class RegistryError(VocabMapError):
    """Malformed registry state or an impossible lifecycle operation."""


class PublishRejected(RegistryError):
    """The publish gate (vocablint) found diagnostics at/above the bar.

    Carries the offending :class:`~repro.analysis.Diagnostic` list so
    callers (the CLI, tests) can render codes and messages.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = diagnostics


@dataclass(frozen=True)
class SpecVersion:
    """One immutable published version of one specification."""

    name: str
    version: int
    digest: str
    created: float
    note: str
    rules: int
    path: str
    active: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest,
            "created": self.created,
            "note": self.note,
            "rules": self.rules,
            "path": self.path,
            "active": self.active,
        }


def _atomic_write_json(target: Path, payload: dict) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class SpecRegistry:
    """A versioned store of declarative mapping specifications.

    Thread-safe within one process (an internal lock serializes index
    read-modify-write cycles); cross-process safety rests on the atomic
    index replace — concurrent publishers cannot tear the index, though
    one of two simultaneous publishes may win the pointer.
    """

    def __init__(self, root: str | os.PathLike[str]):
        self.root = Path(root)
        self._lock = threading.Lock()

    # -- index I/O -------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / "registry.json"

    def _spec_dir(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise RegistryError(f"unusable specification name {name!r}")
        return self.root / "specs" / name

    def _load_index(self) -> dict:
        path = self.index_path
        if not path.exists():
            return {"format": REGISTRY_FORMAT, "kind": _KIND, "specs": {}}
        raw = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("kind") != _KIND:
            raise RegistryError(f"{path}: not a {_KIND} index")
        if raw.get("format") != REGISTRY_FORMAT:
            raise RegistryError(
                f"{path}: registry format {raw.get('format')!r} is not "
                f"the supported format {REGISTRY_FORMAT}"
            )
        return raw

    def _save_index(self, index: dict) -> None:
        _atomic_write_json(self.index_path, index)

    def _section(self, index: dict, name: str) -> dict:
        section = index["specs"].get(name)
        if section is None:
            known = ", ".join(sorted(index["specs"])) or "<empty registry>"
            raise RegistryError(
                f"no specification {name!r} in registry {self.root} ({known})"
            )
        return section

    # -- read API --------------------------------------------------------------

    def names(self) -> list[str]:
        """Every specification with at least one published version."""
        with self._lock:
            return sorted(self._load_index()["specs"])

    def history(self, name: str) -> list[SpecVersion]:
        """All published versions of ``name``, oldest first."""
        with self._lock:
            index = self._load_index()
            section = self._section(index, name)
            active = section.get("active")
            return [
                SpecVersion(
                    name=name,
                    version=meta["version"],
                    digest=meta["digest"],
                    created=meta["created"],
                    note=meta.get("note", ""),
                    rules=meta.get("rules", 0),
                    path=str(self._spec_dir(name) / f"v{meta['version']}.json"),
                    active=meta["version"] == active,
                )
                for meta in section["versions"]
            ]

    def active_version(self, name: str) -> SpecVersion:
        """The currently active version of ``name``."""
        for entry in self.history(name):
            if entry.active:
                return entry
        raise RegistryError(f"specification {name!r} has no active version")

    def state(self) -> dict[str, str]:
        """``{spec name: active digest}`` — the watcher's poll target."""
        with self._lock:
            index = self._load_index()
            out: dict[str, str] = {}
            for name, section in index["specs"].items():
                active = section.get("active")
                for meta in section["versions"]:
                    if meta["version"] == active:
                        out[name] = meta["digest"]
                        break
            return out

    def load_raw(self, name: str, version: int | None = None) -> dict:
        """The declarative payload of ``name`` (active or a pinned version)."""
        entry = self._resolve(name, version)
        return json.loads(Path(entry.path).read_text(encoding="utf-8"))

    def load(
        self,
        name: str,
        version: int | None = None,
        *,
        functions: Mapping[str, Callable] | None = None,
    ) -> MappingSpecification:
        """Build the :class:`MappingSpecification` for ``name``."""
        return spec_from_dict(self.load_raw(name, version), functions)

    def _resolve(self, name: str, version: int | None) -> SpecVersion:
        if version is None:
            return self.active_version(name)
        for entry in self.history(name):
            if entry.version == version:
                return entry
        raise RegistryError(f"specification {name!r} has no version {version}")

    # -- lifecycle -------------------------------------------------------------

    def publish(
        self,
        data: Mapping,
        *,
        note: str = "",
        gate: bool = True,
        fail_on: str = "error",
        functions: Mapping[str, Callable] | None = None,
    ) -> SpecVersion:
        """Publish one declarative spec payload; returns the new version.

        The payload is first *built* (so structurally invalid specs are
        rejected with the loader's :class:`SpecificationError`), then —
        unless ``gate=False`` — linted, rejecting with
        :class:`PublishRejected` when any diagnostic reaches the
        ``fail_on`` severity (``info``/``warning``/``error``; the same
        thresholds as ``repro lint --fail-on``).  Publishing a payload
        whose digest matches the active version is an idempotent no-op
        returning the existing version.  Rollback does not erase
        history, so publishing after a rollback appends a fresh version
        number past everything ever published.
        """
        spec = spec_from_dict(data, functions)
        if gate:
            self._gate(spec, fail_on)
        digest = spec.content_digest
        with self._lock:
            index = self._load_index()
            section = index["specs"].setdefault(
                spec.name, {"active": None, "versions": []}
            )
            active = section.get("active")
            for meta in section["versions"]:
                if meta["version"] == active and meta["digest"] == digest:
                    return SpecVersion(
                        name=spec.name,
                        version=meta["version"],
                        digest=digest,
                        created=meta["created"],
                        note=meta.get("note", ""),
                        rules=meta.get("rules", 0),
                        path=str(self._spec_dir(spec.name) / f"v{active}.json"),
                        active=True,
                    )
            number = 1 + max(
                (meta["version"] for meta in section["versions"]), default=0
            )
            payload_path = self._spec_dir(spec.name) / f"v{number}.json"
            # Payload first, pointer second: a crash between the two
            # leaves an unreferenced file, never a dangling reference.
            _atomic_write_json(payload_path, dict(data))
            meta = {
                "version": number,
                "digest": digest,
                "created": time.time(),
                "note": note,
                "rules": len(spec.rules),
            }
            section["versions"].append(meta)
            section["active"] = number
            self._save_index(index)
            return SpecVersion(
                name=spec.name,
                version=number,
                digest=digest,
                created=meta["created"],
                note=note,
                rules=len(spec.rules),
                path=str(payload_path),
                active=True,
            )

    def _gate(self, spec: MappingSpecification, fail_on: str) -> None:
        from repro.analysis import Severity, lint_specification

        try:
            threshold = Severity.parse(fail_on)
        except ValueError as exc:
            raise RegistryError(str(exc)) from None
        report = lint_specification(spec)
        blocking = tuple(
            d for d in report.diagnostics if d.severity >= threshold
        )
        if blocking:
            codes = ", ".join(
                f"{d.code}({d.severity})" for d in blocking[:8]
            )
            raise PublishRejected(
                f"publish of {spec.name!r} rejected by vocablint: "
                f"{len(blocking)} diagnostic(s) at/above {threshold} ({codes}); "
                "fix the spec or lower the gate with fail_on",
                diagnostics=blocking,
            )

    def rollback(self, name: str, to_version: int | None = None) -> SpecVersion:
        """Repoint ``name``'s active version (default: the previous one).

        Non-destructive — every version file and history entry survives,
        so a rollback can itself be rolled forward by publishing again
        or by ``rollback(name, to_version=...)``.
        """
        with self._lock:
            index = self._load_index()
            section = self._section(index, name)
            versions = [meta["version"] for meta in section["versions"]]
            active = section.get("active")
            if to_version is None:
                candidates = [v for v in versions if active is None or v < active]
                if not candidates:
                    raise RegistryError(
                        f"specification {name!r} has no version before "
                        f"the active v{active} to roll back to"
                    )
                to_version = max(candidates)
            if to_version not in versions:
                raise RegistryError(
                    f"specification {name!r} has no version {to_version} "
                    f"(published: {versions})"
                )
            section["active"] = to_version
            self._save_index(index)
        return self._resolve(name, to_version)
