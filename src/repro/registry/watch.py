"""RegistryWatcher: poll a registry and fire callbacks on digest changes.

The live half of the lifecycle: ``repro serve --watch-registry DIR``
runs one of these next to the service (single-process *and* cluster
mode) so a ``repro registry publish``/``rollback`` from another process
reaches the running server within one poll interval — no restart, no
admin connection needed.

The watcher compares the registry's ``{name: active digest}`` state
(:meth:`SpecRegistry.state`) between polls and invokes the callback
once per changed name with ``(name, payload)`` — the raw declarative
dict, which is what both the in-process reload
(:meth:`~repro.serve.MediationService.reload_spec` after
``spec_from_dict``) and the cluster fan-out (JSON over the worker
pipes) consume.  Callback errors are reported through ``on_error`` (a
stderr line by default) and never kill the watch thread.
"""

from __future__ import annotations

import os
import sys
import threading
from collections.abc import Callable

from repro.registry.registry import SpecRegistry

__all__ = ["RegistryWatcher"]


class RegistryWatcher:
    """A daemon thread polling one registry for active-version changes."""

    def __init__(
        self,
        registry: SpecRegistry | str | os.PathLike[str],
        callback: Callable[[str, dict], None],
        *,
        interval: float = 2.0,
        names: "set[str] | None" = None,
        fire_initial: bool = True,
        on_error: Callable[[str, Exception], None] | None = None,
    ):
        if interval <= 0:
            raise ValueError(f"watch interval must be > 0, got {interval}")
        self.registry = (
            registry if isinstance(registry, SpecRegistry) else SpecRegistry(registry)
        )
        self.callback = callback
        self.interval = interval
        self.names = set(names) if names is not None else None
        #: Apply the registry's current state on start (the registry is
        #: the source of truth the moment the operator points at it);
        #: ``False`` only reacts to changes after the watcher started.
        self.fire_initial = fire_initial
        self.on_error = on_error or self._default_on_error
        self.fired = 0
        self._seen: dict[str, str] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @staticmethod
    def _default_on_error(name: str, exc: Exception) -> None:
        print(
            f"watch-registry: reload of {name!r} failed: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )

    def poll_once(self) -> int:
        """One poll cycle; returns how many callbacks fired."""
        try:
            state = self.registry.state()
        except Exception as exc:  # noqa: BLE001 - registry mid-update/missing
            self.on_error("<registry>", exc)
            return 0
        fired = 0
        for name in sorted(state):
            if self.names is not None and name not in self.names:
                continue
            digest = state[name]
            if self._seen.get(name) == digest:
                continue
            self._seen[name] = digest
            try:
                payload = self.registry.load_raw(name)
                self.callback(name, payload)
            except Exception as exc:  # noqa: BLE001 - keep watching
                self.on_error(name, exc)
                continue
            fired += 1
        self.fired += fired
        return fired

    def _run(self) -> None:
        if self.fire_initial:
            self.poll_once()
        while not self._stop.wait(self.interval):
            self.poll_once()

    def start(self) -> "RegistryWatcher":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="registry-watcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
