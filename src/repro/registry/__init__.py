"""Versioned spec registry: gated publish, rollback, hot-reload source.

The serving stack treats mapping specifications as long-lived, evolving
artifacts: an integration team publishes a new rule set, the running
``repro serve`` picks it up without a restart, and a bad publish rolls
back to the previous version.  This package is the durable half of that
lifecycle (the live half — the ``reload`` protocol op and
``--watch-registry`` — lives in :mod:`repro.serve` and :mod:`repro.cli`):

* :class:`SpecRegistry` — an on-disk store of declarative specification
  versions (see :mod:`repro.rules.declarative`) with an atomic index,
  content-digest identity, and non-destructive rollback;
* :func:`SpecRegistry.publish` — gated by ``vocablint``
  (:func:`repro.analysis.lint_specification`) at a configurable severity
  threshold, exactly like ``repro lint --fail-on``;
* :class:`RegistryWatcher` — a polling thread that fires a callback when
  a spec's *active* digest changes, driving hot reload.

See ``docs/lifecycle.md`` for the layout and workflow.
"""

from repro.registry.registry import (
    PublishRejected,
    RegistryError,
    SpecRegistry,
    SpecVersion,
)
from repro.registry.watch import RegistryWatcher

__all__ = [
    "PublishRejected",
    "RegistryError",
    "RegistryWatcher",
    "SpecRegistry",
    "SpecVersion",
]
