"""Deterministic fault injection for tests and benchmarks.

A :class:`FaultPolicy` sits inside a
:class:`~repro.resilience.adapter.SourceAdapter` and perturbs calls
*before* they reach the real source:

* ``fail=N`` — the first N calls raise
  :class:`~repro.core.errors.TransientSourceError` (fail-then-recover);
* ``latency=S`` (+ ``latency_every=K``) — every K-th call sleeps S
  seconds first (latency spikes, real sleeps so benches measure them);
* ``flaky=R`` — each call after the ``fail`` window fails with
  probability R, drawn from an RNG seeded with ``seed`` so runs are
  reproducible.

The string form accepted by the CLI's ``--fault NAME=SPEC`` flag is
parsed by :meth:`FaultPolicy.parse`: ``fail:2``, ``latency:0.05``,
``latency:0.05:3``, ``flaky:0.3``, ``flaky:0.3:7``.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable

from repro.core.errors import TransientSourceError

__all__ = ["FaultPolicy"]


class FaultPolicy:
    """Injects deterministic failures and latency into source calls."""

    def __init__(
        self,
        *,
        fail: int = 0,
        error: Exception | None = None,
        latency: float = 0.0,
        latency_every: int = 1,
        flaky: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if fail < 0:
            raise ValueError(f"fail must be >= 0, got {fail}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if latency_every < 1:
            raise ValueError(f"latency_every must be >= 1, got {latency_every}")
        if not 0.0 <= flaky <= 1.0:
            raise ValueError(f"flaky must be in [0, 1], got {flaky}")
        self.fail = fail
        self.error = error
        self.latency = latency
        self.latency_every = latency_every
        self.flaky = flaky
        self.seed = seed
        self._sleep = sleep
        self._rng = random.Random(seed)
        self.calls = 0
        self.failures_injected = 0
        self.spikes_injected = 0

    def before_call(self) -> None:
        """Perturb the next source call: sleep and/or raise."""
        self.calls += 1
        if self.latency > 0 and self.calls % self.latency_every == 0:
            self.spikes_injected += 1
            self._sleep(self.latency)
        if self.calls <= self.fail:
            self.failures_injected += 1
            raise self.error or TransientSourceError(
                f"injected failure {self.calls}/{self.fail}"
            )
        if self.flaky > 0 and self._rng.random() < self.flaky:
            self.failures_injected += 1
            raise self.error or TransientSourceError(
                f"injected flaky failure (rate={self.flaky})"
            )

    def reset(self) -> None:
        """Back to call zero with a freshly seeded RNG."""
        self._rng = random.Random(self.seed)
        self.calls = 0
        self.failures_injected = 0
        self.spikes_injected = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def fail_n(cls, n: int, **kwargs) -> FaultPolicy:
        """Fail the first ``n`` calls, then behave normally."""
        return cls(fail=n, **kwargs)

    @classmethod
    def latency_spike(cls, seconds: float, every: int = 1, **kwargs) -> FaultPolicy:
        """Sleep ``seconds`` before every ``every``-th call."""
        return cls(latency=seconds, latency_every=every, **kwargs)

    @classmethod
    def flaky_percent(cls, rate: float, seed: int = 0, **kwargs) -> FaultPolicy:
        """Fail each call with probability ``rate`` (seeded)."""
        return cls(flaky=rate, seed=seed, **kwargs)

    @classmethod
    def parse(cls, spec: str) -> FaultPolicy:
        """Build a policy from CLI syntax: ``kind:arg[:extra]``."""
        parts = spec.split(":")
        kind = parts[0].strip().lower()
        try:
            if kind == "fail" and len(parts) == 2:
                return cls.fail_n(int(parts[1]))
            if kind == "latency" and len(parts) in (2, 3):
                every = int(parts[2]) if len(parts) == 3 else 1
                return cls.latency_spike(float(parts[1]), every=every)
            if kind == "flaky" and len(parts) in (2, 3):
                seed = int(parts[2]) if len(parts) == 3 else 0
                return cls.flaky_percent(float(parts[1]), seed=seed)
        except ValueError as exc:
            raise ValueError(f"bad fault spec {spec!r}: {exc}") from None
        raise ValueError(
            f"bad fault spec {spec!r}: expected fail:N, "
            "latency:SECONDS[:EVERY], or flaky:RATE[:SEED]"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        bits = []
        if self.fail:
            bits.append(f"fail={self.fail}")
        if self.latency:
            bits.append(f"latency={self.latency}/{self.latency_every}")
        if self.flaky:
            bits.append(f"flaky={self.flaky}@{self.seed}")
        return f"FaultPolicy({', '.join(bits) or 'noop'})"
