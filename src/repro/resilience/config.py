"""ResilienceConfig: one object describing a mediator's fault tolerance.

The config is what users hand to :class:`~repro.mediator.Mediator` (or
build from CLI flags): a per-source timeout, a shared retry policy, a
breaker policy instantiated *per source* (breakers hold state, so each
source gets its own), strictness, the fan-out width, and optional
per-source fault injection.  :func:`wrap_sources` turns a plain source
mapping into adapters under one config.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.engine.source import Source
from repro.resilience.adapter import SourceAdapter
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPolicy
from repro.resilience.policy import BreakerPolicy, RetryPolicy

__all__ = ["ResilienceConfig", "wrap_sources"]

#: Upper bound on the default thread-pool width (one worker per source,
#: capped): mediation calls a handful of sources, not hundreds.
_MAX_DEFAULT_WORKERS = 8


@dataclass
class ResilienceConfig:
    """Everything the mediator needs to call sources defensively."""

    #: Whole-call deadline per source, seconds (includes backoff waits).
    timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Raise :class:`~repro.core.errors.SourceUnavailableError` on any
    #: source failure instead of returning a partial answer.
    strict: bool = False
    #: Fan-out width; ``None`` sizes to the source count (capped at 8),
    #: ``1`` forces serial execution.
    max_workers: int | None = None
    #: Per-source fault injection, keyed by source name.
    fault_policies: Mapping[str, FaultPolicy] = field(default_factory=dict)
    #: Injectable time for tests (monotonic clock + sleep).
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")

    def adapter_for(self, source: Source) -> SourceAdapter:
        """A fresh adapter (own breaker) for one source under this config."""
        return SourceAdapter(
            source,
            timeout=self.timeout,
            retry=self.retry,
            breaker=CircuitBreaker(self.breaker, clock=self.clock, name=source.name),
            fault_policy=self.fault_policies.get(source.name),
            clock=self.clock,
            sleep=self.sleep,
        )

    def workers_for(self, n_jobs: int) -> int:
        """Pool width for ``n_jobs`` concurrent source calls."""
        if self.max_workers is not None:
            return min(self.max_workers, max(1, n_jobs))
        return min(_MAX_DEFAULT_WORKERS, max(1, n_jobs))


def wrap_sources(
    sources: Mapping[str, Source], config: ResilienceConfig
) -> dict[str, SourceAdapter]:
    """Wrap every source in its own adapter under one config.

    Already-wrapped sources are re-wrapped around their *underlying*
    source so a config change never stacks adapters.
    """
    return {
        name: config.adapter_for(getattr(source, "source", source))
        for name, source in sources.items()
    }
