"""Circuit breaker: fail fast on a source that keeps failing.

The classic three-state machine:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures, calls are
  refused outright (the mediator records them as skipped) until
  ``cooldown`` seconds pass.
* **half-open** — after the cooldown one probe call is admitted; success
  closes the circuit, failure re-opens it and restarts the cooldown.

The breaker is shared across threads for one source, so all state
mutation happens under a lock.  Time is injectable (``clock``) so tests
drive the cooldown without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.resilience.policy import BreakerPolicy

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-source three-state breaker driven by call outcomes."""

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ):
        self.policy = policy or BreakerPolicy()
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: (from_state, to_state) pairs in order — the audit trail the
        #: observability layer and ``repro sources`` report.
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> str:
        """Current state, refreshing open → half-open when cooled down."""
        with self._lock:
            self._refresh_locked()
            return self._state

    @property
    def transition_count(self) -> int:
        return len(self.transitions)

    def allow(self) -> bool:
        """May a call proceed right now?

        Open circuits refuse until the cooldown elapses, then admit one
        half-open probe (and refuse concurrent probes until it reports).
        """
        with self._lock:
            self._refresh_locked()
            return self._state in (CLOSED, HALF_OPEN)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._transition_locked(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._opened_at = self._clock()
                self._transition_locked(OPEN)
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.policy.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition_locked(OPEN)

    # -- internals ----------------------------------------------------------

    def _refresh_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.policy.cooldown
        ):
            self._transition_locked(HALF_OPEN)

    def _transition_locked(self, to_state: str) -> None:
        self.transitions.append((self._state, to_state))
        self._state = to_state

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"CircuitBreaker({label} {self.state}, failures={self._consecutive_failures})"
