"""Fault-tolerant source access for federated mediation.

The paper's mediator (Section 2, Fig. 1) fronts autonomous sources that
are, in any real deployment, unreliable network peers.  This package
gives the engine/mediator stack the standard defenses:

* :class:`SourceAdapter` — per-source deadlines, bounded retries with
  exponential backoff + jitter, and a circuit breaker, wrapped around
  :class:`~repro.engine.source.Source` without changing its interface;
* :class:`CircuitBreaker` / :class:`RetryPolicy` / :class:`BreakerPolicy`
  — the state machine and its declarative tuning knobs;
* :class:`FaultPolicy` — deterministic fault injection (fail-N-times,
  latency spikes, seeded flaky-percent) for tests and benchmarks;
* :class:`ResilienceConfig` — the bundle a
  :class:`~repro.mediator.Mediator` takes to turn all of this on,
  including concurrent fan-out and strict-vs-partial answer semantics.

See ``docs/fault_tolerance.md`` for semantics and recipes and
``docs/architecture.md`` for where this layer sits in the dataflow.
"""

from repro.resilience.adapter import (
    FAILED,
    OK,
    RETRIED,
    RETRYABLE,
    SKIPPED,
    TIMED_OUT,
    SourceAdapter,
    SourceOutcome,
    record_outcome,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.config import ResilienceConfig, wrap_sources
from repro.resilience.faults import FaultPolicy
from repro.resilience.policy import BreakerPolicy, RetryPolicy

__all__ = [
    "SourceAdapter",
    "SourceOutcome",
    "record_outcome",
    "RETRYABLE",
    "OK",
    "RETRIED",
    "FAILED",
    "TIMED_OUT",
    "SKIPPED",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ResilienceConfig",
    "wrap_sources",
    "FaultPolicy",
    "BreakerPolicy",
    "RetryPolicy",
]
