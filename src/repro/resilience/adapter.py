"""SourceAdapter: deadlines, retries, and a breaker around one source.

The adapter wraps an :class:`~repro.engine.source.Source` and duck-types
its interface, so everything that talks to a source (the mediator, the
wrapper machinery, direct callers) can talk to the adapter instead.  One
call through the adapter gets:

* a **cooperative deadline**: sources here are in-process and cannot be
  preempted, so the deadline is checked between attempts and a result
  that lands after it is *discarded* and recorded as timed-out — the
  semantics a network client with a socket timeout would see;
* a **bounded retry loop** with exponential backoff + seeded jitter
  (:class:`~repro.resilience.policy.RetryPolicy`), retrying only
  transient errors (``RETRYABLE``) — capability and evaluation errors
  propagate immediately;
* a **circuit breaker** consulted before every attempt, so once the
  circuit opens mid-call the remaining retries fail fast;
* optional **fault injection** (:class:`~repro.resilience.faults.FaultPolicy`)
  applied before the real call, for tests and benchmarks.

:meth:`call` never raises for source failure — it returns
``(rows | None, SourceOutcome)`` so the mediator can assemble partial
answers.  Outcomes are reported to :mod:`repro.obs` via
:func:`record_outcome`, which is safe to call from any thread: a pool
worker running under an ``obs.bind`` handoff (what the mediator's
fan-out does) records into the parent trace; a thread with no tracer
records nothing.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.core.ast import Query
from repro.core.errors import SourceUnavailableError, TransientSourceError
from repro.engine.source import Source
from repro.obs import trace as obs
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPolicy
from repro.resilience.policy import RetryPolicy

__all__ = [
    "SourceAdapter",
    "SourceOutcome",
    "record_outcome",
    "RETRYABLE",
    "OK",
    "RETRIED",
    "FAILED",
    "TIMED_OUT",
    "SKIPPED",
]

OK = "ok"
RETRIED = "retried"
FAILED = "failed"
TIMED_OUT = "timed-out"
SKIPPED = "skipped-open-circuit"

#: Errors worth retrying: injected transients plus the OS-level failures a
#: real network wrapper would surface.  Everything else (CapabilityError,
#: EvaluationError, bugs) propagates on the first attempt.
RETRYABLE: tuple[type[BaseException], ...] = (
    TransientSourceError,
    TimeoutError,
    ConnectionError,
    OSError,
)


@dataclass
class SourceOutcome:
    """What happened to one resilient source call."""

    source: str
    status: str
    attempts: int = 1
    retries: int = 0
    rows: int = 0
    elapsed: float = 0.0
    error: str | None = None
    breaker_state: str | None = None
    breaker_transitions: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did the call produce rows (possibly after retries)?"""
        return self.status in (OK, RETRIED)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "status": self.status,
            "ok": self.ok,
            "attempts": self.attempts,
            "retries": self.retries,
            "rows": self.rows,
            "elapsed_ms": round(self.elapsed * 1e3, 3),
            "error": self.error,
            "breaker_state": self.breaker_state,
            "breaker_transitions": [list(t) for t in self.breaker_transitions],
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source}: {self.status} ({self.attempts} attempts, {self.rows} rows)"


def record_outcome(outcome: SourceOutcome) -> None:
    """Emit one outcome's observability counters (any thread).

    Kept separate from the retry loop so callers that batch outcomes
    (the mediator) control when reporting happens.  Thread-safe: the
    tracer's registries are lock-guarded, and a pool worker that entered
    an ``obs.bind`` handoff records into the parent trace — the
    mediator's fan-out calls this from its workers.  A process-wide
    metrics registry (``repro serve --metrics``) additionally receives
    the full outcome as a per-source scorecard record, tracer or no
    tracer.  With neither active it is a no-op.
    """
    registry = obs.metrics_sink()
    if registry is not None:
        registry.record_source_outcome(outcome)
    if not obs.recording():
        return
    obs.count("resilience.calls")
    if outcome.retries:
        obs.count("resilience.retries", outcome.retries)
    if outcome.status == TIMED_OUT:
        obs.count("resilience.timeouts")
    if outcome.status in (FAILED, TIMED_OUT):
        obs.count("resilience.failures")
    if outcome.status == SKIPPED:
        obs.count("resilience.skipped_open_circuit")
    if outcome.breaker_transitions:
        obs.count("resilience.breaker_transitions", len(outcome.breaker_transitions))
    obs.gauge_max(
        f"resilience.{outcome.source}.latency_ms", round(outcome.elapsed * 1e3, 3)
    )


class SourceAdapter:
    """A fault-tolerant proxy for one source (duck-types ``Source``)."""

    def __init__(
        self,
        source: Source,
        *,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fault_policy: FaultPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.source = source
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(name=source.name, clock=clock)
        self.fault_policy = fault_policy
        self._clock = clock
        self._sleep = sleep
        #: Outcome of the most recent :meth:`call`/:meth:`execute`/:meth:`ping`.
        self.last_outcome: SourceOutcome | None = None

    # -- Source interface delegation ----------------------------------------

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def relations(self):
        return self.source.relations

    @property
    def capability(self):
        return self.source.capability

    @property
    def virtuals(self):
        return self.source.virtuals

    @property
    def grammar(self):
        return self.source.grammar

    def relation(self, name: str):
        return self.source.relation(name)

    def select(self, instances: Mapping[tuple, str], query: Query) -> list[dict]:
        return self.source.select(instances, query)

    def select_rows(self, relation: str, query: Query) -> list[dict]:
        return self.source.select_rows(relation, query)

    def execute_rows(self, relation: str, query: Query) -> list[dict]:
        key = ((), None)
        return [bound[key] for bound in self.execute({key: relation}, query)]

    # -- resilient calls -----------------------------------------------------

    def call(
        self, instances: Mapping[tuple, str], query: Query
    ) -> tuple[list[dict] | None, SourceOutcome]:
        """Execute with deadline/retry/breaker; never raises for failure.

        Returns ``(rows, outcome)`` on success and ``(None, outcome)``
        when the call failed, timed out, or was refused by an open
        circuit.  Non-retryable exceptions (capability violations,
        evaluation bugs) still propagate — those are caller errors, not
        source unavailability.
        """
        rows, outcome = self._run(lambda: self.source.execute(instances, query))
        self.last_outcome = outcome
        return rows, outcome

    def execute(self, instances: Mapping[tuple, str], query: Query) -> list[dict]:
        """Drop-in ``Source.execute``: resilient, raising on failure.

        For standalone (non-mediated) use.  Reports its own outcome to
        the observability layer — callers going through :meth:`call`
        (the mediator) report outcomes themselves, so nothing is counted
        twice.
        """
        rows, outcome = self.call(instances, query)
        record_outcome(outcome)
        if rows is None:
            raise SourceUnavailableError(
                f"source {self.name!r} unavailable: {outcome.status}"
                + (f" ({outcome.error})" if outcome.error else ""),
                outcomes=(outcome,),
            )
        return rows

    def ping(self) -> dict:
        """Resilient health probe: the source's row counts, or raise.

        Powers the ``repro sources`` health listing.  Failures raise
        :class:`SourceUnavailableError` after the usual retry budget.
        """
        info, outcome = self._run(lambda: self.source.ping())
        self.last_outcome = outcome
        record_outcome(outcome)
        if info is None:
            raise SourceUnavailableError(
                f"source {self.name!r} failed health check: {outcome.status}"
                + (f" ({outcome.error})" if outcome.error else ""),
                outcomes=(outcome,),
            )
        return info

    # -- the retry loop ------------------------------------------------------

    def _run(self, fn: Callable[[], object]) -> tuple[object | None, SourceOutcome]:
        started = self._clock()
        transitions_before = self.breaker.transition_count
        rng = self.retry.rng()
        attempts = 0
        last_error: str | None = None
        status = FAILED

        def finish(result, status: str, rows: int = 0) -> tuple[object, SourceOutcome]:
            transitions = self.breaker.transitions[transitions_before:]
            outcome = SourceOutcome(
                source=self.name,
                status=status,
                attempts=attempts,
                retries=max(0, attempts - 1),
                rows=rows,
                elapsed=self._clock() - started,
                error=last_error,
                breaker_state=self.breaker.state,
                breaker_transitions=list(transitions),
            )
            return result, outcome

        for attempt in range(self.retry.attempts):
            # Re-check the breaker before *every* attempt: another thread
            # (or an earlier retry) may have opened the circuit mid-call.
            if not self.breaker.allow():
                if attempts == 0:
                    return finish(None, SKIPPED)
                return finish(None, status)
            if self.timeout is not None and self._clock() - started >= self.timeout:
                return finish(None, TIMED_OUT)
            attempts += 1
            try:
                if self.fault_policy is not None:
                    self.fault_policy.before_call()
                result = fn()
            except RETRYABLE as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                status = FAILED
                self.breaker.record_failure()
                if attempt < self.retry.retries:
                    delay = self.retry.delay(attempt, rng)
                    if self.timeout is not None:
                        budget = self.timeout - (self._clock() - started)
                        if budget <= 0:
                            return finish(None, TIMED_OUT)
                        delay = min(delay, budget)
                    if delay > 0:
                        self._sleep(delay)
                continue
            # Success — unless the deadline already passed, in which case a
            # real client would have hung up: discard the late result.
            if self.timeout is not None and self._clock() - started > self.timeout:
                last_error = last_error or (
                    f"result arrived after {self.timeout:.3g}s deadline"
                )
                self.breaker.record_failure()
                return finish(None, TIMED_OUT)
            self.breaker.record_success()
            rows = len(result) if isinstance(result, list) else 0
            return finish(result, RETRIED if attempts > 1 else OK, rows)
        return finish(None, status)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SourceAdapter({self.name}, breaker={self.breaker.state})"
