"""Declarative retry and circuit-breaker policies.

Both policies are frozen dataclasses: they describe *what* fault tolerance
looks like (how many retries, how long a cooldown) and carry no state.
The moving parts live in :mod:`repro.resilience.adapter` (the retry loop)
and :mod:`repro.resilience.breaker` (the state machine), which consume
these descriptions.

Backoff is exponential with seeded jitter: retry ``i`` sleeps
``min(base * multiplier**i, backoff_max)`` scaled by a random factor in
``[1, 1 + jitter]``.  The RNG is seeded per policy so schedules are
reproducible — tests can assert the exact sleep sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "BreakerPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one source call.

    ``retries`` is the number of *re*-tries: a call gets ``retries + 1``
    attempts total.  ``retries=0`` disables retrying without disabling
    the adapter's outcome bookkeeping.
    """

    retries: int = 2
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    #: Extra random fraction added to each delay, drawn from [0, jitter].
    jitter: float = 0.1
    #: Seed for the jitter RNG; ``None`` gives a nondeterministic schedule.
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def attempts(self) -> int:
        """Total attempts one call may use (first try + retries)."""
        return self.retries + 1

    def rng(self) -> random.Random:
        """A fresh jitter RNG for one call's schedule."""
        return random.Random(self.seed)

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Sleep before retry ``retry_index`` (0-based)."""
        raw = self.backoff_base * self.backoff_multiplier**retry_index
        return min(raw, self.backoff_max) * (1.0 + self.jitter * rng.random())

    def schedule(self, rng: random.Random | None = None) -> list[float]:
        """The full sleep sequence a maximally unlucky call would see."""
        rng = rng or self.rng()
        return [self.delay(i, rng) for i in range(self.retries)]


@dataclass(frozen=True)
class BreakerPolicy:
    """When a circuit breaker trips and how long it stays open.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``cooldown`` seconds the next :meth:`~CircuitBreaker.allow` probe is
    admitted half-open, and its result closes or re-opens the circuit.
    """

    failure_threshold: int = 5
    cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
