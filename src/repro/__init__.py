"""vocabmap — constraint-query mapping across heterogeneous sources.

A full reproduction of Chang & Garcia-Molina, "Mind Your Vocabulary:
Query Mapping Across Heterogeneous Information Sources" (SIGMOD 1999,
extended version): the rule-based constraint mapping framework, Algorithms
SCM / DNF / PSafe / TDQM and Procedure EDNF, plus a relational mediation
substrate to execute and verify translations end-to-end.

Quickstart::

    from repro import parse_query, tdqm, K_AMAZON, to_text
    q = parse_query('([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]')
    print(to_text(tdqm(q, K_AMAZON)))
    # [author = "Clancy, Tom"] or [author = "Klancy, Tom"]
"""

from repro.core import (
    FALSE,
    TRUE,
    And,
    AttrRef,
    BoolConst,
    C,
    CapabilityError,
    Constraint,
    Matcher,
    Matching,
    Or,
    ParseError,
    Query,
    RejectMatch,
    Rule,
    RuleError,
    TranslationError,
    VocabMapError,
    attr,
    build_filter,
    compactness,
    compactness_ratio,
    conj,
    disj,
    disjunctivize,
    dnf_map,
    explain_translation,
    dnf_map_translate,
    dnf_term_count,
    dnf_terms,
    ednf,
    is_safe,
    is_safe_base,
    is_separable_base,
    is_separable_general,
    normalize,
    parse_query,
    prop_equivalent,
    prop_implies,
    psafe,
    psafe_partition,
    query_stats,
    render_tree,
    scm,
    simplify_query,
    scm_translate,
    tdqm,
    tdqm_translate,
    to_dnf,
    to_text,
    translate_for_sources,
)
from repro.mediator import (
    Mediator,
    bookstore_federation,
    bookstore_mediator,
    faculty_mediator,
    map_mediator,
    synthetic_federation,
)
from repro.resilience import (
    CircuitBreaker,
    FaultPolicy,
    ResilienceConfig,
    RetryPolicy,
    SourceAdapter,
    SourceOutcome,
)
from repro.rules import (
    K1,
    K2,
    K_AMAZON,
    K_CLBOOKS,
    K_MAP,
    MappingSpecification,
    audit_vocabulary,
    builtin_specifications,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # query algebra
    "Query", "Constraint", "And", "Or", "BoolConst", "TRUE", "FALSE",
    "AttrRef", "attr", "C", "conj", "disj",
    "parse_query", "to_text", "render_tree", "normalize",
    "to_dnf", "dnf_terms", "dnf_term_count",
    # algorithms
    "scm", "scm_translate", "dnf_map", "dnf_map_translate",
    "tdqm", "tdqm_translate", "disjunctivize",
    "psafe", "psafe_partition", "ednf",
    "is_safe", "is_safe_base", "is_separable_base", "is_separable_general",
    "prop_equivalent", "prop_implies",
    "build_filter", "translate_for_sources", "explain_translation",
    "query_stats", "compactness", "compactness_ratio", "simplify_query",
    # rules
    "Rule", "Matching", "Matcher", "RejectMatch", "MappingSpecification",
    "audit_vocabulary", "builtin_specifications",
    "K_AMAZON", "K_CLBOOKS", "K1", "K2", "K_MAP",
    # mediation
    "Mediator", "bookstore_mediator", "bookstore_federation",
    "faculty_mediator", "map_mediator", "synthetic_federation",
    # resilience
    "ResilienceConfig", "SourceAdapter", "SourceOutcome",
    "CircuitBreaker", "RetryPolicy", "FaultPolicy",
    # errors
    "VocabMapError", "ParseError", "RuleError", "TranslationError",
    "CapabilityError",
]
