"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``translate``
    Translate a query for a target specification::

        python -m repro translate K_Amazon '[ln = "Clancy"] and [fn = "Tom"]'

``explain``
    Narrate the whole TDQM run (cases, partitions, matchings)::

        python -m repro explain K_Amazon '([ln = "a"] or [ln = "b"]) and [fn = "c"]'

``filter``
    Show per-source mappings plus the residue filter F (Eq. 2/3)::

        python -m repro filter K1,K2 '[fac.dept = cs]'

``stats``
    Run the fully-traced pipeline (translate, filter, execute when the
    specs name a built-in scenario) and emit the span tree + counter set::

        python -m repro stats K_Amazon '[ln = "Clancy"] and [fn = "Tom"]' --json

    Resilience flags (``--timeout/--retries/--backoff/--strict``, plus
    ``--fault NAME=SPEC`` for deterministic fault injection) run the
    mediated execution through fault-tolerant source adapters and add a
    per-source outcome section to the report; see
    ``docs/fault_tolerance.md``.

``sources``
    Health-check the built-in simulated sources through the resilience
    layer (retry/breaker semantics apply) and list row counts::

        python -m repro sources
        python -m repro sources --fault 'Amazon=fail:3' --retries 1 --json

``batch``
    Translate many queries for many specifications in one pass, sharing
    normalization, compiled rule indexes, and the translation cache::

        python -m repro batch K_Amazon,K_map '[ln = "Clancy"]' '[subject = "war"]'
        python -m repro batch K_Amazon --queries-file queries.txt --json

``serve``
    Run the concurrent mediation service (``repro.serve``) over one of
    the built-in scenarios, speaking JSON-lines on stdin/stdout (the
    default) or TCP (``--tcp``)::

        echo '{"op": "translate", "query": "[ln = \\"Clancy\\"]"}' \\
            | python -m repro serve K_Amazon
        python -m repro serve K_Amazon --tcp --port 7654

    Admission control (``--max-concurrency``/``--queue-depth``),
    pipelined stdin handling (``--workers``), and the resilience flags
    all apply; ``--metrics`` turns on continuous telemetry (the
    ``metrics``/``sources``/``slowlog``/``health`` admin ops); see
    ``docs/serving.md`` for the protocol and tuning.

``top``
    Snapshot a running ``serve --tcp`` instance: health, throughput,
    per-source scorecards, and the slow-query log::

        python -m repro top 127.0.0.1:7654
        python -m repro top --json

``specs``
    List the built-in mapping specifications and their rules.

``audit``
    Report which of a query's constraints no rule can touch::

        python -m repro audit K_Amazon '[ln = "x"] and [shoe-size = 9]'

``lint``
    Statically analyze mapping specifications (vocablint)::

        python -m repro lint all
        python -m repro lint K_Amazon,K_map --severity info
        python -m repro lint shop -f spec.json --vocab vocab.json --json

    Exit code 0 when clean, 1 when any diagnostic reaches the
    ``--fail-on`` severity (default ``error``); see
    ``docs/static_analysis.md`` for the VM0xx catalog.

Every command additionally accepts ``--trace`` (print the span tree to
stderr) and ``--stats`` (print the aggregate counters to stderr); see
``docs/observability.md`` for the counter glossary.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading

from repro.core.errors import SpecificationError, VocabMapError
from repro.core.explain import explain_translation
from repro.core.filters import build_filter
from repro.core.json_io import query_to_json
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import tdqm_translate
from repro.obs import counters_table, current_tracer, render_span, tracing
from repro.rules import audit_vocabulary, builtin_specifications

__all__ = ["main", "build_arg_parser"]


def _spec(name: str, spec_file: str | None = None):
    if spec_file is not None:
        from repro.rules.declarative import spec_from_dict

        with open(spec_file) as handle:
            data = json.load(handle)
        if isinstance(data, list):
            loaded = {entry["name"]: spec_from_dict(entry) for entry in data}
        else:
            spec = spec_from_dict(data)
            loaded = {spec.name: spec}
        if name in loaded:
            return loaded[name]
        if len(loaded) == 1 and name in ("", "-"):
            return next(iter(loaded.values()))
        known = ", ".join(sorted(loaded))
        raise SystemExit(f"{spec_file} defines {known}, not {name!r}")
    specs = builtin_specifications()
    if name not in specs:
        known = ", ".join(sorted(specs))
        raise SystemExit(f"unknown specification {name!r}; built-ins: {known}")
    return specs[name]


def _json_counters(payload: dict) -> dict:
    """Attach the active tracer's counters to a ``--json`` payload."""
    tracer = current_tracer()
    if tracer is not None:
        payload["counters"] = dict(sorted(tracer.counters.items()))
    return payload


def _cmd_translate(args) -> int:
    query = parse_query(args.query)
    result = tdqm_translate(
        query, _spec(args.spec, args.spec_file), interpret=args.interpret
    )
    if args.json:
        payload = {
            "spec": args.spec,
            "query": to_text(query),
            "mapping": query_to_json(result.mapping),
            "mapping_text": to_text(result.mapping),
            "exact": result.exact,
        }
        print(json.dumps(_json_counters(payload), indent=2, sort_keys=True))
        return 0
    print(to_text(result.mapping))
    if args.verbose:
        print(f"exact: {result.exact}", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    query = parse_query(args.query)
    print(
        explain_translation(
            query, _spec(args.spec, args.spec_file), interpret=args.interpret
        )
    )
    return 0


def _cmd_filter(args) -> int:
    query = parse_query(args.query)
    specs = {name: _spec(name) for name in args.specs.split(",")}
    plan = build_filter(query, specs)
    if args.json:
        payload = {
            "query": to_text(query),
            "mappings": {
                name: {
                    "text": to_text(mapping),
                    "json": query_to_json(mapping),
                }
                for name, mapping in sorted(plan.mappings.items())
            },
            "filter": {
                "text": to_text(plan.filter),
                "json": query_to_json(plan.filter),
            },
        }
        print(json.dumps(_json_counters(payload), indent=2, sort_keys=True))
        return 0
    for name in sorted(plan.mappings):
        print(f"S({name}) = {to_text(plan.mappings[name])}")
    print(f"F = {to_text(plan.filter)}")
    return 0


def _cmd_batch(args) -> int:
    from repro.perf import TranslationCache, translate_batch

    specs = {name: _spec(name, args.spec_file) for name in args.specs.split(",")}
    texts = list(args.queries)
    if args.queries_file:
        handle = sys.stdin if args.queries_file == "-" else open(args.queries_file)
        with handle:
            texts.extend(
                line.strip() for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            )
    if not texts:
        raise SystemExit("batch: no queries given (positional args or --queries-file)")
    queries = [parse_query(text) for text in texts]
    cache = TranslationCache()
    results = translate_batch(queries, specs, cache=cache)
    if args.json:
        payload = {
            "specs": sorted(specs),
            "results": [
                {
                    "query": text,
                    "mappings": {
                        name: {
                            "text": to_text(result.mapping),
                            "json": query_to_json(result.mapping),
                            "exact": result.exact,
                        }
                        for name, result in sorted(per_spec.items())
                    },
                }
                for text, per_spec in zip(texts, results)
            ],
            "cache": cache.stats.to_dict(),
        }
        print(json.dumps(_json_counters(payload), indent=2, sort_keys=True))
        return 0
    for text, per_spec in zip(texts, results):
        print(f"Q = {text}")
        for name in sorted(per_spec):
            result = per_spec[name]
            exact = "exact" if result.exact else "subsuming"
            print(f"  S({name}) = {to_text(result.mapping)}  [{exact}]")
    if args.verbose:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate)",
            file=sys.stderr,
        )
    return 0


def _resilience_from_args(args):
    """A ResilienceConfig from CLI flags, or None when none were given."""
    used = (
        args.timeout is not None
        or args.retries is not None
        or args.backoff is not None
        or args.strict
        or args.fault
    )
    if not used:
        return None
    from repro.resilience import FaultPolicy, ResilienceConfig, RetryPolicy

    fault_policies = {}
    for entry in args.fault or ():
        name, eq, spec = entry.partition("=")
        if not eq or not name or not spec:
            raise SystemExit(
                f"bad --fault {entry!r}: expected NAME=SPEC, e.g. 'Amazon=fail:2'"
            )
        try:
            fault_policies[name] = FaultPolicy.parse(spec)
        except ValueError as exc:
            raise SystemExit(f"bad --fault {entry!r}: {exc}") from None
    retry = RetryPolicy(
        retries=args.retries if args.retries is not None else 2,
        backoff_base=args.backoff if args.backoff is not None else 0.05,
    )
    return ResilienceConfig(
        timeout=args.timeout,
        retry=retry,
        strict=args.strict,
        fault_policies=fault_policies,
    )


def _cmd_stats(args) -> int:
    from repro.obs.stats import (
        builtin_mediator,
        collect_stats,
        render_stats,
        stats_to_dict,
    )

    specs = {name: _spec(name, args.spec_file) for name in args.spec.split(",")}
    mediator = None if args.no_execute else builtin_mediator(set(specs))
    resilience = _resilience_from_args(args)
    report = collect_stats(args.query, specs, mediator, resilience=resilience)
    if args.json:
        print(json.dumps(stats_to_dict(report), indent=2, sort_keys=True))
    else:
        print(render_stats(report))
    return 0


def _builtin_sources() -> dict:
    """Every simulated source the built-in scenarios define, by name."""
    from repro.mediator import (
        bookstore_federation,
        faculty_mediator,
        map_mediator,
        realty_mediator,
    )

    sources: dict = {}
    for factory in (bookstore_federation, faculty_mediator, realty_mediator, map_mediator):
        for name, source in factory().sources.items():
            sources.setdefault(name, source)
    return sources


def _cmd_sources(args) -> int:
    from repro.core.errors import SourceUnavailableError
    from repro.resilience import ResilienceConfig

    config = _resilience_from_args(args) or ResilienceConfig()
    reports = []
    healthy = True
    for name, source in sorted(_builtin_sources().items()):
        adapter = config.adapter_for(source)
        try:
            info = adapter.ping()
            outcome = adapter.last_outcome
            reports.append(
                {
                    "source": name,
                    "healthy": True,
                    "rows": info["rows"],
                    "relations": info["relations"],
                    "outcome": outcome.to_dict() if outcome else None,
                }
            )
        except SourceUnavailableError as exc:
            healthy = False
            outcome = exc.outcomes[0] if exc.outcomes else None
            reports.append(
                {
                    "source": name,
                    "healthy": False,
                    "rows": None,
                    "relations": {},
                    "outcome": outcome.to_dict() if outcome else None,
                }
            )
    if args.json:
        print(json.dumps(_json_counters({"sources": reports}), indent=2, sort_keys=True))
    else:
        for report in reports:
            outcome = report["outcome"] or {}
            if report["healthy"]:
                rels = ", ".join(
                    f"{rel}={count}" for rel, count in sorted(report["relations"].items())
                )
                detail = f"{report['rows']} rows ({rels})"
            else:
                detail = f"{outcome.get('status', 'failed')}: {outcome.get('error')}"
            state = "up  " if report["healthy"] else "DOWN"
            attempts = outcome.get("attempts", 1)
            breaker = outcome.get("breaker_state", "closed")
            print(
                f"{report['source']:<10} {state}  {detail}  "
                f"[attempts={attempts} breaker={breaker}]"
            )
    return 0 if healthy else 1


def _resilience_args_from_args(args) -> dict | None:
    """The resilience flags as plain data, shippable to spawned workers.

    Validates exactly like :func:`_resilience_from_args` (so cluster mode
    reports bad ``--fault`` specs before forking anything), but returns
    picklable primitives each worker reconstructs its own policies from.
    """
    if _resilience_from_args(args) is None:
        return None
    return {
        "timeout": args.timeout,
        "retries": args.retries if args.retries is not None else 2,
        "backoff": args.backoff if args.backoff is not None else 0.05,
        "strict": args.strict,
        "faults": {
            name: spec
            for name, _, spec in (entry.partition("=") for entry in args.fault or ())
        },
    }


def _serve_cluster(args) -> int:
    """`repro serve --processes N`: the sharded multi-process front-end."""
    from repro.serve import ClusterConfig, ClusterError, ClusterServer, ServiceConfig

    try:
        config = ClusterConfig(
            spec_names=tuple(sorted(set(args.specs.split(",")))),
            processes=args.processes,
            service=ServiceConfig(
                max_concurrency=args.max_concurrency, queue_depth=args.queue_depth
            ),
            snapshot_dir=args.snapshot_dir,
            snapshot_interval=args.snapshot_interval,
            snapshot_limit=args.snapshot_limit,
            metrics=args.metrics,
            resilience_args=_resilience_args_from_args(args),
            interpret=args.interpret,
        )
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}") from None
    cluster = ClusterServer(config, host=args.host, port=args.port)
    try:
        host, port = cluster.start()
    except ClusterError as exc:
        cluster.stop()
        raise SystemExit(f"serve: {exc}") from None
    watcher = None
    if args.watch_registry:
        from repro.registry import RegistryWatcher

        # The front-end fans each changed payload to every shard through
        # the rolling reload, so all workers land on the same version.
        watcher = RegistryWatcher(
            args.watch_registry,
            lambda name, payload: cluster.reload_specs([payload]),
            interval=args.watch_interval,
            names=set(config.spec_names),
        ).start()
    suffix = ", metrics on" if args.metrics else ""
    if args.snapshot_dir:
        suffix += f", snapshots in {args.snapshot_dir}"
    if args.watch_registry:
        suffix += f", watching {args.watch_registry}"
    print(
        f"serving {args.specs} on {host}:{port} "
        f"(JSON-lines, {args.processes} worker processes{suffix})",
        file=sys.stderr,
    )
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        if watcher is not None:
            watcher.stop()
        cluster.stop()
    return 0


def _cmd_serve(args) -> int:
    from repro.obs.stats import builtin_mediator
    from repro.serve import MediationService, ServiceConfig, serve_jsonl, serve_tcp

    names = set(args.specs.split(","))
    mediator = builtin_mediator(names)
    if mediator is None:
        known = "K_Amazon | K_Clbooks | K1,K2 | K_map"
        raise SystemExit(
            f"serve: {sorted(names)} does not name a built-in scenario ({known})"
        )
    if args.processes < 1:
        raise SystemExit(f"serve: --processes must be >= 1, got {args.processes}")
    if args.processes > 1:
        if not args.tcp:
            raise SystemExit("serve: --processes needs --tcp (workers are TCP shards)")
        return _serve_cluster(args)
    mediator.interpret = args.interpret
    resilience = _resilience_from_args(args)
    if resilience is not None:
        mediator = mediator.with_resilience(resilience)
    if not args.interpret:
        # Compile all rule closures before the first request lands.
        for spec in mediator.specs.values():
            spec.compiled_index().precompile()
    try:
        config = ServiceConfig(
            max_concurrency=args.max_concurrency, queue_depth=args.queue_depth
        )
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}") from None
    metrics = None
    if args.metrics:
        from repro import obs

        # Installed process-wide so every layer's counters tee in; the
        # service feeds its histograms/slowlog through the same registry.
        metrics = obs.install(obs.MetricsRegistry())
    service = MediationService(mediator, config, metrics=metrics)

    timer = None
    restore_banner = ""
    if args.snapshot_dir is not None and mediator.translation_cache is not None:
        import os as _os

        from repro.serve.snapshot import SnapshotTimer, restore_snapshot, specs_by_name
        from repro.serve.worker import snapshot_path

        specs = specs_by_name(mediator.specs)
        path = snapshot_path(args.snapshot_dir, 0)
        if _os.path.exists(path):
            try:
                report = restore_snapshot(path, mediator.translation_cache, specs)
            except ValueError as exc:
                raise SystemExit(f"serve: {exc}") from None
            restore_banner = f", {report.restored} cached translations restored"
        try:
            timer = SnapshotTimer(
                path,
                mediator.translation_cache,
                specs,
                interval=args.snapshot_interval,
                limit=args.snapshot_limit,
            ).start()
        except ValueError as exc:
            raise SystemExit(f"serve: {exc}") from None
    if timer is not None:
        # Hot reloads repoint the snapshot table at the new spec object
        # so the timer never keeps exporting under a retired digest.
        service.reload_hooks.append(timer.update_spec)

    watcher = None
    if args.watch_registry:
        from repro.registry import RegistryWatcher
        from repro.rules.declarative import spec_from_dict

        served = {spec.name for spec in mediator.specs.values()}
        watcher = RegistryWatcher(
            args.watch_registry,
            lambda name, payload: service.reload_spec(spec_from_dict(payload)),
            interval=args.watch_interval,
            names=served,
        ).start()

    try:
        if args.tcp:
            server = serve_tcp(service, host=args.host, port=args.port)
            host, port = server.server_address[:2]
            suffix = ", metrics on" if metrics is not None else ""
            if args.watch_registry:
                suffix += f", watching {args.watch_registry}"
            print(
                f"serving {args.specs} on {host}:{port} "
                f"(JSON-lines{suffix}{restore_banner})",
                file=sys.stderr,
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
                pass
            finally:
                server.server_close()
        else:
            handled = serve_jsonl(service, sys.stdin, sys.stdout, workers=args.workers)
            if args.verbose:
                print(f"handled {handled} request(s)", file=sys.stderr)
    finally:
        if watcher is not None:
            watcher.stop()
        if timer is not None:
            timer.stop()
    if args.verbose:
        print(
            "service: " + json.dumps(service.stats(), sort_keys=True), file=sys.stderr
        )
    return 0


def _top_lines(combined: dict, n: int) -> list[str]:
    """Render the `repro top` report from the four op snapshots."""
    health = combined["health"]
    lines = [
        f"status: {health['status']}  "
        f"uptime: {health.get('uptime_seconds', 0.0):.0f}s  "
        f"in-flight: {health['in_flight']}  "
        f"requests: {health['requests']}  "
        f"rejected: {health['rejected']}  errors: {health['errors']}"
    ]
    metrics = combined.get("metrics") or {}
    gauges = metrics.get("gauges", {})
    hit_rate = gauges.get("perf.cache.hit_rate")
    if hit_rate is not None:
        lines.append(
            f"cache: hit rate {hit_rate:.1%}  "
            f"size {gauges.get('perf.cache.size', 0)}/"
            f"{gauges.get('perf.cache.maxsize', 0)}"
        )
    histogram = metrics.get("histograms", {}).get("serve.request.latency")
    if histogram:
        lines.append(
            f"latency: p50 {histogram['p50'] * 1e3:.2f}ms  "
            f"p95 {histogram['p95'] * 1e3:.2f}ms  "
            f"p99 {histogram['p99'] * 1e3:.2f}ms  "
            f"({histogram['count']} requests)"
        )
    sources = combined.get("sources") or []
    if sources:
        lines.append("")
        lines.append(
            f"{'source':<12} {'calls':>7} {'err%':>6} {'retry%':>7} "
            f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8} {'rows':>7}  breaker"
        )
        for card in sources:
            latency = card["latency_ms"]
            lines.append(
                f"{card['source']:<12} {card['calls']:>7} "
                f"{card['error_rate'] * 100:>5.1f}% {card['retry_rate'] * 100:>6.1f}% "
                f"{latency['p50']:>8.2f} {latency['p95']:>8.2f} "
                f"{latency['p99']:>8.2f} {card['rows']:>7}  "
                f"{card['breaker_state'] or '-'}"
            )
    slowlog = combined.get("slowlog") or []
    if slowlog:
        lines.append("")
        lines.append(f"slowest fingerprints (top {n}):")
        for entry in slowlog:
            query = f"  {entry['query']}" if entry.get("query") else ""
            lines.append(
                f"  {entry['max_ms']:>9.2f}ms max  {entry['mean_ms']:>9.2f}ms mean  "
                f"x{entry['count']:<5} {entry['op']:<9} "
                f"{entry['fingerprint'][:12]}{query}"
            )
    return lines


def _cmd_top(args) -> int:
    import socket

    host, _, port_text = args.address.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(f"top: address must be host:port, got {args.address!r}")

    try:
        conn = socket.create_connection((host, int(port_text)), timeout=args.timeout)
    except OSError as exc:
        raise SystemExit(
            f"top: cannot reach {args.address} ({exc}); "
            "is `repro serve --tcp --metrics` running?"
        ) from None
    with conn:
        stream = conn.makefile("rw", encoding="utf-8")

        def ask(request: dict) -> dict:
            stream.write(json.dumps(request) + "\n")
            stream.flush()
            line = stream.readline()
            if not line:
                raise SystemExit(f"top: {args.address} closed the connection")
            return json.loads(line)

        combined: dict = {}
        health = ask({"op": "health"})
        if not health.get("ok"):
            raise SystemExit(f"top: health op failed: {health.get('error')}")
        combined["health"] = health["health"]
        for op, request in (
            ("metrics", {"op": "metrics"}),
            ("sources", {"op": "sources"}),
            ("slowlog", {"op": "slowlog", "n": args.n}),
        ):
            response = ask(request)
            if response.get("ok"):
                combined[op] = response[op]
            elif response.get("error", {}).get("type") == "metrics-disabled":
                combined[op] = None
            else:
                raise SystemExit(f"top: {op} op failed: {response.get('error')}")

    if args.json:
        print(json.dumps(combined, indent=2, sort_keys=True))
        return 0
    if not combined["health"]["metrics_enabled"]:
        print(
            "note: server runs without --metrics; only health is available",
            file=sys.stderr,
        )
    print("\n".join(_top_lines(combined, args.n)))
    return 0


def _cmd_specs(args) -> int:
    for name, spec in sorted(builtin_specifications().items()):
        print(f"{name}  (target: {spec.target}, {len(spec)} rules)")
        if args.verbose:
            for rule in spec:
                doc = f"  — {rule.doc}" if rule.doc else ""
                print(f"    {rule.name}{doc}")
    return 0


def _lintable_specifications() -> dict:
    """Built-ins plus the realty library — everything ``lint`` can name."""
    from repro.rules.library_realty import K_REALTY

    specs = builtin_specifications()
    specs[K_REALTY.name] = K_REALTY
    return specs


def _registry_version_line(entry) -> str:
    marker = "*" if entry.active else " "
    note = f"  — {entry.note}" if entry.note else ""
    return (
        f" {marker} v{entry.version}  {entry.digest[:12]}  "
        f"{entry.rules} rule(s){note}"
    )


def _cmd_registry_publish(args) -> int:
    from repro.registry import PublishRejected, SpecRegistry

    with open(args.file) as handle:
        data = json.load(handle)
    entries = data if isinstance(data, list) else [data]
    registry = SpecRegistry(args.dir)
    published = []
    for entry in entries:
        try:
            published.append(
                registry.publish(
                    entry,
                    note=args.note,
                    gate=not args.no_gate,
                    fail_on=args.fail_on,
                )
            )
        except PublishRejected as exc:
            print(f"error: {exc}", file=sys.stderr)
            for diagnostic in exc.diagnostics:
                print(f"  {diagnostic.code} [{diagnostic.severity}] "
                      f"{diagnostic.message}", file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps([v.to_dict() for v in published], indent=2, sort_keys=True))
        return 0
    for version in published:
        print(f"published {version.name} v{version.version} ({version.digest[:12]})")
    return 0


def _cmd_registry_rollback(args) -> int:
    from repro.registry import SpecRegistry

    version = SpecRegistry(args.dir).rollback(args.name, to_version=args.to)
    if args.json:
        print(json.dumps(version.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"active: {version.name} v{version.version} ({version.digest[:12]})")
    return 0


def _cmd_registry_history(args) -> int:
    from repro.registry import SpecRegistry

    registry = SpecRegistry(args.dir)
    names = [args.name] if args.name else registry.names()
    if args.json:
        payload = {
            name: [v.to_dict() for v in registry.history(name)] for name in names
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not names:
        print(f"registry {args.dir} is empty")
        return 0
    for name in names:
        print(f"{name}:")
        for entry in registry.history(name):
            print(_registry_version_line(entry))
    return 0


def _cmd_registry_show(args) -> int:
    from repro.registry import SpecRegistry

    payload = SpecRegistry(args.dir).load_raw(args.name, args.version)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        Severity,
        capability_from_dict,
        lint_specification,
        vocabulary_from_dict,
    )

    vocabulary = None
    if args.vocab:
        with open(args.vocab) as handle:
            vocabulary = vocabulary_from_dict(json.load(handle))
    capability = None
    if args.capability:
        with open(args.capability) as handle:
            capability = capability_from_dict(json.load(handle))

    if args.spec_file is not None:
        with open(args.spec_file) as handle:
            data = json.load(handle)
        from repro.rules.declarative import spec_from_dict

        entries = data if isinstance(data, list) else [data]
        loaded = {entry["name"]: spec_from_dict(entry) for entry in entries}
        if args.specs in ("all", "", "-"):
            selected = loaded
        else:
            selected = {}
            for name in args.specs.split(","):
                if name not in loaded:
                    known = ", ".join(sorted(loaded))
                    raise SpecificationError(
                        f"{args.spec_file} defines {known}, not {name!r}"
                    )
                selected[name] = loaded[name]
    else:
        available = _lintable_specifications()
        if args.specs == "all":
            selected = available
        else:
            selected = {}
            for name in args.specs.split(","):
                if name not in available:
                    known = ", ".join(sorted(available))
                    raise SpecificationError(
                        f"unknown specification {name!r}; built-ins: {known}"
                    )
                selected[name] = available[name]

    try:
        show_at = Severity.parse(args.severity)
        fail_at = Severity.parse(args.fail_on)
    except ValueError as exc:
        raise SpecificationError(str(exc)) from None
    codes = frozenset(args.code or ())

    fmt = args.format or ("json" if args.json else "text")
    failed = False
    payloads = []
    sarif_diagnostics = []
    for name, spec in selected.items():
        report = lint_specification(spec, vocabulary=vocabulary, capability=capability)
        # --code narrows the run's scope; --severity only trims the display.
        scoped = report.filter(codes=codes or None)
        if any(d.severity >= fail_at for d in scoped):
            failed = True
        shown = scoped.filter(severity=show_at)
        if fmt == "json":
            payloads.append(shown.to_dict())
        elif fmt == "sarif":
            sarif_diagnostics.extend(shown.diagnostics)
        else:
            print(shown.render(verbose=args.verbose))
    if fmt == "json":
        out = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(out, indent=2, sort_keys=True))
    elif fmt == "sarif":
        from repro.analysis import diagnostics_to_sarif

        files = (
            {name: args.spec_file for name in selected} if args.spec_file else {}
        )
        log = diagnostics_to_sarif(
            sarif_diagnostics, tool_name="vocablint", files=files
        )
        print(json.dumps(log, indent=2, sort_keys=True))
    return 1 if failed else 0


def _cmd_audit(args) -> int:
    if args.query is not None:
        # Legacy single-spec mode: which constraints of one query does the
        # specification's vocabulary cover?
        query = parse_query(args.query)
        report = audit_vocabulary(
            _spec(args.targets, args.spec_file), sorted(query.constraints(), key=str)
        )
        print(report)
        return 0 if not report.uncovered else 1
    return _audit_federations(args)


def _audit_federations(args) -> int:
    from repro.analysis import (
        Severity,
        audit_federation,
        builtin_federations,
        diagnostics_to_sarif,
        load_federation,
    )

    files: dict[str, str] = {}
    if args.federation_file:
        federation = load_federation(args.federation_file)
        federations = {federation.name: federation}
        files = {
            source.spec.name: args.federation_file
            for source in federation.sources
        }
    else:
        available = builtin_federations()
        if args.targets in ("all", None):
            federations = available
        else:
            federations = {}
            for name in args.targets.split(","):
                if name not in available:
                    known = ", ".join(sorted(available))
                    raise SpecificationError(
                        f"unknown federation {name!r}; built-ins: {known}"
                    )
                federations[name] = available[name]

    try:
        show_at = Severity.parse(args.severity)
        fail_at = Severity.parse(args.fail_on)
    except ValueError as exc:
        raise SpecificationError(str(exc)) from None
    codes = frozenset(args.code or ())

    failed = False
    payloads = []
    sarif_diagnostics = []
    for name, federation in federations.items():
        report = audit_federation(
            federation,
            lint_sources=not args.no_lint,
            consolidate=not args.no_consolidate,
        )
        scoped = report.filter(codes=codes or None)
        if any(d.severity >= fail_at for d in scoped.diagnostics):
            failed = True
        shown = scoped.filter(severity=show_at)
        if args.format == "json":
            payloads.append(shown.to_dict())
        elif args.format == "sarif":
            sarif_diagnostics.extend(shown.diagnostics)
        else:
            print(shown.render(verbose=args.verbose))
    if args.format == "json":
        out = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(out, indent=2, sort_keys=True))
    elif args.format == "sarif":
        log = diagnostics_to_sarif(
            sarif_diagnostics, tool_name="repro-audit", files=files
        )
        print(json.dumps(log, indent=2, sort_keys=True))
    return 1 if failed else 0


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--timeout",
        type=float,
        help="per-source deadline in seconds (includes backoff waits)",
    )
    p.add_argument(
        "--retries",
        type=int,
        help="retries per source call on transient failure (default 2)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        help="base backoff delay in seconds (doubles per retry; default 0.05)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="raise instead of returning a partial answer when a source fails",
    )
    p.add_argument(
        "--fault",
        action="append",
        metavar="NAME=SPEC",
        help="inject a deterministic fault into one source: fail:N, "
        "latency:SECONDS[:EVERY], or flaky:RATE[:SEED] (repeatable)",
    )


def _add_interpret_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--interpret",
        action="store_true",
        help="force the interpreted matcher walk instead of compiled rule "
        "closures, and bypass the translation cache (the repro.perf.compile "
        "escape hatch / equivalence oracle)",
    )


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree (per-stage wall-times) to stderr",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the aggregate counters to stderr",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vocabmap: constraint-query mapping across heterogeneous sources",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate a query for a target")
    p.add_argument("spec", help="specification name (see 'specs')")
    p.add_argument("query", help="query in the paper's textual notation")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.add_argument("--json", action="store_true", help="emit the mapping as JSON")
    _add_interpret_flag(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_translate)

    p = sub.add_parser("explain", help="narrate the TDQM run")
    p.add_argument("spec")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    _add_interpret_flag(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("filter", help="per-source mappings + residue filter")
    p.add_argument("specs", help="comma-separated specification names")
    p.add_argument("query")
    p.add_argument("--json", action="store_true", help="emit mappings + filter as JSON")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_filter)

    p = sub.add_parser(
        "batch", help="translate many queries for many specs in one pass"
    )
    p.add_argument("specs", help="comma-separated specification names")
    p.add_argument("queries", nargs="*", help="queries in the paper's textual notation")
    p.add_argument(
        "--queries-file",
        help="read additional queries, one per line, from a file ('-' = stdin; "
        "blank lines and '#' comments skipped)",
    )
    p.add_argument("-f", "--spec-file", help="load the spec(s) from a declarative JSON file")
    p.add_argument("--json", action="store_true", help="emit mappings + cache stats as JSON")
    p.add_argument(
        "-v", "--verbose", action="store_true", help="print cache statistics to stderr"
    )
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser(
        "stats", help="traced pipeline report: span tree + counter set"
    )
    p.add_argument("spec", help="specification name(s), comma-separated")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument(
        "--no-execute",
        action="store_true",
        help="skip executing the built-in simulated sources",
    )
    _add_resilience_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "sources", help="health-check the built-in sources (resilience layer)"
    )
    p.add_argument("--json", action="store_true", help="emit the health report as JSON")
    _add_resilience_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_sources)

    p = sub.add_parser(
        "serve", help="run the concurrent mediation service (JSON-lines/TCP)"
    )
    p.add_argument(
        "specs",
        help="comma-separated specification names naming a built-in scenario "
        "(e.g. K_Amazon, or K1,K2)",
    )
    p.add_argument(
        "--tcp", action="store_true", help="serve TCP instead of stdin/stdout"
    )
    p.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p.add_argument(
        "--port", type=int, default=7654, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        help="requests executing concurrently (admission semaphore width)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="requests allowed to wait beyond the executing ones; more are "
        "rejected immediately as overloaded",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="stdin mode: dispatch request lines on this many threads "
        "(responses correlate by id)",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        help="TCP mode: shard across this many worker processes, routing "
        "each query by consistent-hashed fingerprint (shared-nothing "
        "caches; responses stay bit-identical to single-process mode)",
    )
    p.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="persist hot cache entries here periodically and on shutdown, "
        "and restore them on start (per-shard files in cluster mode); "
        "snapshots from a changed rule set are discarded as stale",
    )
    p.add_argument(
        "--snapshot-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds between periodic snapshots (0 = only on shutdown; "
        "default %(default)s)",
    )
    p.add_argument(
        "--snapshot-limit",
        type=int,
        default=None,
        metavar="N",
        help="snapshot at most the N hottest cache entries (default: all)",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="continuous telemetry: process-lifetime counters, latency "
        "histograms, per-source scorecards, and a slow-query log, served "
        "via the metrics/sources/slowlog/health ops (and `repro top`)",
    )
    p.add_argument(
        "--watch-registry",
        metavar="DIR",
        default=None,
        help="poll a spec registry (see `repro registry`) and hot-reload "
        "published/rolled-back specifications into the running service "
        "without a restart",
    )
    p.add_argument(
        "--watch-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="registry poll interval for --watch-registry (default: %(default)s)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="print service statistics to stderr on exit",
    )
    _add_interpret_flag(p)
    _add_resilience_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "top", help="snapshot a running `serve --tcp` instance's telemetry"
    )
    p.add_argument(
        "address",
        nargs="?",
        default="127.0.0.1:7654",
        help="host:port of the running server (default: %(default)s)",
    )
    p.add_argument(
        "-n", type=int, default=10, help="slow-query log entries to show"
    )
    p.add_argument(
        "--timeout", type=float, default=5.0, help="connect/read timeout (seconds)"
    )
    p.add_argument(
        "--json", action="store_true", help="emit the raw snapshots as JSON"
    )
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser("specs", help="list built-in specifications")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_specs)

    p = sub.add_parser(
        "registry",
        help="versioned spec registry: publish, rollback, history, show",
        description="Manage an on-disk registry of versioned declarative "
        "specifications. Publishes are gated through the spec linter; a "
        "running `repro serve --watch-registry DIR` hot-reloads the "
        "active versions without a restart.",
    )
    rsub = p.add_subparsers(dest="registry_command", required=True)

    rp = rsub.add_parser("publish", help="lint-gate and publish spec file(s)")
    rp.add_argument("dir", help="registry root directory")
    rp.add_argument(
        "-f", "--file", required=True,
        help="declarative spec JSON (one object or a list of objects)",
    )
    rp.add_argument("--note", default="", help="free-form note stored with the version")
    rp.add_argument(
        "--fail-on",
        choices=["info", "warning", "error"],
        default="error",
        help="reject the publish when the linter reports a diagnostic at "
        "or above this severity (default: %(default)s)",
    )
    rp.add_argument(
        "--no-gate", action="store_true", help="skip the lint gate entirely"
    )
    rp.add_argument("--json", action="store_true", help="emit published versions as JSON")
    rp.set_defaults(fn=_cmd_registry_publish)

    rp = rsub.add_parser("rollback", help="point a spec back at an older version")
    rp.add_argument("dir", help="registry root directory")
    rp.add_argument("name", help="specification name")
    rp.add_argument(
        "--to", type=int, default=None, metavar="N",
        help="version to activate (default: the one before the active version)",
    )
    rp.add_argument("--json", action="store_true", help="emit the active version as JSON")
    rp.set_defaults(fn=_cmd_registry_rollback)

    rp = rsub.add_parser("history", help="list versions (active marked with *)")
    rp.add_argument("dir", help="registry root directory")
    rp.add_argument("name", nargs="?", default=None, help="limit to one specification")
    rp.add_argument("--json", action="store_true", help="emit the history as JSON")
    rp.set_defaults(fn=_cmd_registry_history)

    rp = rsub.add_parser("show", help="print a stored spec payload")
    rp.add_argument("dir", help="registry root directory")
    rp.add_argument("name", help="specification name")
    rp.add_argument(
        "--version", type=int, default=None, metavar="N",
        help="version to show (default: the active version)",
    )
    rp.set_defaults(fn=_cmd_registry_show)

    p = sub.add_parser(
        "audit",
        help="statically audit whole federations (or one spec against a query)",
        description="Two modes. Federation mode (no query): load every "
        "spec/vocabulary/capability of the named federations and run the "
        "cross-source analyzer — coverage matrix, VF diagnostics, and "
        "verified merge proposals. Legacy mode (spec + query): flag the "
        "query constraints no rule of that one spec can touch.",
    )
    p.add_argument(
        "targets",
        nargs="?",
        default="all",
        help="comma-separated federation names, or 'all' (federation mode); "
        "a specification name when a query is also given (legacy mode)",
    )
    p.add_argument(
        "query",
        nargs="?",
        help="legacy mode: audit this query's constraints against one spec",
    )
    p.add_argument(
        "-f", "--spec-file",
        help="legacy mode: load the spec from a declarative JSON file",
    )
    p.add_argument(
        "--federation-file",
        help="federation mode: load the federation from a JSON file instead "
        "of the built-ins (also enables SARIF physical locations)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="federation mode output format (default: text)",
    )
    p.add_argument(
        "--severity",
        default="info",
        help="minimum severity to report (info, warning, error)",
    )
    p.add_argument(
        "--fail-on",
        default="error",
        help="exit non-zero when a diagnostic reaches this severity",
    )
    p.add_argument(
        "--code",
        action="append",
        metavar="VFXXX",
        help="only report these diagnostic codes (repeatable)",
    )
    p.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the per-source vocablint pass (VM codes)",
    )
    p.add_argument(
        "--no-consolidate",
        action="store_true",
        help="skip the merge-proposal pass (VF007)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="include diagnostic details and the coverage matrix",
    )
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_audit)

    p = sub.add_parser(
        "lint", help="statically analyze mapping specifications (vocablint)"
    )
    p.add_argument(
        "specs",
        help="comma-separated specification names, or 'all' for every "
        "lintable specification",
    )
    p.add_argument(
        "-f", "--spec-file", help="load the spec(s) from a declarative JSON file"
    )
    p.add_argument(
        "--vocab",
        help="declared original-context vocabulary (JSON file); enables the "
        "reference and coverage checks",
    )
    p.add_argument(
        "--capability",
        help="target capability description (JSON file); enables the "
        "expressibility check",
    )
    p.add_argument(
        "--severity",
        default="info",
        help="minimum severity to report (info, warning, error)",
    )
    p.add_argument(
        "--fail-on",
        default="error",
        help="exit non-zero when a diagnostic reaches this severity",
    )
    p.add_argument(
        "--code",
        action="append",
        metavar="VMXXX",
        help="only report these diagnostic codes (repeatable)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit reports as JSON (same as --format json)"
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text; --json is an alias for json)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true", help="include diagnostic details"
    )
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    want_trace = getattr(args, "trace", False)
    want_stats = getattr(args, "stats", False)
    try:
        if not (want_trace or want_stats):
            return args.fn(args)
        with tracing(f"repro.{args.command}") as tracer:
            code = args.fn(args)
        if want_trace:
            print("spans:", file=sys.stderr)
            for line in render_span(tracer.root):
                print("  " + line, file=sys.stderr)
        if want_stats:
            print("counters:", file=sys.stderr)
            for line in counters_table(tracer):
                print("  " + line, file=sys.stderr)
        return code
    except VocabMapError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
