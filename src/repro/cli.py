"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``translate``
    Translate a query for a target specification::

        python -m repro translate K_Amazon '[ln = "Clancy"] and [fn = "Tom"]'

``explain``
    Narrate the whole TDQM run (cases, partitions, matchings)::

        python -m repro explain K_Amazon '([ln = "a"] or [ln = "b"]) and [fn = "c"]'

``filter``
    Show per-source mappings plus the residue filter F (Eq. 2/3)::

        python -m repro filter K1,K2 '[fac.dept = cs]'

``specs``
    List the built-in mapping specifications and their rules.

``audit``
    Report which of a query's constraints no rule can touch::

        python -m repro audit K_Amazon '[ln = "x"] and [shoe-size = 9]'
"""

from __future__ import annotations

import argparse
import sys

from repro.core.errors import VocabMapError
from repro.core.explain import explain_translation
from repro.core.filters import build_filter
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import tdqm_translate
from repro.rules import audit_vocabulary, builtin_specifications

__all__ = ["main", "build_arg_parser"]


def _spec(name: str, spec_file: str | None = None):
    if spec_file is not None:
        import json

        from repro.rules.declarative import spec_from_dict

        with open(spec_file) as handle:
            data = json.load(handle)
        if isinstance(data, list):
            loaded = {entry["name"]: spec_from_dict(entry) for entry in data}
        else:
            spec = spec_from_dict(data)
            loaded = {spec.name: spec}
        if name in loaded:
            return loaded[name]
        if len(loaded) == 1 and name in ("", "-"):
            return next(iter(loaded.values()))
        known = ", ".join(sorted(loaded))
        raise SystemExit(f"{spec_file} defines {known}, not {name!r}")
    specs = builtin_specifications()
    if name not in specs:
        known = ", ".join(sorted(specs))
        raise SystemExit(f"unknown specification {name!r}; built-ins: {known}")
    return specs[name]


def _cmd_translate(args) -> int:
    query = parse_query(args.query)
    result = tdqm_translate(query, _spec(args.spec, args.spec_file))
    print(to_text(result.mapping))
    if args.verbose:
        print(f"exact: {result.exact}", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    query = parse_query(args.query)
    print(explain_translation(query, _spec(args.spec, args.spec_file)))
    return 0


def _cmd_filter(args) -> int:
    query = parse_query(args.query)
    specs = {name: _spec(name) for name in args.specs.split(",")}
    plan = build_filter(query, specs)
    for name in sorted(plan.mappings):
        print(f"S({name}) = {to_text(plan.mappings[name])}")
    print(f"F = {to_text(plan.filter)}")
    return 0


def _cmd_specs(args) -> int:
    for name, spec in sorted(builtin_specifications().items()):
        print(f"{name}  (target: {spec.target}, {len(spec)} rules)")
        if args.verbose:
            for rule in spec:
                doc = f"  — {rule.doc}" if rule.doc else ""
                print(f"    {rule.name}{doc}")
    return 0


def _cmd_audit(args) -> int:
    query = parse_query(args.query)
    report = audit_vocabulary(
        _spec(args.spec, args.spec_file), sorted(query.constraints(), key=str)
    )
    print(report)
    return 0 if not report.uncovered else 1


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vocabmap: constraint-query mapping across heterogeneous sources",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate a query for a target")
    p.add_argument("spec", help="specification name (see 'specs')")
    p.add_argument("query", help="query in the paper's textual notation")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.set_defaults(fn=_cmd_translate)

    p = sub.add_parser("explain", help="narrate the TDQM run")
    p.add_argument("spec")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("filter", help="per-source mappings + residue filter")
    p.add_argument("specs", help="comma-separated specification names")
    p.add_argument("query")
    p.set_defaults(fn=_cmd_filter)

    p = sub.add_parser("specs", help="list built-in specifications")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=_cmd_specs)

    p = sub.add_parser("audit", help="flag constraints no rule can touch")
    p.add_argument("spec")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.set_defaults(fn=_cmd_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except VocabMapError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
