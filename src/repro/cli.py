"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``translate``
    Translate a query for a target specification::

        python -m repro translate K_Amazon '[ln = "Clancy"] and [fn = "Tom"]'

``explain``
    Narrate the whole TDQM run (cases, partitions, matchings)::

        python -m repro explain K_Amazon '([ln = "a"] or [ln = "b"]) and [fn = "c"]'

``filter``
    Show per-source mappings plus the residue filter F (Eq. 2/3)::

        python -m repro filter K1,K2 '[fac.dept = cs]'

``stats``
    Run the fully-traced pipeline (translate, filter, execute when the
    specs name a built-in scenario) and emit the span tree + counter set::

        python -m repro stats K_Amazon '[ln = "Clancy"] and [fn = "Tom"]' --json

``specs``
    List the built-in mapping specifications and their rules.

``audit``
    Report which of a query's constraints no rule can touch::

        python -m repro audit K_Amazon '[ln = "x"] and [shoe-size = 9]'

Every command additionally accepts ``--trace`` (print the span tree to
stderr) and ``--stats`` (print the aggregate counters to stderr); see
``docs/observability.md`` for the counter glossary.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.errors import VocabMapError
from repro.core.explain import explain_translation
from repro.core.filters import build_filter
from repro.core.json_io import query_to_json
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.tdqm import tdqm_translate
from repro.obs import counters_table, current_tracer, render_span, tracing
from repro.rules import audit_vocabulary, builtin_specifications

__all__ = ["main", "build_arg_parser"]


def _spec(name: str, spec_file: str | None = None):
    if spec_file is not None:
        from repro.rules.declarative import spec_from_dict

        with open(spec_file) as handle:
            data = json.load(handle)
        if isinstance(data, list):
            loaded = {entry["name"]: spec_from_dict(entry) for entry in data}
        else:
            spec = spec_from_dict(data)
            loaded = {spec.name: spec}
        if name in loaded:
            return loaded[name]
        if len(loaded) == 1 and name in ("", "-"):
            return next(iter(loaded.values()))
        known = ", ".join(sorted(loaded))
        raise SystemExit(f"{spec_file} defines {known}, not {name!r}")
    specs = builtin_specifications()
    if name not in specs:
        known = ", ".join(sorted(specs))
        raise SystemExit(f"unknown specification {name!r}; built-ins: {known}")
    return specs[name]


def _json_counters(payload: dict) -> dict:
    """Attach the active tracer's counters to a ``--json`` payload."""
    tracer = current_tracer()
    if tracer is not None:
        payload["counters"] = dict(sorted(tracer.counters.items()))
    return payload


def _cmd_translate(args) -> int:
    query = parse_query(args.query)
    result = tdqm_translate(query, _spec(args.spec, args.spec_file))
    if args.json:
        payload = {
            "spec": args.spec,
            "query": to_text(query),
            "mapping": query_to_json(result.mapping),
            "mapping_text": to_text(result.mapping),
            "exact": result.exact,
        }
        print(json.dumps(_json_counters(payload), indent=2, sort_keys=True))
        return 0
    print(to_text(result.mapping))
    if args.verbose:
        print(f"exact: {result.exact}", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    query = parse_query(args.query)
    print(explain_translation(query, _spec(args.spec, args.spec_file)))
    return 0


def _cmd_filter(args) -> int:
    query = parse_query(args.query)
    specs = {name: _spec(name) for name in args.specs.split(",")}
    plan = build_filter(query, specs)
    if args.json:
        payload = {
            "query": to_text(query),
            "mappings": {
                name: {
                    "text": to_text(mapping),
                    "json": query_to_json(mapping),
                }
                for name, mapping in sorted(plan.mappings.items())
            },
            "filter": {
                "text": to_text(plan.filter),
                "json": query_to_json(plan.filter),
            },
        }
        print(json.dumps(_json_counters(payload), indent=2, sort_keys=True))
        return 0
    for name in sorted(plan.mappings):
        print(f"S({name}) = {to_text(plan.mappings[name])}")
    print(f"F = {to_text(plan.filter)}")
    return 0


def _cmd_stats(args) -> int:
    from repro.obs.stats import (
        builtin_mediator,
        collect_stats,
        render_stats,
        stats_to_dict,
    )

    specs = {name: _spec(name, args.spec_file) for name in args.spec.split(",")}
    mediator = None if args.no_execute else builtin_mediator(set(specs))
    report = collect_stats(args.query, specs, mediator)
    if args.json:
        print(json.dumps(stats_to_dict(report), indent=2, sort_keys=True))
    else:
        print(render_stats(report))
    return 0


def _cmd_specs(args) -> int:
    for name, spec in sorted(builtin_specifications().items()):
        print(f"{name}  (target: {spec.target}, {len(spec)} rules)")
        if args.verbose:
            for rule in spec:
                doc = f"  — {rule.doc}" if rule.doc else ""
                print(f"    {rule.name}{doc}")
    return 0


def _cmd_audit(args) -> int:
    query = parse_query(args.query)
    report = audit_vocabulary(
        _spec(args.spec, args.spec_file), sorted(query.constraints(), key=str)
    )
    print(report)
    return 0 if not report.uncovered else 1


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree (per-stage wall-times) to stderr",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the aggregate counters to stderr",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vocabmap: constraint-query mapping across heterogeneous sources",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate a query for a target")
    p.add_argument("spec", help="specification name (see 'specs')")
    p.add_argument("query", help="query in the paper's textual notation")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.add_argument("--json", action="store_true", help="emit the mapping as JSON")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_translate)

    p = sub.add_parser("explain", help="narrate the TDQM run")
    p.add_argument("spec")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("filter", help="per-source mappings + residue filter")
    p.add_argument("specs", help="comma-separated specification names")
    p.add_argument("query")
    p.add_argument("--json", action="store_true", help="emit mappings + filter as JSON")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_filter)

    p = sub.add_parser(
        "stats", help="traced pipeline report: span tree + counter set"
    )
    p.add_argument("spec", help="specification name(s), comma-separated")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument(
        "--no-execute",
        action="store_true",
        help="skip executing the built-in simulated sources",
    )
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("specs", help="list built-in specifications")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_specs)

    p = sub.add_parser("audit", help="flag constraints no rule can touch")
    p.add_argument("spec")
    p.add_argument("query")
    p.add_argument("-f", "--spec-file", help="load the spec from a declarative JSON file")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    want_trace = getattr(args, "trace", False)
    want_stats = getattr(args, "stats", False)
    try:
        if not (want_trace or want_stats):
            return args.fn(args)
        with tracing(f"repro.{args.command}") as tracer:
            code = args.fn(args)
        if want_trace:
            print("spans:", file=sys.stderr)
            for line in render_span(tracer.root):
                print("  " + line, file=sys.stderr)
        if want_stats:
            print("counters:", file=sys.stderr)
            for line in counters_table(tracer):
                print("  " + line, file=sys.stderr)
        return code
    except VocabMapError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
