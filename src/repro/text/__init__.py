"""IR text-predicate substrate.

The paper's queries constrain text attributes with patterns such as
``java (near) jdk`` (Figure 2) and ``data (near) mining`` (Example 3).
Targets that lack the proximity operator force a *semantic relaxation* of
``near`` into ``∧`` (rule R4 / Example 3, following reference [20]).

This package provides the pattern language (:mod:`repro.text.patterns`), its
evaluation over documents (:mod:`repro.text.match`), and the relaxation
procedure ``RewriteTextPat`` (:mod:`repro.text.rewrite`).
"""

from repro.text.patterns import (
    MATCH_ALL,
    AndPat,
    MatchAll,
    NearPat,
    OrPat,
    PhrasePat,
    TextPattern,
    Word,
    parse_pattern,
)
from repro.text.match import matches, tokenize
from repro.text.rewrite import (
    TextCapability,
    pattern_operators,
    rewrite_text_pattern,
)

__all__ = [
    "TextPattern",
    "Word",
    "NearPat",
    "AndPat",
    "OrPat",
    "PhrasePat",
    "MatchAll",
    "MATCH_ALL",
    "parse_pattern",
    "matches",
    "tokenize",
    "rewrite_text_pattern",
    "pattern_operators",
    "TextCapability",
]
