"""Evaluation of text patterns over documents.

This is the substrate a *source* uses to answer ``contains`` constraints.
Semantics:

* :class:`~repro.text.patterns.Word` — the token occurs anywhere (case
  insensitive);
* :class:`~repro.text.patterns.PhrasePat` — the tokens occur consecutively;
* :class:`~repro.text.patterns.AndPat` / :class:`~repro.text.patterns.OrPat`
  — Boolean combination of sub-matches;
* :class:`~repro.text.patterns.NearPat` — every part matches, and some
  choice of match positions fits inside the proximity window.

These semantics make ``a (and) b`` a *relaxation* of ``a (near) b``: every
text matching the proximity version also matches the conjunction, which is
exactly why ``RewriteTextPat`` produces a subsuming (never lossy) rewrite.
"""

from __future__ import annotations

import re

from repro.text.patterns import (
    AndPat,
    MatchAll,
    NearPat,
    OrPat,
    PhrasePat,
    TextPattern,
    Word,
)

__all__ = ["tokenize", "matches", "match_positions"]

_WORD_RE = re.compile(r"[\w'-]+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of a document, in order."""
    return [token.lower() for token in _WORD_RE.findall(text)]


def matches(pattern: TextPattern, text: str) -> bool:
    """Return True when ``text`` satisfies ``pattern``."""
    return _matches_tokens(pattern, tokenize(text))


def match_positions(pattern: TextPattern, tokens: list[str]) -> list[int]:
    """Token positions at which ``pattern`` is anchored (for proximity).

    A :class:`Word`/:class:`PhrasePat` anchors at each occurrence start; a
    compound anchors at the positions of its parts.
    """
    if isinstance(pattern, MatchAll):
        return list(range(len(tokens))) or [0]
    if isinstance(pattern, Word):
        return [i for i, token in enumerate(tokens) if token == pattern.text]
    if isinstance(pattern, PhrasePat):
        span = len(pattern.tokens)
        return [
            i
            for i in range(len(tokens) - span + 1)
            if tuple(tokens[i : i + span]) == pattern.tokens
        ]
    if isinstance(pattern, (AndPat, OrPat, NearPat)):
        positions: list[int] = []
        for part in pattern.parts:
            positions.extend(match_positions(part, tokens))
        return sorted(set(positions))
    raise TypeError(f"unknown pattern type: {pattern!r}")


def _matches_tokens(pattern: TextPattern, tokens: list[str]) -> bool:
    if isinstance(pattern, MatchAll):
        return True
    if isinstance(pattern, (Word, PhrasePat)):
        return bool(match_positions(pattern, tokens))
    if isinstance(pattern, AndPat):
        return all(_matches_tokens(part, tokens) for part in pattern.parts)
    if isinstance(pattern, OrPat):
        return any(_matches_tokens(part, tokens) for part in pattern.parts)
    if isinstance(pattern, NearPat):
        return _near_matches(pattern, tokens)
    raise TypeError(f"unknown pattern type: {pattern!r}")


def _near_matches(pattern: NearPat, tokens: list[str]) -> bool:
    """True when each part matches with all anchors within the window."""
    anchor_lists: list[list[int]] = []
    for part in pattern.parts:
        if not _matches_tokens(part, tokens):
            return False
        anchors = match_positions(part, tokens)
        if not anchors:
            return False
        anchor_lists.append(anchors)
    return _within_window(anchor_lists, pattern.window)


def _within_window(anchor_lists: list[list[int]], window: int) -> bool:
    """Can we pick one anchor per list so max - min <= window?

    Classic smallest-range sweep: advance the list holding the minimum.
    """
    picks = [0] * len(anchor_lists)
    while True:
        values = [anchor_lists[i][picks[i]] for i in range(len(anchor_lists))]
        if max(values) - min(values) <= window:
            return True
        lowest = values.index(min(values))
        picks[lowest] += 1
        if picks[lowest] >= len(anchor_lists[lowest]):
            return False
