"""Text-pattern abstract syntax and parser.

The paper writes text predicates in an infix notation::

    java (near) jdk
    data (and) mining        -- also written data (∧) mining
    www (or) web
    "query mapping"          -- exact phrase

Grammar (lowest to highest precedence)::

    pattern := near_expr ( "(or)" near_expr )*
    near_expr := and_expr ( "(near)" and_expr )*
    and_expr := primary ( "(and)" primary )*
    primary := WORD | PHRASE | "(" pattern ")"

``near`` takes an optional window, written ``(near/5)``; the default window
is :data:`DEFAULT_NEAR_WINDOW` token positions.

All pattern nodes are immutable and hashable so they can appear as
constraint values inside matchings.
"""

from __future__ import annotations

import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.errors import ParseError

__all__ = [
    "TextPattern",
    "Word",
    "PhrasePat",
    "NearPat",
    "AndPat",
    "OrPat",
    "MatchAll",
    "MATCH_ALL",
    "parse_pattern",
    "DEFAULT_NEAR_WINDOW",
]

#: Tokens at most this many positions apart satisfy ``near`` by default.
DEFAULT_NEAR_WINDOW = 5


class TextPattern:
    """Base class of all text-pattern nodes."""

    __slots__ = ()

    def words(self) -> frozenset[str]:
        """All distinct word literals mentioned by the pattern."""
        return frozenset(self.iter_words())

    def iter_words(self) -> Iterator[str]:
        raise NotImplementedError

    def node_count(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Word(TextPattern):
    """A single keyword; matching is case-insensitive on word boundaries."""

    text: str

    def __post_init__(self) -> None:
        if not self.text or not re.fullmatch(r"[\w'-]+", self.text):
            raise ValueError(f"Word must be a single token, got {self.text!r}")
        object.__setattr__(self, "text", self.text.lower())

    def iter_words(self) -> Iterator[str]:
        yield self.text

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class PhrasePat(TextPattern):
    """An exact phrase — consecutive tokens in order."""

    tokens: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("PhrasePat requires at least one token")
        object.__setattr__(self, "tokens", tuple(t.lower() for t in self.tokens))

    def iter_words(self) -> Iterator[str]:
        yield from self.tokens

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return '"' + " ".join(self.tokens) + '"'


@dataclass(frozen=True)
class MatchAll(TextPattern):
    """The trivially-true pattern — matches every document.

    Produced by ``RewriteTextPat`` when a target cannot constrain a word
    at all (it is in the target's *stopword* list, reference [20]): the
    minimal subsuming rewrite of an unsearchable word is "no constraint".
    Compound simplification treats it like Boolean ``True``.
    """

    def iter_words(self) -> Iterator[str]:
        return iter(())

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return "*any*"


#: Singleton instance of :class:`MatchAll`.
MATCH_ALL = MatchAll()


class _Compound(TextPattern):
    """Shared base for the n-ary connectives."""

    __slots__ = ("parts",)
    _name = "?"

    def __init__(self, parts: tuple[TextPattern, ...]):
        if len(parts) < 2:
            raise ValueError(f"{type(self).__name__} requires >= 2 parts")
        object.__setattr__(self, "parts", tuple(parts))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return self.parts

    def iter_words(self) -> Iterator[str]:
        for part in self.parts:
            yield from part.iter_words()

    def node_count(self) -> int:
        return 1 + sum(part.node_count() for part in self.parts)

    def _render(self, connective: str) -> str:
        out = []
        for part in self.parts:
            text = str(part)
            if isinstance(part, _Compound):
                text = f"({text})"
            out.append(text)
        return f" ({connective}) ".join(out)


class AndPat(_Compound):
    """All sub-patterns must occur somewhere in the text (``∧``)."""

    __slots__ = ()

    def __str__(self) -> str:
        return self._render("and")


class OrPat(_Compound):
    """At least one sub-pattern must occur (``∨``)."""

    __slots__ = ()

    def __str__(self) -> str:
        return self._render("or")


class NearPat(_Compound):
    """All sub-patterns occur within ``window`` token positions of each other."""

    __slots__ = ("window",)

    def __init__(self, parts: tuple[TextPattern, ...], window: int = DEFAULT_NEAR_WINDOW):
        if window < 1:
            raise ValueError(f"near window must be >= 1, got {window}")
        super().__init__(parts)
        object.__setattr__(self, "window", window)

    def _key(self) -> tuple:
        return (self.parts, self.window)

    def __str__(self) -> str:
        tag = "near" if self.window == DEFAULT_NEAR_WINDOW else f"near/{self.window}"
        return self._render(tag)


_TOKEN_RE = re.compile(
    r"""
    \s*(
        \(\s*(?:near(?:/\d+)?|and|or|∧|∨)\s*\)   # connective, e.g. (near) (∧)
      | "[^"]*"                                   # phrase
      | \(                                        # grouping
      | \)
      | [\w'-]+                                   # word
    )
    """,
    re.VERBOSE,
)


def _lex(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError("invalid text pattern", text, pos)
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], text: str):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of text pattern", self.text)
        self.pos += 1
        return token

    def connective(self) -> tuple[str, int] | None:
        """If the next token is a connective, return (kind, window)."""
        token = self.peek()
        if token is None or not token.startswith("("):
            return None
        body = token[1:-1].strip()
        if body in {"and", "∧"}:
            return ("and", 0)
        if body in {"or", "∨"}:
            return ("or", 0)
        if body == "near":
            return ("near", DEFAULT_NEAR_WINDOW)
        if body.startswith("near/"):
            return ("near", int(body.split("/", 1)[1]))
        return None

    def parse(self) -> TextPattern:
        pattern = self.or_expr()
        if self.peek() is not None:
            raise ParseError("trailing tokens in text pattern", self.text)
        return pattern

    def or_expr(self) -> TextPattern:
        parts = [self.near_expr()]
        while (conn := self.connective()) and conn[0] == "or":
            self.take()
            parts.append(self.near_expr())
        return parts[0] if len(parts) == 1 else OrPat(tuple(parts))

    def near_expr(self) -> TextPattern:
        parts = [self.and_expr()]
        window = DEFAULT_NEAR_WINDOW
        while (conn := self.connective()) and conn[0] == "near":
            window = conn[1]
            self.take()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else NearPat(tuple(parts), window)

    def and_expr(self) -> TextPattern:
        parts = [self.primary()]
        while (conn := self.connective()) and conn[0] == "and":
            self.take()
            parts.append(self.primary())
        return parts[0] if len(parts) == 1 else AndPat(tuple(parts))

    def primary(self) -> TextPattern:
        token = self.take()
        if token == "(":
            inner = self.or_expr()
            if self.take() != ")":
                raise ParseError("expected ')' in text pattern", self.text)
            return inner
        if token.startswith('"'):
            words = token[1:-1].split()
            if not words:
                raise ParseError("empty phrase in text pattern", self.text)
            if len(words) == 1:
                return Word(words[0])
            return PhrasePat(tuple(words))
        if token == ")" or token.startswith("("):
            raise ParseError(f"unexpected token {token!r} in text pattern", self.text)
        return Word(token)


def parse_pattern(text: str) -> TextPattern:
    """Parse the paper's infix pattern notation into a :class:`TextPattern`.

    >>> parse_pattern("java (near) jdk")
    NearPat(...)
    >>> parse_pattern("data (and) mining")
    AndPat(...)
    """
    tokens = _lex(text)
    if not tokens:
        raise ParseError("empty text pattern", text)
    return _Parser(tokens, text).parse()
