"""``RewriteTextPat``: relax a text pattern into a target's pattern dialect.

Rule R4 of Figure 3 calls a human-supplied function ``RewriteTextPat`` that
rewrites ``java (near) jdk`` to ``java (∧) jdk`` because Amazon does not
support the proximity operator.  Reference [20] of the paper describes the
general procedure: replace each unsupported predicate with its *minimal
subsuming* supported predicate.  The relaxation lattice implemented here::

    phrase  ⊑  near  ⊑  and  ⊑  or

(a text matching the left predicate always matches the right one), so
rewriting moves rightwards only as far as the target capability requires.
Three further target quirks of real IR systems (all from reference [20]'s
problem setting) are handled, each by its minimal subsuming move:

* **bounded proximity** — a ``near/w`` beyond the target's
  ``max_near_window`` widens to the supported window... which would be
  *narrower*, so the sound direction is to relax the whole node to ``and``;
* **stopwords** — a word the target cannot search at all becomes
  :data:`~repro.text.patterns.MATCH_ALL` ("no constraint"); compounds then
  simplify like Boolean expressions with ``True`` (an ``or`` containing a
  stopword collapses entirely — dropping only the stopword disjunct would
  *narrow* the query);
* a rewrite to the same node is *exact*; any other move is a proper
  relaxation, which the caller records so the mediator keeps the original
  constraint in the filter query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.patterns import (
    MATCH_ALL,
    AndPat,
    MatchAll,
    NearPat,
    OrPat,
    PhrasePat,
    TextPattern,
    Word,
)

__all__ = ["TextCapability", "rewrite_text_pattern", "pattern_operators", "RewriteResult"]

#: Relaxation order: each operator's minimal subsuming successor.
_RELAX_NEXT = {"phrase": "near", "near": "and", "and": "or"}


@dataclass(frozen=True)
class TextCapability:
    """Which pattern connectives a target's text search supports.

    ``max_near_window`` bounds the proximity distance the target can
    express (``None`` = unbounded); ``stopwords`` are words the target's
    index cannot search.  ``words_only``-style crude interfaces are
    modelled by disabling every compound connective.
    """

    supports_phrase: bool = True
    supports_near: bool = True
    supports_and: bool = True
    supports_or: bool = True
    max_near_window: int | None = None
    stopwords: frozenset[str] = frozenset()

    def supports(self, kind: str) -> bool:
        return {
            "phrase": self.supports_phrase,
            "near": self.supports_near,
            "and": self.supports_and,
            "or": self.supports_or,
            "word": True,
        }[kind]

    def searchable(self, word: str) -> bool:
        return word.lower() not in self.stopwords


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of a pattern rewrite.

    ``exact`` is False when any sub-pattern was relaxed, i.e. the rewritten
    pattern properly subsumes the original.
    """

    pattern: TextPattern
    exact: bool


def pattern_operators(pattern: TextPattern) -> frozenset[str]:
    """The set of connective kinds a pattern uses (for capability checks)."""
    found: set[str] = set()
    _collect_operators(pattern, found)
    return frozenset(found)


def _collect_operators(pattern: TextPattern, found: set[str]) -> None:
    if isinstance(pattern, MatchAll):
        return
    if isinstance(pattern, Word):
        found.add("word")
    elif isinstance(pattern, PhrasePat):
        found.add("phrase")
    elif isinstance(pattern, NearPat):
        found.add("near")
        for part in pattern.parts:
            _collect_operators(part, found)
    elif isinstance(pattern, AndPat):
        found.add("and")
        for part in pattern.parts:
            _collect_operators(part, found)
    elif isinstance(pattern, OrPat):
        found.add("or")
        for part in pattern.parts:
            _collect_operators(part, found)
    else:
        raise TypeError(f"unknown pattern type: {pattern!r}")


def rewrite_text_pattern(
    pattern: TextPattern, capability: TextCapability
) -> RewriteResult:
    """Rewrite ``pattern`` into the closest form ``capability`` supports.

    Each unsupported connective is promoted along the relaxation lattice
    ``phrase -> near -> and -> or`` until a supported one is found;
    stopwords become :data:`MATCH_ALL` and compounds simplify accordingly.
    Raises ``ValueError`` if even ``or`` is unsupported for a node that
    needs it (no subsuming rewrite exists short of dropping the
    constraint, which is the *rule's* decision, not this function's —
    a stopword-only pattern *does* rewrite, to :data:`MATCH_ALL`).
    """
    return _rewrite(pattern, capability)


def _rewrite(pattern: TextPattern, capability: TextCapability) -> RewriteResult:
    if isinstance(pattern, MatchAll):
        return RewriteResult(pattern, True)

    if isinstance(pattern, Word):
        if not capability.searchable(pattern.text):
            return RewriteResult(MATCH_ALL, False)
        return RewriteResult(pattern, True)

    if isinstance(pattern, PhrasePat):
        words = [
            Word(token)
            for token in dict.fromkeys(pattern.tokens)
            if capability.searchable(token)
        ]
        if capability.supports("phrase") and len(words) == len(
            dict.fromkeys(pattern.tokens)
        ):
            return RewriteResult(pattern, True)
        if not words:
            return RewriteResult(MATCH_ALL, False)
        if len(words) == 1:
            return RewriteResult(words[0], False)
        window = min(
            len(pattern.tokens),
            capability.max_near_window or len(pattern.tokens),
        )
        relaxed = _relax_node("near", tuple(words), capability, window=window)
        return RewriteResult(relaxed, False)

    if isinstance(pattern, (NearPat, AndPat, OrPat)):
        sub_results = [_rewrite(part, capability) for part in pattern.parts]
        exact_parts = all(result.exact for result in sub_results)
        kind = {NearPat: "near", AndPat: "and", OrPat: "or"}[type(pattern)]

        # Boolean-style simplification around MATCH_ALL parts.
        parts = [result.pattern for result in sub_results]
        if kind == "or" and any(isinstance(p, MatchAll) for p in parts):
            # Keeping only the searchable disjuncts would NARROW the
            # query; the minimal subsuming rewrite is "no constraint".
            return RewriteResult(MATCH_ALL, False)
        if kind in ("and", "near"):
            parts = [p for p in parts if not isinstance(p, MatchAll)]
            if not parts:
                return RewriteResult(MATCH_ALL, False)
            if len(parts) == 1:
                # A MatchAll sibling was dropped: proper relaxation.
                return RewriteResult(parts[0], False)

        window = pattern.window if isinstance(pattern, NearPat) else 0
        widened = False
        if (
            kind == "near"
            and capability.max_near_window is not None
            and window > capability.max_near_window
        ):
            # A tighter window would be narrower, not subsuming; the
            # minimal subsuming move is dropping proximity altogether.
            kind = "and"
            widened = True

        rebuilt = _relax_node(kind, tuple(parts), capability, window=window)
        same_shape = (
            _node_kind(rebuilt) == _original_kind(pattern)
            and len(parts) == len(pattern.parts)
            and not widened
        )
        return RewriteResult(rebuilt, exact_parts and same_shape)

    raise TypeError(f"unknown pattern type: {pattern!r}")


def _original_kind(pattern: TextPattern) -> str:
    return {NearPat: "near", AndPat: "and", OrPat: "or"}[type(pattern)]


def _node_kind(pattern: TextPattern) -> str:
    """Connective kind of a single node (not recursive)."""
    if isinstance(pattern, MatchAll):
        return "all"
    if isinstance(pattern, Word):
        return "word"
    if isinstance(pattern, PhrasePat):
        return "phrase"
    if isinstance(pattern, NearPat):
        return "near"
    if isinstance(pattern, AndPat):
        return "and"
    if isinstance(pattern, OrPat):
        return "or"
    raise TypeError(f"unknown pattern type: {pattern!r}")


def _relax_node(
    kind: str, parts: tuple[TextPattern, ...], capability: TextCapability, window: int
) -> TextPattern:
    """Build a node of ``kind`` over ``parts``, relaxing until supported."""
    current = kind
    while not capability.supports(current):
        nxt = _RELAX_NEXT.get(current)
        if nxt is None:
            raise ValueError(
                f"no subsuming rewrite: target supports none of the "
                f"connectives reachable from {kind!r}"
            )
        current = nxt
    if len(parts) == 1:
        return parts[0]
    if current == "near":
        return NearPat(parts, window=window or len(parts))
    if current == "and":
        return AndPat(parts)
    if current == "or":
        return OrPat(parts)
    raise AssertionError(f"unexpected relaxation target {current!r}")
