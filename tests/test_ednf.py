"""Tests for Procedure EDNF (repro.core.ednf) — Figure 10, Examples 10/11."""

from repro.core.ast import C, conj, disj
from repro.core.ednf import Term, combine_conjunct_ednf, ednf, format_terms, simplify_terms
from repro.core.errors import TranslationError
from repro.rules import K_AMAZON
from repro.workloads.generator import synthetic_spec
from repro.workloads.paper_queries import qbook

import pytest

F_L = C("ln", "=", "Smith")
F_F = C("fn", "=", "John")
F_Y = C("pyear", "=", 1997)
F_M1 = C("pmonth", "=", 5)
F_M2 = C("pmonth", "=", 6)


def amazon_info():
    matcher = K_AMAZON.matcher()
    return ednf(qbook(), matcher)


class TestExample11:
    """The EDNF annotations of Figure 7 on Q̂_book."""

    def test_c1_collapses_to_epsilon(self):
        info = amazon_info()
        c1 = info.children[0]  # (f_l f_f ∨ f_k1 ∨ f_k2)
        assert c1.essential == [Term()]

    def test_inner_pair_not_deleted_early(self):
        # De(f_l f_f) must stay {f_l, f_f}: deleting it at the AND node
        # would create false-positive cross-matchings (Section 7.1.3).
        info = amazon_info()
        inner_and = info.children[0].children[0]
        assert inner_and.essential == [frozenset({F_L, F_F})]

    def test_keyword_leaves_are_useless(self):
        info = amazon_info()
        kwd_leaf = info.children[0].children[1]
        assert kwd_leaf.essential == [Term()]

    def test_year_leaf_is_essential(self):
        info = amazon_info()
        year_leaf = info.children[1]
        assert year_leaf.essential == [frozenset({F_Y})]

    def test_month_disjunction_is_essential(self):
        info = amazon_info()
        months = info.children[2]
        assert months.essential == [frozenset({F_M1}), frozenset({F_M2})]

    def test_root_dnf_has_two_simplified_terms(self):
        # D(Q̂_book) from the EDNFs: (ε)(f_y)(f_m1) ∨ (ε)(f_y)(f_m2).
        info = amazon_info()
        assert info.dnf == [
            frozenset({F_Y, F_M1}),
            frozenset({F_Y, F_M2}),
        ]


class TestNullificationRules:
    def test_no_dependencies_collapse_to_epsilon(self):
        # With only singleton rules every constraint is useless: all ε.
        spec = synthetic_spec([], singletons=["a", "b", "c"])
        q = conj([disj([C("a", "=", 1), C("b", "=", 1)]), C("c", "=", 1)])
        info = ednf(q, spec.matcher())
        assert info.essential == [Term()]

    def test_unmatched_constraints_are_useless(self):
        spec = synthetic_spec([], singletons=["a"])
        q = C("zzz", "=", 1)
        info = ednf(q, spec.matcher())
        assert info.essential == [Term()]

    def test_pair_spanning_terms_stays(self):
        spec = synthetic_spec([("a", "b")], singletons=["a", "b"])
        a, b = C("a", "=", 1), C("b", "=", 1)
        q = conj([a, b])
        info = ednf(q, spec.matcher())
        # The single term wholly contains {a, b} and has no sibling: kept.
        assert info.essential == [frozenset({a, b})]

    def test_epsilon_sibling_enables_deletion(self):
        spec = synthetic_spec([("a", "b")], singletons=["a", "b", "c"])
        a, b, c = C("a", "=", 1), C("b", "=", 1), C("c", "=", 1)
        q = disj([conj([a, b]), c])
        info = ednf(q, spec.matcher())
        # c is useless -> ε; then {a, b} has a disjoint sibling -> ε too.
        assert info.essential == [Term()]


class TestHelpers:
    def test_format_terms(self):
        assert format_terms([]) == "false"
        assert format_terms([Term()]) == "ε"
        a = C("a", "=", 1)
        assert "[a = 1]" in format_terms([frozenset({a})])

    def test_combine_dedupes(self):
        a = frozenset({C("a", "=", 1)})
        combined = combine_conjunct_ednf([[a], [a]])
        assert combined == [a]

    def test_combine_explosion_guard(self):
        wide = [
            [frozenset({C(f"a{i}_{j}", "=", 1)}) for j in range(30)]
            for i in range(6)
        ]
        with pytest.raises(TranslationError):
            combine_conjunct_ednf(wide)

    def test_simplify_no_potential_matchings(self):
        a = C("a", "=", 1)
        assert simplify_terms([frozenset({a})], []) == [Term()]

    def test_annotation_rendering(self):
        info = amazon_info()
        text = info.annotation()
        assert "/" in text
