"""Tests for the docs gate (tools/docs_check.py) and the docs themselves."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "docs_check", REPO / "tools" / "docs_check.py"
)
docs_check = importlib.util.module_from_spec(spec)
spec.loader.exec_module(docs_check)


class TestSlugify:
    @pytest.mark.parametrize(
        "heading,slug",
        [
            ("Documentation map", "documentation-map"),
            ("The CI regression gate", "the-ci-regression-gate"),
            ("Partial answers: never wrong, possibly fewer",
             "partial-answers-never-wrong-possibly-fewer"),
            ("Reading `BENCH_*.json`", "reading-bench_json"),
            ("6. Operate the integration from the CLI",
             "6-operate-the-integration-from-the-cli"),
        ],
    )
    def test_github_style_anchors(self, heading, slug):
        assert docs_check.slugify(heading) == slug


class TestStripFenced:
    def test_blanks_code_blocks_keeps_line_numbers(self):
        text = "a\n```sh\n[not a](link.md)\n```\nb"
        lines = docs_check.strip_fenced(text)
        assert lines == ["a", "", "", "", "b"]

    def test_inline_code_is_not_a_link(self):
        line = 'query `[ln = "Clancy"]` (inches) stays'
        assert docs_check.LINK_RE.findall(docs_check.strip_inline_code(line)) == []


class TestCheckLinks:
    def test_broken_file_link_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [ghost](missing.md)\n")
        problems = docs_check.check_links(doc)
        assert len(problems) == 1
        assert "missing.md" in problems[0]

    def test_broken_anchor_reported(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Only heading\n")
        doc = tmp_path / "doc.md"
        doc.write_text("see [x](target.md#only-heading) and [y](target.md#nope)\n")
        problems = docs_check.check_links(doc)
        assert len(problems) == 1
        assert "nope" in problems[0]

    def test_external_links_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [arxiv](https://example.org/missing)\n")
        assert docs_check.check_links(doc) == []

    def test_same_file_anchor(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Top\n\njump [down](#bottom)\n\n## Bottom\n")
        assert docs_check.check_links(doc) == []
        doc.write_text("# Top\n\njump [down](#missing)\n")
        assert len(docs_check.check_links(doc)) == 1


class TestSnippets:
    def test_extracts_repro_lines_from_sh_fences(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```sh\nrepro specs\nls ignored\n```\n"
            "```python\nrepro not_this\n```\n"
            "repro nor_this\n"
        )
        assert docs_check.snippet_commands(doc) == ["repro specs"]

    def test_failing_snippet_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```sh\nrepro no-such-subcommand\n```\n")
        problems = docs_check.run_snippets(doc)
        assert len(problems) == 1
        assert "no-such-subcommand" in problems[0]


class TestRepositoryDocs:
    """The actual gate: the repo's documentation must pass its own check."""

    def test_docs_gate_passes(self, capsys):
        assert docs_check.main() == 0
        out = capsys.readouterr().out
        assert "docs-check: OK" in out

    def test_tutorial_has_executable_snippets(self):
        commands = docs_check.snippet_commands(REPO / "docs" / "tutorial.md")
        assert len(commands) >= 5
        assert any("sources" in c for c in commands)
        assert any("--fault" in c for c in commands)
