"""Property-based tests (hypothesis) for the resilience layer.

The headline property is the satellite requirement of ISSUE 4: with
faults disabled, a *resilient* mediator (adapters + concurrent fan-out)
answers every query row-identically to the plain ``answer_mediated``
pipeline, on the seed specification suite.  Supporting properties pin
down the backoff schedule and the breaker state machine.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast import C, conj, disj
from repro.mediator import bookstore_mediator, synthetic_federation
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
)

# -- faults-off equivalence --------------------------------------------------

#: Constraint pool over the seed bookstore catalog: known hits, known
#: misses, and attributes every rule family touches.
BOOK_CONSTRAINTS = [
    C("ln", "=", "Clancy"),
    C("ln", "=", "Chang"),
    C("ln", "=", "Nobody"),
    C("fn", "=", "Tom"),
    C("fn", "=", "Kevin"),
    C("pyear", "=", 1997),
    C("pyear", "=", 1998),
    C("publisher", "=", "mit"),
    C("publisher", "=", "aw"),
    C("subject", "=", "war"),
    C("subject", "=", "databases"),
]


def _random_book_query(seed: int):
    rng = random.Random(seed)
    picks = rng.sample(BOOK_CONSTRAINTS, rng.randint(1, 4))
    groups = []
    while picks:
        take = rng.randint(1, len(picks))
        groups.append(disj(picks[:take]))
        picks = picks[take:]
    return conj(groups)


def _quick_resilience(max_workers=None):
    return ResilienceConfig(
        retry=RetryPolicy(retries=2, backoff_base=0.0, jitter=0.0),
        max_workers=max_workers,
        sleep=lambda s: None,
    )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_resilient_answers_identical_with_faults_off(seed):
    query = _random_book_query(seed)
    plain = bookstore_mediator("amazon")
    resilient = plain.with_resilience(_quick_resilience())
    expected = plain.answer_mediated(query)
    answer = resilient.answer_mediated(query)
    assert answer.complete
    assert Counter(answer.rows) == Counter(expected.rows)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-1, max_value=6), min_size=3, max_size=3
    ),
    workers=st.sampled_from([1, 2, 8]),
)
def test_synthetic_federation_fanout_equivalence(values, workers):
    """Serial and concurrent fan-out agree with Eq. 1 on every query."""
    query = conj([C(f"v{i}.a{i}", "=", v) for i, v in enumerate(values)])
    mediator = synthetic_federation(resilience=_quick_resilience(max_workers=workers))
    answer = mediator.answer_mediated(query)
    assert answer.complete
    assert Counter(answer.rows) == Counter(mediator.answer_direct(query))


# -- backoff schedule --------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    retries=st.integers(min_value=0, max_value=8),
    base=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    cap=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_backoff_schedule_properties(retries, base, multiplier, cap, jitter, seed):
    policy = RetryPolicy(
        retries=retries,
        backoff_base=base,
        backoff_multiplier=multiplier,
        backoff_max=cap,
        jitter=jitter,
        seed=seed,
    )
    schedule = policy.schedule()
    # Deterministic per seed, one delay per retry.
    assert schedule == policy.schedule()
    assert len(schedule) == retries
    # Every delay within [0, cap * (1 + jitter)].
    for delay in schedule:
        assert 0.0 <= delay <= cap * (1.0 + jitter) + 1e-9
    # Without jitter, delays never decrease (exponential until the cap).
    if jitter == 0.0:
        assert all(a <= b + 1e-12 for a, b in zip(schedule, schedule[1:]))


# -- breaker state machine ---------------------------------------------------

VALID_TRANSITIONS = {
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, CLOSED),
    (HALF_OPEN, OPEN),
}


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["fail", "succeed", "wait", "probe"]),
        min_size=1,
        max_size=40,
    ),
    threshold=st.integers(min_value=1, max_value=5),
)
def test_breaker_only_makes_legal_transitions(ops, threshold):
    clock = {"now": 0.0}
    breaker = CircuitBreaker(
        BreakerPolicy(failure_threshold=threshold, cooldown=10.0),
        clock=lambda: clock["now"],
    )
    for op in ops:
        if op == "fail":
            if breaker.allow():
                breaker.record_failure()
        elif op == "succeed":
            if breaker.allow():
                breaker.record_success()
        elif op == "wait":
            clock["now"] += 11.0
        else:  # probe: just consult the breaker
            breaker.allow()
        assert breaker.state in (CLOSED, OPEN, HALF_OPEN)
    assert set(breaker.transitions) <= VALID_TRANSITIONS
    # An open breaker with an elapsed cooldown must admit a probe.
    if breaker.state == OPEN:
        clock["now"] += 10.0
        assert breaker.allow()
