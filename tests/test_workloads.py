"""Tests for the synthetic workload generators (repro.workloads)."""

import pytest

from repro.core.ast import And, Or
from repro.core.dnf import dnf_term_count
from repro.workloads.datasets import (
    grid_points,
    random_books,
    random_papers_and_aubib,
    random_profs,
)
from repro.workloads.generator import (
    chain_query,
    dependent_conjunction,
    random_query,
    random_spec,
    simple_conjunction,
    synthetic_spec,
    vocabulary,
)


class TestVocabularyAndSpecs:
    def test_vocabulary(self):
        assert vocabulary(3) == ["a0", "a1", "a2"]

    def test_synthetic_spec_rules(self):
        spec = synthetic_spec([("a0", "a1")], singletons=["a2"])
        assert {r.name for r in spec.rules} == {"R_a0_a1", "R_a2"}

    def test_group_rule_matches_jointly(self):
        from repro.core.ast import C

        spec = synthetic_spec([("a0", "a1")])
        matcher = spec.matcher()
        both = matcher.matchings([C("a0", "=", 1), C("a1", "=", 2)])
        assert len(both) == 1
        assert both[0].emission.rhs == "1|2"
        assert matcher.matchings([C("a0", "=", 1)]) == []

    def test_random_spec_deterministic(self):
        attrs = vocabulary(6)
        a = random_spec(attrs, 3, seed=5)
        b = random_spec(attrs, 3, seed=5)
        assert [r.name for r in a.rules] == [r.name for r in b.rules]


class TestQueryGenerators:
    def test_random_query_deterministic(self):
        attrs = vocabulary(6)
        assert random_query(attrs, seed=3) == random_query(attrs, seed=3)

    def test_random_query_constraint_budget(self):
        attrs = vocabulary(6)
        q = random_query(attrs, seed=1, n_constraints=10)
        assert 1 <= len(list(q.iter_constraints())) <= 14

    def test_simple_conjunction(self):
        q = simple_conjunction(vocabulary(4), 0)
        assert isinstance(q, And)
        assert len(q.children) == 4

    def test_chain_query_shape(self):
        q = chain_query(5)
        assert isinstance(q, And)
        assert all(isinstance(child, Or) for child in q.children)
        assert dnf_term_count(q) == 2**5

    def test_dependent_conjunction_degree_zero(self):
        q, spec = dependent_conjunction(3, 3, 0, seed=1)
        assert isinstance(q, And)
        assert all(r.name.startswith("R_") for r in spec.rules)
        # No pair rules: every rule has a single pattern.
        assert all(len(r.patterns) == 1 for r in spec.rules)

    def test_dependent_conjunction_degree_e(self):
        q, spec = dependent_conjunction(3, 3, 2, seed=1)
        pair_rules = [r for r in spec.rules if len(r.patterns) == 2]
        assert len(pair_rules) == (3 - 1) * 2

    def test_e_cannot_exceed_k(self):
        with pytest.raises(ValueError):
            dependent_conjunction(3, 2, 5)


class TestDatasets:
    def test_random_books_shape(self):
        rows = random_books(10, seed=1)
        assert len(rows) == 10
        assert set(rows[0]) == {
            "title", "author", "year", "month", "publisher", "isbn", "subject",
        }

    def test_random_books_deterministic(self):
        assert random_books(5, seed=2) == random_books(5, seed=2)

    def test_papers_and_aubib_consistent(self):
        papers, aubib = random_papers_and_aubib(5, papers_per_author=2, seed=1)
        names = {a["name"] for a in aubib}
        assert len(aubib) == 5
        assert len(papers) == 10
        assert all(p["au"] in names for p in papers)

    def test_profs_overlap_aubib(self):
        _, aubib = random_papers_and_aubib(6, seed=2)
        profs = random_profs(aubib, seed=3)
        aubib_lasts = {a["name"].split(",")[0] for a in aubib}
        overlapping = [p for p in profs if p["ln"] in aubib_lasts]
        assert overlapping  # the fac join is non-empty

    def test_grid_points(self):
        points = grid_points(step=10, limit=30)
        assert len(points) == 9
        assert {"id", "x", "y"} == set(points[0])
