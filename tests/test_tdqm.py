"""Tests for Algorithm TDQM (repro.core.tdqm) — Figure 8, Examples 2/6."""

import pytest

from repro.core.ast import FALSE, TRUE, C, And, Or, conj, disj
from repro.core.dnf_mapper import dnf_map
from repro.core.errors import TranslationError
from repro.core.printer import to_text
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import disjunctivize, tdqm, tdqm_translate
from repro.rules import K_AMAZON, K_CLBOOKS, K_MAP
from repro.workloads.generator import synthetic_spec
from repro.workloads.paper_queries import (
    example2_query,
    example13_qa,
    example13_qb,
    example13_spec,
    figure2_q1,
    figure2_q2,
    qbook,
)


class TestDisjunctivize:
    def test_single_conjunct_passthrough(self):
        q = disj([C("a", "=", 1), C("b", "=", 1)])
        assert disjunctivize([q]) is q

    def test_distributes_one_level(self):
        a, b, c = C("a", "=", 1), C("b", "=", 1), C("c", "=", 1)
        out = disjunctivize([disj([a, b]), c])
        assert out == disj([conj([a, c]), conj([b, c])])

    def test_all_leaves_gives_conjunction(self):
        a, b = C("a", "=", 1), C("b", "=", 1)
        assert disjunctivize([a, b]) == conj([a, b])

    def test_preserves_equivalence(self):
        a, b, c, d = (C(x, "=", 1) for x in "abcd")
        conjuncts = [disj([a, b]), disj([c, d])]
        assert prop_equivalent(conj(conjuncts), disjunctivize(conjuncts))

    def test_empty_rejected(self):
        with pytest.raises(TranslationError):
            disjunctivize([])


class TestExample2:
    def test_minimal_mapping(self):
        mapping = tdqm(example2_query(), K_AMAZON)
        assert to_text(mapping) == (
            '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
        )

    def test_agrees_with_dnf_baseline(self):
        q = example2_query()
        assert prop_equivalent(tdqm(q, K_AMAZON), dnf_map(q, K_AMAZON))


class TestExample6:
    """The Q̂_book walkthrough: local rewriting only of {Č2, Č3}."""

    def test_mapping(self):
        result = tdqm_translate(qbook(), K_AMAZON)
        assert to_text(result.mapping) == (
            '([author = "Smith, John"] or '
            "[ti-word contains www] or [subject-word contains www] or "
            "[ti-word contains web] or [subject-word contains web]) and "
            "([pdate during May/97] or [pdate during Jun/97])"
        )

    def test_stats(self):
        result = tdqm_translate(qbook(), K_AMAZON)
        stats = result.stats
        assert stats.psafe_calls == 1
        assert stats.blocks_rewritten == 1  # only {Č2, Č3}
        assert stats.scm_calls == 5  # 3 disjuncts of Č1 + 2 rewritten terms

    def test_more_compact_than_dnf(self):
        q = qbook()
        tdqm_nodes = tdqm(q, K_AMAZON).node_count()
        dnf_nodes = dnf_map(q, K_AMAZON).node_count()
        assert tdqm_nodes < dnf_nodes

    def test_equivalent_to_dnf(self):
        q = qbook()
        assert prop_equivalent(tdqm(q, K_AMAZON), dnf_map(q, K_AMAZON))


class TestCases:
    def test_simple_conjunctions_delegate_to_scm(self):
        for q in (figure2_q1(), figure2_q2()):
            assert prop_equivalent(tdqm(q, K_AMAZON), dnf_map(q, K_AMAZON))

    def test_constants(self):
        assert tdqm(TRUE, K_AMAZON) is TRUE
        assert tdqm(FALSE, K_AMAZON) is FALSE

    def test_single_constraint(self):
        assert tdqm(C("ln", "=", "Clancy"), K_AMAZON) == C("author", "=", "Clancy")

    def test_pure_disjunction(self):
        q = disj([C("ln", "=", "a"), C("ln", "=", "b")])
        assert to_text(tdqm(q, K_AMAZON)) == '[author = "a"] or [author = "b"]'

    def test_deep_nesting(self):
        q = conj(
            [
                disj(
                    [
                        conj([C("ln", "=", "a"), disj([C("pyear", "=", 1997), C("pyear", "=", 1998)])]),
                        C("kwd", "contains", "www"),
                    ]
                ),
                disj([C("pmonth", "=", 5), C("pmonth", "=", 6)]),
            ]
        )
        assert prop_equivalent(tdqm(q, K_AMAZON), dnf_map(q, K_AMAZON))

    def test_example13_queries(self):
        spec = example13_spec()
        for q in (example13_qa(), example13_qb()):
            assert prop_equivalent(tdqm(q, spec), dnf_map(q, spec))

    def test_map_vocabulary(self):
        q = conj(
            [
                disj([C("x_min", "=", 10), C("x_min", "=", 15)]),
                C("x_max", "=", 30),
                C("y_min", "=", 20),
                C("y_max", "=", 40),
            ]
        )
        assert prop_equivalent(tdqm(q, K_MAP), dnf_map(q, K_MAP))


class TestExactness:
    def test_exact_conjunction(self):
        q = conj([C("ln", "=", "Clancy"), C("fn", "=", "Tom")])
        assert tdqm_translate(q, K_AMAZON).exact

    def test_inexact_at_clbooks(self):
        q = conj([C("ln", "=", "Clancy"), C("fn", "=", "Tom")])
        assert not tdqm_translate(q, K_CLBOOKS).exact

    def test_exact_disjunction(self):
        q = disj([C("ln", "=", "a"), C("ln", "=", "b")])
        assert tdqm_translate(q, K_AMAZON).exact

    def test_inexact_propagates_up(self):
        q = disj([C("ln", "=", "a"), C("fn", "=", "b")])  # fn uncovered
        assert not tdqm_translate(q, K_AMAZON).exact


class TestNoRewriteWhenIndependent:
    def test_independent_blocks_untouched(self):
        spec = synthetic_spec([], singletons=[f"a{i}" for i in range(6)])
        q = conj(
            [
                disj([C("a0", "=", 1), C("a1", "=", 1)]),
                disj([C("a2", "=", 1), C("a3", "=", 1)]),
                disj([C("a4", "=", 1), C("a5", "=", 1)]),
            ]
        )
        result = tdqm_translate(q, spec)
        assert result.stats.blocks_rewritten == 0
        # Output keeps the conjunction-of-disjunctions shape.
        assert isinstance(result.mapping, And)
        assert all(isinstance(child, Or) for child in result.mapping.children)
