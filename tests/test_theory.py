"""Tests for the constraint theory and mapping minimizer (repro.core.theory)."""

import pytest

from repro.core.ast import FALSE, C, Constraint, attr, conj, disj
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.theory import (
    conjunction_satisfiable,
    constraint_implies,
    query_implies,
    simplify_query,
)
from repro.core.values import Month, Year
from repro.text import parse_pattern


class TestConstraintImplies:
    def test_identity(self):
        c = C("a", "=", 5)
        assert constraint_implies(c, c)

    def test_numeric_equality_implies_bounds(self):
        assert constraint_implies(C("a", "=", 5), C("a", ">=", 3))
        assert constraint_implies(C("a", "=", 5), C("a", "<", 9))
        assert not constraint_implies(C("a", "=", 5), C("a", ">", 5))
        assert constraint_implies(C("a", "=", 5), C("a", ">=", 5))

    def test_interval_containment(self):
        assert constraint_implies(C("a", ">", 5), C("a", ">", 3))
        assert constraint_implies(C("a", ">", 5), C("a", ">=", 5))
        assert not constraint_implies(C("a", ">=", 5), C("a", ">", 5))
        assert constraint_implies(C("a", "<=", 2), C("a", "<", 3))

    def test_different_attributes_never_related(self):
        assert not constraint_implies(C("a", "=", 5), C("b", ">=", 3))

    def test_equality_implies_membership(self):
        assert constraint_implies(C("d", "=", "cs"), C("d", "in", ("cs", "ee")))
        assert not constraint_implies(C("d", "=", "me"), C("d", "in", ("cs", "ee")))

    def test_membership_subset(self):
        assert constraint_implies(C("d", "in", ("cs",)), C("d", "in", ("cs", "ee")))
        assert not constraint_implies(C("d", "in", ("cs", "me")), C("d", "in", ("cs", "ee")))

    def test_equality_implies_inequality(self):
        assert constraint_implies(C("a", "=", "x"), C("a", "!=", "y"))
        assert not constraint_implies(C("a", "=", "x"), C("a", "!=", "X"))

    def test_prefix_chain(self):
        assert constraint_implies(C("t", "starts", "jdk for"), C("t", "starts", "jdk"))
        assert not constraint_implies(C("t", "starts", "jdk"), C("t", "starts", "jdk for"))

    def test_equality_implies_prefix(self):
        assert constraint_implies(C("t", "=", "jdk for java"), C("t", "starts", "jdk"))

    def test_month_implies_year(self):
        may = C("pdate", "during", Month(1997, 5))
        year = C("pdate", "during", Year(1997))
        assert constraint_implies(may, year)
        assert not constraint_implies(year, may)
        assert not constraint_implies(may, C("pdate", "during", Year(1996)))

    def test_contains_word_subset(self):
        both = C("ti", "contains", parse_pattern("java (and) jdk"))
        one = C("ti", "contains", parse_pattern("java"))
        assert constraint_implies(both, one)
        assert not constraint_implies(one, both)

    def test_near_implies_and(self):
        near = C("ti", "contains", parse_pattern("java (near) jdk"))
        both = C("ti", "contains", parse_pattern("java (and) jdk"))
        assert constraint_implies(near, both)

    def test_phrase_implies_words(self):
        phrase = C("ti", "contains", parse_pattern('"data mining"'))
        word = C("ti", "contains", parse_pattern("mining"))
        assert constraint_implies(phrase, word)

    def test_or_pattern_guarantees_nothing(self):
        either = C("ti", "contains", parse_pattern("java (or) jdk"))
        one = C("ti", "contains", parse_pattern("java"))
        assert not constraint_implies(either, one)

    def test_joins_only_syntactic(self):
        j1 = Constraint(attr("a.x"), "=", attr("b.y"))
        j2 = Constraint(attr("a.x"), "=", attr("b.z"))
        assert constraint_implies(j1, j1)
        assert not constraint_implies(j1, j2)


class TestSatisfiability:
    def test_conflicting_equalities(self):
        assert not conjunction_satisfiable([C("a", "=", 1), C("a", "=", 4)])
        assert not conjunction_satisfiable([C("a", "=", "x"), C("a", "=", "y")])

    def test_empty_interval(self):
        assert not conjunction_satisfiable([C("a", ">", 5), C("a", "<", 3)])
        assert not conjunction_satisfiable([C("a", ">", 5), C("a", "<=", 5)])

    def test_touching_bounds_ok(self):
        assert conjunction_satisfiable([C("a", ">=", 5), C("a", "<=", 5)])

    def test_equality_vs_exclusion(self):
        assert not conjunction_satisfiable([C("a", "=", "x"), C("a", "!=", "x")])
        assert conjunction_satisfiable([C("a", "=", "x"), C("a", "!=", "y")])

    def test_equality_vs_membership(self):
        assert not conjunction_satisfiable([C("a", "=", "me"), C("a", "in", ("cs", "ee"))])
        assert conjunction_satisfiable([C("a", "=", "cs"), C("a", "in", ("cs", "ee"))])

    def test_disjoint_periods(self):
        assert not conjunction_satisfiable(
            [C("d", "during", Month(1997, 5)), C("d", "during", Month(1997, 6))]
        )
        assert conjunction_satisfiable(
            [C("d", "during", Month(1997, 5)), C("d", "during", Year(1997))]
        )
        assert not conjunction_satisfiable(
            [C("d", "during", Month(1997, 5)), C("d", "during", Year(1998))]
        )

    def test_different_attributes_independent(self):
        assert conjunction_satisfiable([C("a", "=", 1), C("b", "=", 4)])

    def test_view_instances_kept_apart(self):
        c1 = Constraint(attr("fac[1].ln"), "=", "A")
        c2 = Constraint(attr("fac[2].ln"), "=", "B")
        assert conjunction_satisfiable([c1, c2])


class TestSimplifyQuery:
    def test_drop_entailed_conjunct(self):
        q = parse_query("[a = 5] and [a >= 3] and [b = 1]")
        assert to_text(simplify_query(q)) == "[a = 5] and [b = 1]"

    def test_unsat_conjunction_is_false(self):
        q = parse_query("[a = 1] and [a = 4]")
        assert simplify_query(q) is FALSE

    def test_month_absorbs_year(self):
        q = parse_query("[pdate during 97] and [pdate during May/97]")
        assert to_text(simplify_query(q)) == "[pdate during May/97]"

    def test_absorption_in_disjunction(self):
        q = parse_query("[a = 1] or ([a = 1] and [b = 2])")
        assert to_text(simplify_query(q)) == "[a = 1]"

    def test_theory_absorption_in_disjunction(self):
        q = parse_query("[a >= 3] or [a = 5]")
        assert to_text(simplify_query(q)) == "[a >= 3]"

    def test_unsat_disjunct_disappears(self):
        q = parse_query("([a = 1] and [a = 2]) or [b = 3]")
        assert to_text(simplify_query(q)) == "[b = 3]"

    def test_untouched_when_independent(self):
        q = parse_query("([a = 1] or [b = 2]) and [c = 3]")
        assert simplify_query(q) == q

    def test_mutual_entailment_keeps_one(self):
        q = conj([C("d", "=", "cs"), C("d", "in", ("cs",))])
        simplified = simplify_query(q)
        assert simplified in (C("d", "=", "cs"), C("d", "in", ("cs",)))

    def test_no_absorb_flag(self):
        q = parse_query("[a = 1] or ([a = 1] and [b = 2])")
        assert simplify_query(q, absorb=False) == q

    def test_nested_structure(self):
        q = parse_query(
            "([a = 5] and [a >= 3] and ([b = 1] or [c = 2])) or ([a = 9] and [a = 8])"
        )
        simplified = simplify_query(q)
        assert to_text(simplified) == "[a = 5] and ([b = 1] or [c = 2])"


class TestQueryImplies:
    def test_conjunct_weakening(self):
        narrow = parse_query("[a = 5] and [b = 1]")
        broad = parse_query("[a >= 3]")
        assert query_implies(narrow, broad)
        assert not query_implies(broad, narrow)

    def test_disjunction_direction(self):
        assert query_implies(parse_query("[a = 1]"), parse_query("[a = 1] or [b = 2]"))

    def test_conflicting_narrow_implies_anything(self):
        narrow = parse_query("[a = 1] and [a = 2]")
        assert query_implies(narrow, parse_query("[z = 9]"))

    def test_atom_limit(self):
        narrow = conj([C(f"x{i}", "=", 1) for i in range(20)])
        assert not query_implies(narrow, C("x0", "=", 1), limit=10)
