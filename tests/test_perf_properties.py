"""Property-based tests (hypothesis) for the repro.perf hot-path layer.

The layer's contract is *semantic invisibility*: the compiled rule index
changes which rules are probed (never what a probe returns) and the
translation cache changes when translation runs (never what it returns).
On random queries and random rule sets:

* indexed ``Matcher.potential`` returns exactly the linear-scan matchings;
* cached translation is bit-identical to uncached translation;
* ∧/∨-shuffled variants of a query share a fingerprint, and queries
  sharing a fingerprint are theory-equivalent (the cache never conflates
  semantically different queries).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast import And, Or, Query, conj, disj
from repro.core.matching import Matcher
from repro.core.tdqm import tdqm_translate
from repro.perf import TranslationCache, query_fingerprint, translate_batch
from repro.workloads.generator import (
    random_query,
    random_spec,
    theory_equivalent,
    vocabulary,
)

ATTRS = vocabulary(8)

query_seeds = st.integers(min_value=0, max_value=10_000)
spec_seeds = st.integers(min_value=0, max_value=200)


def _shuffle(query: Query, rng: random.Random) -> Query:
    """A random ∧/∨-commuted variant of ``query`` (same theory)."""
    if isinstance(query, (And, Or)):
        children = [_shuffle(child, rng) for child in query.children]
        rng.shuffle(children)
        build = conj if isinstance(query, And) else disj
        return build(children)
    return query


@given(query_seeds, spec_seeds)
@settings(max_examples=60, deadline=None)
def test_indexed_matcher_equals_linear_scan(qseed, sseed):
    spec = random_spec(ATTRS, pair_count=3, seed=sseed)
    query = random_query(ATTRS, seed=qseed, n_constraints=8, max_depth=4)
    universe = frozenset(query.constraints())

    linear = Matcher(spec.rules).potential(universe)
    indexed = Matcher(spec.rules, index=spec.compiled_index()).potential(universe)

    def key(m):
        return (m.rule_name, sorted(map(str, m.constraints)), str(m.emission))

    assert sorted(linear, key=key) == sorted(indexed, key=key)


@given(query_seeds, spec_seeds)
@settings(max_examples=40, deadline=None)
def test_cached_translation_bit_identical(qseed, sseed):
    spec = random_spec(ATTRS, pair_count=2, seed=sseed)
    query = random_query(ATTRS, seed=qseed, n_constraints=6, max_depth=3)
    cache = TranslationCache()

    miss = tdqm_translate(query, spec, cache=cache)
    hit = tdqm_translate(query, spec, cache=cache)
    direct = tdqm_translate(query, spec)

    assert hit is miss  # second call was a hit
    assert miss.mapping == direct.mapping
    assert miss.exact == direct.exact
    assert cache.stats.hits == 1


@given(query_seeds, st.integers(min_value=0, max_value=99))
@settings(max_examples=60, deadline=None)
def test_shuffled_variants_share_fingerprint(qseed, shuffle_seed):
    query = random_query(ATTRS, seed=qseed, n_constraints=6, max_depth=3)
    variant = _shuffle(query, random.Random(shuffle_seed))
    assert query_fingerprint(query) == query_fingerprint(variant)
    assert theory_equivalent(query, variant)


@given(query_seeds, st.integers(min_value=0, max_value=99), spec_seeds)
@settings(max_examples=30, deadline=None)
def test_shuffled_variant_hits_cache_with_equivalent_result(qseed, shuffle_seed, sseed):
    # A commuted variant must hit the original's entry, and the shared
    # result must be a correct translation *of the variant* too.
    spec = random_spec(ATTRS, pair_count=2, seed=sseed)
    query = random_query(ATTRS, seed=qseed, n_constraints=6, max_depth=3)
    variant = _shuffle(query, random.Random(shuffle_seed))
    cache = TranslationCache()

    original = cache.tdqm(query, spec)
    shared = cache.tdqm(variant, spec)
    assert shared is original
    assert theory_equivalent(shared.mapping, tdqm_translate(variant, spec).mapping)


@given(query_seeds, spec_seeds)
@settings(max_examples=20, deadline=None)
def test_batch_equals_per_query(qseed, sseed):
    spec = random_spec(ATTRS, pair_count=2, seed=sseed)
    queries = [
        random_query(ATTRS, seed=qseed + i, n_constraints=5, max_depth=3)
        for i in range(3)
    ]
    batched = translate_batch(queries, {spec.name: spec})
    for query, per_spec in zip(queries, batched):
        direct = tdqm_translate(query, spec)
        assert per_spec[spec.name].mapping == direct.mapping
        assert per_spec[spec.name].exact == direct.exact
