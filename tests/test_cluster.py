"""repro.serve.cluster: consistent-hash routing and the sharded front-end.

The contracts under test, in increasing machinery:

* :class:`HashRing` — deterministic placement, minimal disruption when a
  shard leaves (only the departed shard's keys move), usable balance.
* The 2-process cluster answers every protocol op **bit-identically** to
  a single-process :func:`~repro.serve.handle_line` — same bytes for
  translate/mediate/batch/errors — under both sequential and 16-client
  concurrent load, with zero lost responses.
* Operational behavior: exact aggregated stats, graceful degradation
  when a worker is killed, rolling restart that loses nothing and comes
  back warm from the dead worker's snapshot.

Workers are real spawned processes, so these tests are the slowest in
the suite; they share one cluster per class where the ops are read-only.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
from collections import Counter

import pytest

from repro.obs.stats import builtin_mediator
from repro.serve import (
    ClusterConfig,
    ClusterServer,
    HashRing,
    MediationService,
    ServiceConfig,
    handle_line,
)

QUERY = '[ln = "Clancy"] and [fn = "Tom"]'
QUERIES = [
    QUERY,
    '[ln = "King"]',
    "[pyear = 1997] and [pmonth = 5]",
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    "this does not parse ((",
]


def fingerprints(n: int):
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestHashRing:
    def test_route_is_deterministic(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        for key in fingerprints(200):
            assert a.route(key) == b.route(key)

    def test_single_key_always_lands_on_one_shard(self):
        ring = HashRing(range(8))
        key = fingerprints(1)[0]
        assert len({ring.route(key) for _ in range(50)}) == 1

    def test_only_departed_shards_keys_move(self):
        ring = HashRing(range(4))
        keys = fingerprints(2000)
        full = {key: ring.route(key) for key in keys}
        down = 2
        survivors = {0, 1, 3}
        for key in keys:
            rerouted = ring.route(key, survivors)
            if full[key] != down:
                assert rerouted == full[key]  # untouched shards keep their keys
            else:
                assert rerouted in survivors

    def test_balance_within_bounds(self):
        ring = HashRing(range(4), replicas=64)
        counts = Counter(ring.route(key) for key in fingerprints(10_000))
        assert set(counts) == {0, 1, 2, 3}
        # Virtual nodes keep the spread coarse but serviceable.
        assert max(counts.values()) < 3 * min(counts.values())

    def test_preference_is_a_permutation(self):
        ring = HashRing(range(5))
        for key in fingerprints(50):
            order = list(ring.preference(key))
            assert sorted(order) == [0, 1, 2, 3, 4]
            assert order[0] == ring.route(key)

    def test_route_honors_routable_subset(self):
        ring = HashRing(range(4))
        key = fingerprints(1)[0]
        assert ring.route(key, {3}) == 3
        with pytest.raises(LookupError):
            ring.route(key, set())

    def test_non_hex_keys_still_route(self):
        ring = HashRing(range(3))
        for key in ("text:not a query ((", "op:'stats':None", ""):
            assert ring.route(key) in {0, 1, 2}

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing([])


def cluster_config(**overrides) -> ClusterConfig:
    defaults = dict(
        spec_names=("K_Amazon",),
        processes=2,
        service=ServiceConfig(),
        snapshot_interval=0.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class Client:
    """One JSON-lines connection to the cluster front-end."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=60.0)
        self.handle = self.sock.makefile("rw", encoding="utf-8")

    def call_raw(self, line: str) -> str:
        self.handle.write(line + "\n")
        self.handle.flush()
        return self.handle.readline().rstrip("\n")

    def call(self, request: dict) -> dict:
        return json.loads(self.call_raw(json.dumps(request)))

    def close(self):
        self.sock.close()


def reference_lines(ops=("translate", "mediate")) -> dict[str, str]:
    """Single-process responses, keyed by the exact request line."""
    service = MediationService(builtin_mediator({"K_Amazon"}), ServiceConfig())
    lines = {}
    for i, query in enumerate(QUERIES):
        for op in ops:
            line = json.dumps({"id": f"{op}-{i}", "op": op, "query": query})
            lines[line] = handle_line(service, line)
    batch = json.dumps({"id": "batch", "op": "batch", "queries": QUERIES[:4]})
    lines[batch] = handle_line(service, batch)
    bad_batch = json.dumps({"id": "bad", "op": "batch", "queries": QUERIES})
    lines[bad_batch] = handle_line(service, bad_batch)
    return lines


@pytest.fixture(scope="class")
def cluster():
    server = ClusterServer(cluster_config())
    server.start()
    yield server
    server.stop()


@pytest.mark.usefixtures("cluster")
class TestClusterProtocol:
    def test_responses_bit_identical_to_single_process(self, cluster):
        client = Client(cluster.address)
        try:
            for line, expected in reference_lines().items():
                assert client.call_raw(line) == expected
        finally:
            client.close()

    def test_concurrent_load_loses_nothing_and_stays_identical(self, cluster):
        expected = reference_lines()
        lines = list(expected)
        failures: list[str] = []
        done = threading.Barrier(17, timeout=120.0)

        def drive(offset: int) -> None:
            client = Client(cluster.address)
            try:
                for round_ in range(3):
                    line = lines[(offset + round_) % len(lines)]
                    got = client.call_raw(line)
                    if got != expected[line]:
                        failures.append(f"client {offset}: {got[:80]}")
            finally:
                client.close()
                done.wait()

        threads = [
            threading.Thread(target=drive, args=(i,), daemon=True) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        done.wait()
        for thread in threads:
            thread.join(timeout=30.0)
        assert failures == []

    def test_ping_and_unknown_op(self, cluster):
        client = Client(cluster.address)
        try:
            assert client.call({"id": 1, "op": "ping"})["pong"] is True
            response = client.call({"id": 2, "op": "nonsense"})
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-request"
        finally:
            client.close()

    def test_malformed_json_gets_structured_error(self, cluster):
        client = Client(cluster.address)
        try:
            response = json.loads(client.call_raw('{"op": "ping", '))
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-json"
            # Connection must still be serving afterwards.
            assert client.call({"op": "ping"})["ok"] is True
        finally:
            client.close()

    def test_stats_aggregate_exactly(self, cluster):
        client = Client(cluster.address)
        try:
            stats = client.call({"op": "stats"})["stats"]
            shard_stats = [
                entry["stats"] for entry in stats["shards"] if "stats" in entry
            ]
            assert len(shard_stats) == 2
            for counter in ("requests", "completed", "rejected", "coalesced"):
                assert stats[counter] == sum(s[counter] for s in shard_stats)
            cache = stats["cache"]
            assert cache["size"] == sum(s["cache"]["size"] for s in shard_stats)
            assert stats["frontend"]["processes"] == 2
            assert stats["frontend"]["requests"] > 0
        finally:
            client.close()

    def test_shards_topology(self, cluster):
        client = Client(cluster.address)
        try:
            shards = client.call({"op": "shards"})["shards"]
            assert [s["shard"] for s in shards] == [0, 1]
            assert all(s["alive"] for s in shards)
            assert all(isinstance(s["pid"], int) for s in shards)
        finally:
            client.close()

    def test_health_reports_every_shard(self, cluster):
        client = Client(cluster.address)
        try:
            health = client.call({"op": "health"})["health"]
            assert health["status"] == "ok"
            assert [s["shard"] for s in health["shards"]] == [0, 1]
        finally:
            client.close()

    def test_drain_excludes_then_resume_restores(self, cluster):
        client = Client(cluster.address)
        try:
            drained = client.call({"op": "drain", "shard": 0})
            assert drained["shard"]["draining"] is True
            # Everything still answers while one shard is draining.
            for query in QUERIES[:3]:
                assert client.call({"op": "translate", "query": query})["ok"]
            resumed = client.call({"op": "drain", "shard": 0, "resume": True})
            assert resumed["shard"]["draining"] is False
            bad = client.call({"op": "drain", "shard": 99})
            assert bad["ok"] is False and bad["error"]["type"] == "bad-request"
        finally:
            client.close()


class TestClusterResilience:
    def test_worker_death_degrades_gracefully(self):
        with ClusterServer(cluster_config()) as cluster:
            client = Client(cluster.address)
            try:
                for query in QUERIES[:4]:
                    assert client.call({"op": "translate", "query": query})["ok"]
                cluster.kill_shard(0)
                # Every fingerprint still answers via ring failover.
                for query in QUERIES[:4]:
                    response = client.call({"op": "translate", "query": query})
                    assert response["ok"], response
                health = client.call({"op": "health"})["health"]
                assert health["status"] == "degraded"
                stats = client.call({"op": "stats"})["stats"]
                assert stats["frontend"]["worker_deaths"] == 1
            finally:
                client.close()

    def test_rolling_restart_loses_nothing_and_restores_warm(self, tmp_path):
        config = cluster_config(snapshot_dir=str(tmp_path))
        with ClusterServer(config) as cluster:
            client = Client(cluster.address)
            try:
                expected = {}
                for i, query in enumerate(QUERIES[:4]):
                    line = json.dumps({"id": i, "op": "translate", "query": query})
                    expected[line] = client.call_raw(line)
                # Write snapshots, then restart each shard in turn.
                assert client.call({"op": "snapshot"})["ok"]
                for shard_id in (0, 1):
                    restarted = client.call({"op": "restart", "shard": shard_id})
                    assert restarted["ok"], restarted
                    assert restarted["restart"]["alive"] is True
                    assert restarted["restart"]["restarts"] == 1
                    # The replacement came up warm from the snapshot.
                    restored = restarted["restart"]["restored"]
                    assert restored is not None
                    assert restored["discarded_stale"] == 0
                # Bit-identical answers after the full rolling restart.
                for line, before in expected.items():
                    assert client.call_raw(line) == before
                assert client.call({"op": "health"})["health"]["status"] == "ok"
            finally:
                client.close()

    def test_cold_vs_warm_restart_restores_entries(self, tmp_path):
        config = cluster_config(snapshot_dir=str(tmp_path))
        with ClusterServer(config) as cluster:
            client = Client(cluster.address)
            try:
                for query in QUERIES[:4]:
                    client.call({"op": "translate", "query": query})
                reports = client.call({"op": "snapshot"})["snapshots"]
                exported = sum(r["snapshot"]["entries"] for r in reports if r.get("ok"))
                assert exported > 0
            finally:
                client.close()
        # A brand-new cluster over the same snapshot dir starts warm:
        # the same queries hit the restored entries instead of missing.
        with ClusterServer(config) as cluster:
            client = Client(cluster.address)
            try:
                for query in QUERIES[:4]:
                    assert client.call({"op": "translate", "query": query})["ok"]
                cache = client.call({"op": "stats"})["stats"]["cache"]
                assert cache["hits"] > 0
                assert cache["size"] >= exported > 0
            finally:
                client.close()


#: Declarative K_Amazon variants for the hot-reload tests — the first
#: maps ``ln`` to ``author-word``, the second to plain ``author``; both
#: answer differently from the built-in spec for the queries above.
RELOAD_V1 = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author-word", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "variant: ln -> author-word",
        },
        {
            "name": "V2",
            "match": [{"attr": "publisher", "op": "=", "bind": "N"}],
            "where": [{"cond": "value_is", "vars": ["N"]}],
            "emit": {"attr": "publisher", "op": "=", "value": "$N"},
            "exact": True,
            "doc": "variant: publisher rename",
        },
    ],
}

RELOAD_V2 = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "variant2: ln -> author",
        }
    ],
}


def reload_reference_lines(payload) -> dict[str, str]:
    """Single-process responses under one reloaded spec version."""
    from repro.rules.declarative import spec_from_dict

    service = MediationService(builtin_mediator({"K_Amazon"}), ServiceConfig())
    if payload is not None:
        service.reload_spec(spec_from_dict(payload))
    lines = {}
    for i, query in enumerate(QUERIES[:4]):
        line = json.dumps({"id": f"reload-{i}", "op": "translate", "query": query})
        lines[line] = handle_line(service, line)
    return lines


class TestClusterReload:
    def test_rolling_reload_swaps_every_shard_and_rollback_restores(self, tmp_path):
        from repro.registry import SpecRegistry

        registry = SpecRegistry(tmp_path)
        registry.publish(RELOAD_V1)
        builtin_ref = reload_reference_lines(None)
        v1_ref = reload_reference_lines(RELOAD_V1)
        v2_ref = reload_reference_lines(RELOAD_V2)

        with ClusterServer(cluster_config()) as cluster:
            client = Client(cluster.address)
            try:
                for line, expected in builtin_ref.items():
                    assert client.call_raw(line) == expected

                response = client.call({"op": "reload", "registry": str(tmp_path)})
                assert response["ok"] is True
                assert len(response["reload"]) == 2  # one report per shard
                for entry in response["reload"]:
                    assert entry["ok"] is True, entry
                    (report,) = entry["reload"]
                    assert report["changed"] is True
                    assert report["spec"] == "K_Amazon"

                # Every shard serves the published version, bit-identical
                # to a single-process service on the same spec.
                for line, expected in v1_ref.items():
                    assert client.call_raw(line) == expected

                registry.publish(RELOAD_V2)
                assert client.call({"op": "reload", "registry": str(tmp_path)})["ok"]
                for line, expected in v2_ref.items():
                    assert client.call_raw(line) == expected

                # Rollback and reload: prior answers return bit-identically.
                registry.rollback("K_Amazon")
                assert client.call({"op": "reload", "registry": str(tmp_path)})["ok"]
                for line, expected in v1_ref.items():
                    assert client.call_raw(line) == expected

                stats = client.call({"op": "stats"})["stats"]
                assert stats["reloads"] == 6  # 3 rolling reloads x 2 shards
            finally:
                client.close()

    def test_reload_under_concurrent_clients_loses_nothing(self, tmp_path):
        from repro.registry import SpecRegistry

        registry = SpecRegistry(tmp_path)
        registry.publish(RELOAD_V1)
        registry.publish(RELOAD_V2)
        allowed: dict[str, set[str]] = {}
        for ref in (
            reload_reference_lines(None),
            reload_reference_lines(RELOAD_V1),
            reload_reference_lines(RELOAD_V2),
        ):
            for line, response in ref.items():
                allowed.setdefault(line, set()).add(response)
        lines = sorted(allowed)

        with ClusterServer(cluster_config()) as cluster:
            failures: list[str] = []
            counts = [0] * 8

            def drive(slot: int) -> None:
                client = Client(cluster.address)
                try:
                    for i in range(12):
                        line = lines[(slot + i) % len(lines)]
                        got = client.call_raw(line)
                        if got not in allowed[line]:
                            failures.append(f"client {slot}: {got[:100]}")
                            return
                        counts[slot] += 1
                finally:
                    client.close()

            threads = [
                threading.Thread(target=drive, args=(slot,), daemon=True)
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()

            admin = Client(cluster.address)
            try:
                for cycle in range(4):
                    registry.rollback("K_Amazon", to_version=1 + cycle % 2)
                    response = admin.call(
                        {"op": "reload", "registry": str(tmp_path)}
                    )
                    assert response["ok"] is True, response
            finally:
                admin.close()
                for thread in threads:
                    thread.join(timeout=120.0)

            assert failures == []
            assert counts == [12] * 8
