"""Tests for Algorithm DNF (repro.core.dnf_mapper) — Figure 6, Example 5."""

from repro.core.ast import FALSE, TRUE, C, conj, disj
from repro.core.dnf_mapper import dnf_map, dnf_map_translate
from repro.core.printer import to_text
from repro.core.subsume import prop_equivalent
from repro.rules import K_AMAZON
from repro.workloads.paper_queries import example2_query, qbook


class TestExample5:
    def test_minimal_mapping(self):
        mapping = dnf_map(example2_query(), K_AMAZON)
        assert to_text(mapping) == (
            '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
        )

    def test_two_disjuncts_processed(self):
        result = dnf_map_translate(example2_query(), K_AMAZON)
        assert result.disjunct_count == 2
        assert result.scm_calls == 2


class TestWorkAccounting:
    def test_qbook_repeats_constraints(self):
        # DNF re-processes f_y in every one of the 6 disjuncts (Example 6).
        result = dnf_map_translate(qbook(), K_AMAZON)
        assert result.disjunct_count == 6
        # 2 disjuncts of size 4 (ln,fn,pyear,pmonth) + 4 of size 3.
        assert result.constraint_slots == 2 * 4 + 4 * 3

    def test_simple_conjunction_is_one_disjunct(self):
        q = conj([C("ln", "=", "x"), C("pyear", "=", 1997)])
        assert dnf_map_translate(q, K_AMAZON).disjunct_count == 1


class TestEdgeCases:
    def test_constants(self):
        assert dnf_map(TRUE, K_AMAZON) is TRUE
        assert dnf_map(FALSE, K_AMAZON) is FALSE

    def test_pure_disjunction(self):
        q = disj([C("ln", "=", "a"), C("ln", "=", "b")])
        mapping = dnf_map(q, K_AMAZON)
        assert to_text(mapping) == '[author = "a"] or [author = "b"]'

    def test_uncovered_disjunct_makes_true(self):
        # One disjunct maps to True => the whole disjunction is True.
        q = disj([C("ln", "=", "a"), C("fn", "=", "b")])
        assert dnf_map(q, K_AMAZON) is TRUE

    def test_equivalent_to_itself_under_reordering(self):
        q = qbook()
        assert prop_equivalent(dnf_map(q, K_AMAZON), dnf_map(q, K_AMAZON))
