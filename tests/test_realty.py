"""Tests for the realty scenario: inequality mapping with conversions."""

import pytest

from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.scm import scm, scm_translate
from repro.core.values import Range
from repro.mediator import realty_mediator
from repro.rules.library_realty import K_REALTY, make_listings_source, sqft_to_m2


class TestMonotoneConversion:
    @pytest.mark.parametrize(
        "op", ["<=", ">=", "<", ">", "="]
    )
    def test_price_keeps_operator(self, op):
        q = parse_query(f"[price-usd {op} 500000]")
        mapping = scm(q, K_REALTY)
        assert to_text(mapping) == f"[price_cents {op} 50000000]"

    def test_price_is_exact(self):
        q = parse_query("[price-usd <= 500000]")
        assert scm_translate(q, K_REALTY).exact


class TestOrderReversingConversion:
    @pytest.mark.parametrize(
        "op,flipped",
        [("<=", ">="), (">=", "<="), ("<", ">"), (">", "<"), ("=", "=")],
    )
    def test_rank_flips_operator(self, op, flipped):
        q = parse_query(f"[quality-rank {op} 10]")
        mapping = scm(q, K_REALTY)
        assert to_text(mapping) == f"[score {flipped} 91]"

    def test_best_rank_is_top_score(self):
        mapping = scm(parse_query("[quality-rank = 1]"), K_REALTY)
        assert to_text(mapping) == "[score = 100]"


class TestAreaPair:
    def test_pair_becomes_one_range(self):
        q = parse_query("[area-min-sqft = 700] and [area-max-sqft = 1500]")
        mapping = scm(q, K_REALTY)
        assert to_text(mapping) == (
            f"[area_m2 = ({sqft_to_m2(700)}:{sqft_to_m2(1500)})]"
        )

    def test_pair_suppresses_lone_min_rule(self):
        q = parse_query("[area-min-sqft = 700] and [area-max-sqft = 1500]")
        result = scm_translate(q, K_REALTY)
        assert [m.rule_name for m in result.kept_matchings] == ["Ra_band"]

    def test_lone_min_open_topped(self):
        mapping = scm(parse_query("[area-min-sqft = 900]"), K_REALTY)
        assert isinstance(mapping.rhs, Range)
        assert mapping.rhs.lo == sqft_to_m2(900)

    def test_lone_max_is_uncovered(self):
        from repro.core.ast import TRUE

        assert scm(parse_query("[area-max-sqft = 1500]"), K_REALTY) is TRUE


class TestEndToEnd:
    QUERIES = [
        "[price-usd <= 600000]",
        '[price-usd > 500000] and [city = "palo alto"]',
        "[quality-rank <= 10]",
        "[quality-rank > 30] or [price-usd < 300000]",
        "[area-min-sqft = 700] and [area-max-sqft = 1500]",
        "[area-min-sqft = 900]",
        "[area-max-sqft = 800]",  # uncovered: runs as a filter
        '([city = "palo alto"] or [city = "menlo park"]) and '
        "[price-usd < 800000] and [quality-rank <= 20]",
        "not [city = sunnyvale] and [price-usd >= 400000]",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_equivalence(self, text):
        mediator = realty_mediator()
        assert mediator.check_equivalence(parse_query(text)), text

    def test_source_enforces_vocabulary(self):
        from repro.core.errors import CapabilityError

        source = make_listings_source()
        with pytest.raises(CapabilityError):
            source.select_rows("listings", parse_query("[price-usd <= 5]"))

    def test_rank_results_exact_set(self):
        # rank = 101 - score, so rank <= 2 <=> score >= 99: only L7 (99).
        mediator = realty_mediator()
        answer = mediator.answer_mediated(parse_query("[quality-rank <= 2]"))
        ids = {dict(row[0][2])["id"] for row in answer.rows}
        assert ids == {"L7"}

    def test_rank_six_includes_l1(self):
        mediator = realty_mediator()
        answer = mediator.answer_mediated(parse_query("[quality-rank <= 6]"))
        ids = {dict(row[0][2])["id"] for row in answer.rows}
        assert ids == {"L7", "L1"}  # scores 99, 95
