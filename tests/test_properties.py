"""Property-based tests (hypothesis) on the core invariants.

The headline property is Theorem 2 by oracle: on random queries and random
rule sets, ``TDQM(Q, K)`` is propositionally equivalent to the provably
optimal ``DNF(Q, K)``.  The remaining properties nail the supporting
machinery: parser/printer round-trips, normalization idempotence,
Disjunctivize equivalence, DNF equivalence, subsumption of the original by
its translation (executed empirically through the bookstore mediator), and
the Lemma 3 equivalence of EDNF-based and full-DNF-based partitioning.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast import And, C, Query, conj, disj
from repro.core.dnf import dnf_terms, to_dnf
from repro.core.dnf_mapper import dnf_map
from repro.core.normalize import normalize
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.psafe import psafe_partition
from repro.core.subsume import prop_equivalent, prop_implies
from repro.core.tdqm import disjunctivize, tdqm, tdqm_translate
from repro.workloads.generator import (
    random_query,
    random_spec,
    theory_equivalent,
    vocabulary,
)

ATTRS = vocabulary(8)

# Strategy: a seed-driven random query over the synthetic vocabulary kept
# small enough that DNF stays tractable.
query_seeds = st.integers(min_value=0, max_value=10_000)
spec_seeds = st.integers(min_value=0, max_value=200)
pair_counts = st.integers(min_value=0, max_value=5)


def build_query(seed: int) -> Query:
    rng = random.Random(seed)
    return random_query(
        ATTRS,
        seed=seed,
        n_constraints=rng.randint(2, 8),
        max_depth=rng.randint(2, 4),
        fanout=3,
    )


@settings(max_examples=120, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_tdqm_equals_dnf_baseline(qseed, sseed, pairs):
    """Theorem 2 by oracle: TDQM and the DNF baseline always agree."""
    query = build_query(qseed)
    spec = random_spec(ATTRS, pairs, seed=sseed)
    assert theory_equivalent(tdqm(query, spec), dnf_map(query, spec))


@settings(max_examples=80, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_exact_spec_translation_is_equivalent(qseed, sseed, pairs):
    """Fully-covered exact specs: S(Q) is *equivalent* to Q, not merely
    subsuming.

    The theory oracle relates source atoms ``[a0 = 5]`` to their exact
    emissions ``[t_a0 = "5"]``, so equivalence across the two vocabularies
    is checkable directly — the strongest end-to-end statement about the
    whole SCM/PSafe/TDQM pipeline on synthetic workloads.
    """
    query = build_query(qseed)
    spec = random_spec(
        ATTRS, pairs, seed=sseed, singleton_fraction=1.0, exact=True
    )
    mapping = tdqm(query, spec)
    try:
        assert theory_equivalent(query, mapping)
    except ValueError:
        return  # too many atoms for exhaustive checking; skip this case


@settings(max_examples=80, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_translation_subsumes_original(qseed, sseed, pairs):
    """Definition 1: S(Q) ⊇ Q, even with partial vocabulary coverage."""
    from repro.core.subsume import evaluate_assignment
    from itertools import product as _product
    from repro.workloads.generator import _atom_bindings, _consistent

    query = build_query(qseed)
    spec = random_spec(
        ATTRS, pairs, seed=sseed, singleton_fraction=0.5, exact=True
    )
    mapping = tdqm(query, spec)
    atoms = sorted(query.constraints() | mapping.constraints(), key=str)
    if len(atoms) > 16:
        return
    parts = {atom: _atom_bindings(atom) for atom in atoms}
    for bits in _product((False, True), repeat=len(atoms)):
        assignment = dict(zip(atoms, bits))
        if not _consistent(assignment, parts):
            continue
        if evaluate_assignment(query, assignment):
            assert evaluate_assignment(mapping, assignment)


@settings(max_examples=100, deadline=None)
@given(qseed=query_seeds)
def test_parser_printer_round_trip(qseed):
    query = build_query(qseed)
    assert parse_query(to_text(query)) == query


@settings(max_examples=100, deadline=None)
@given(qseed=query_seeds)
def test_normalize_idempotent(qseed):
    query = build_query(qseed)
    assert normalize(normalize(query)) == normalize(query)


@settings(max_examples=100, deadline=None)
@given(qseed=query_seeds)
def test_dnf_equivalence(qseed):
    query = build_query(qseed)
    assert prop_equivalent(query, to_dnf(query))


@settings(max_examples=100, deadline=None)
@given(qseed=query_seeds)
def test_disjunctivize_equivalence(qseed):
    query = build_query(qseed)
    if not isinstance(query, And):
        return
    conjuncts = list(query.children)
    assert prop_equivalent(conj(conjuncts), disjunctivize(conjuncts))


@settings(max_examples=60, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_psafe_blocks_partition_conjuncts(qseed, sseed, pairs):
    """PSafe returns a true partition: disjoint blocks covering 1..n."""
    query = build_query(qseed)
    if not isinstance(query, And):
        return
    spec = random_spec(ATTRS, pairs, seed=sseed)
    conjuncts = list(query.children)
    blocks = psafe_partition(conjuncts, spec.matcher())
    flat = sorted(i for block in blocks for i in block)
    assert flat == list(range(len(conjuncts)))


@settings(max_examples=60, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_psafe_blocks_translate_like_whole(qseed, sseed, pairs):
    """Theorem 6: S(Q̂) = S(∧B1) ... S(∧Bm) for the PSafe partition."""
    query = build_query(qseed)
    if not isinstance(query, And):
        return
    spec = random_spec(ATTRS, pairs, seed=sseed)
    conjuncts = list(query.children)
    matcher = spec.matcher()
    blocks = psafe_partition(conjuncts, matcher)
    per_block = conj(
        tdqm(conj(conjuncts[i] for i in block), matcher) for block in blocks
    )
    whole = dnf_map(query, spec)
    assert theory_equivalent(per_block, whole)


@settings(max_examples=40, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_lemma3_ednf_equals_full_dnf_partition(qseed, sseed, pairs):
    """Lemma 3: partitioning over EDNF == partitioning over full DNF.

    We emulate the full-DNF variant by replacing each conjunct with its
    raw DNF disjunction before calling PSafe; the resulting blocks must
    translate identically (the partitions themselves may differ only in
    ways that do not change the mapping).
    """
    query = build_query(qseed)
    if not isinstance(query, And):
        return
    spec = random_spec(ATTRS, pairs, seed=sseed)
    conjuncts = list(query.children)

    matcher_e = spec.matcher()
    blocks_e = psafe_partition(conjuncts, matcher_e)

    expanded = [
        disj(conj(sorted(term, key=str)) for term in dnf_terms(child))
        for child in conjuncts
    ]
    matcher_d = spec.matcher()
    blocks_d = psafe_partition(expanded, matcher_d)

    mapped_e = conj(
        tdqm(conj(conjuncts[i] for i in block), matcher_e) for block in blocks_e
    )
    mapped_d = conj(
        tdqm(conj(expanded[i] for i in block), matcher_d) for block in blocks_d
    )
    assert theory_equivalent(mapped_e, mapped_d)


@settings(max_examples=60, deadline=None)
@given(qseed=query_seeds, sseed=spec_seeds, pairs=pair_counts)
def test_matching_is_monotone(qseed, sseed, pairs):
    """M(Q̂', K) = {m ∈ M(Q̂, K) : m ⊆ C(Q̂')} — the prematch's foundation."""
    import random as _random

    from repro.core.matching import match_rule

    query = build_query(qseed)
    spec = random_spec(ATTRS, pairs, seed=sseed)
    constraints = sorted(query.constraints(), key=str)
    rng = _random.Random(qseed ^ sseed)
    subset = [c for c in constraints if rng.random() < 0.6]

    direct = []
    for r in spec.rules:
        direct.extend(m.constraints for m in match_rule(r, subset))

    matcher = spec.matcher()
    matcher.potential(constraints)
    filtered = [m.constraints for m in matcher.matchings(subset)]
    assert sorted(direct, key=str) == sorted(filtered, key=str)


@settings(max_examples=40, deadline=None)
@given(qseed=st.integers(min_value=0, max_value=500))
def test_mediated_equals_direct_on_random_books(qseed):
    """Eq. 1 ≡ Eq. 2 on randomized bookstore queries (subsumption + filter)."""
    from repro.mediator import bookstore_mediator
    from repro.workloads.datasets import random_books

    rng = random.Random(qseed)
    lasts = ["Clancy", "Klancy", "Smith", "Chang"]
    firsts = ["Tom", "John", "Kevin"]
    parts = []
    if rng.random() < 0.8:
        parts.append(C("ln", "=", rng.choice(lasts)))
    if rng.random() < 0.6:
        parts.append(C("fn", "=", rng.choice(firsts)))
    if rng.random() < 0.5:
        parts.append(C("pyear", "=", rng.randint(1995, 1998)))
    if rng.random() < 0.4:
        parts.append(C("pmonth", "=", rng.randint(1, 12)))
    if not parts:
        parts.append(C("ln", "=", "Smith"))
    query = conj(parts) if rng.random() < 0.7 else disj(parts)

    med = bookstore_mediator("amazon", rows=random_books(40, seed=qseed % 5))
    assert med.check_equivalence(query)


@settings(max_examples=100, deadline=None)
@given(qseed=query_seeds)
def test_json_round_trip(qseed):
    """The wire format is loss-free on random query trees."""
    from repro.core.json_io import dumps, loads

    query = build_query(qseed)
    assert loads(dumps(query)) == query


@settings(max_examples=150, deadline=None)
@given(text=st.text(max_size=60))
def test_parser_never_crashes(text):
    """Arbitrary input either parses or raises ParseError — nothing else."""
    from repro.core.errors import ParseError

    try:
        parse_query(text)
    except ParseError:
        pass
