"""Tests for the federation-mode ``repro audit`` command (and SARIF output)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SEEDED = str(FIXTURES / "vf_seeded.json")


class TestLegacyMode:
    """spec + query positionals keep their original per-spec behavior."""

    def test_covered_query_exits_zero(self, capsys):
        assert main(["audit", "K_Amazon", '[ln = "x"]']) == 0
        assert "100%" in capsys.readouterr().out

    def test_uncovered_query_exits_one(self, capsys):
        assert main(["audit", "K_Amazon", "[shoe-size = 9]"]) == 1
        assert "UNCOVERED" in capsys.readouterr().out


class TestFederationMode:
    def test_default_audits_all_builtins_clean(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        for name in ("bookstore", "faculty", "map", "realty"):
            assert f"{name}:" in out
        assert "0 error" in out

    def test_named_federation(self, capsys):
        assert main(["audit", "bookstore"]) == 0
        out = capsys.readouterr().out
        assert "bookstore:" in out
        assert "faculty:" not in out

    def test_unknown_federation(self, capsys):
        assert main(["audit", "atlantis"]) == 2
        assert "unknown federation" in capsys.readouterr().err

    def test_seeded_federation_fails_on_errors(self, capsys):
        assert main(["audit", "--federation-file", SEEDED]) == 1
        out = capsys.readouterr().out
        for code in ("VF001", "VF002", "VF006", "VF007"):
            assert code in out

    def test_fail_on_threshold(self, capsys):
        # VF006/VF007 are warnings; the builtin federations carry none.
        assert main(["audit", "bookstore", "--fail-on", "warning"]) == 0
        capsys.readouterr()
        assert (
            main(["audit", "--federation-file", SEEDED, "--fail-on", "never"])
            == 2
        )

    def test_code_filter_scopes_the_run(self, capsys):
        code = main(
            ["audit", "--federation-file", SEEDED, "--code", "VF007"]
        )
        assert code == 0  # VF007 is a warning; default --fail-on error
        out = capsys.readouterr().out
        assert "VF007" in out
        assert "VF001" not in out

    def test_severity_hides_lower_findings(self, capsys):
        main(["audit", "--federation-file", SEEDED, "--severity", "error"])
        out = capsys.readouterr().out
        assert "VF001" in out
        assert "VF007" not in out

    def test_no_consolidate_drops_vf007(self, capsys):
        main(["audit", "--federation-file", SEEDED, "--no-consolidate"])
        assert "VF007" not in capsys.readouterr().out

    def test_json_payload(self, capsys):
        assert main(["audit", "faculty", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["federation"] == "faculty"
        assert payload["ok"] is True
        assert payload["stats"]["audit.sources"] == 2

    def test_verbose_renders_coverage_matrix(self, capsys):
        main(["audit", "--federation-file", SEEDED, "-v"])
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "uncovered" in out


class TestSarifOutput:
    def test_audit_sarif_shape_and_locations(self, capsys):
        main(["audit", "--federation-file", SEEDED, "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-audit"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(set(rule_ids))
        assert "VF001" in rule_ids and "VF007" in rule_ids
        levels = {r["level"] for r in run["results"]}
        assert "error" in levels
        # Results are deterministically ordered by the diagnostic key.
        ids = [r["ruleId"] for r in run["results"]]
        assert ids == sorted(ids)
        # Loading from a file yields physical locations with rule lines.
        physical = [
            r["locations"][0]["physicalLocation"]
            for r in run["results"]
            if "physicalLocation" in r["locations"][0]
            and r["properties"]["rule"]
        ]
        assert physical
        for location in physical:
            assert location["artifactLocation"]["uri"] == SEEDED
            assert location["region"]["startLine"] >= 1

    def test_lint_sarif_shape(self, capsys):
        assert main(["lint", "all", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "vocablint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["VM010"]
        assert all(r["level"] == "note" for r in run["results"])
        for result in run["results"]:
            assert result["locations"][0]["logicalLocations"][0][
                "fullyQualifiedName"
            ].count(":")

    def test_lint_sarif_with_spec_file_locations(self, capsys):
        fixture = str(FIXTURES / "vm_unsound.json")
        main(["lint", "-f", fixture, "all", "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert results
        located = [
            r for r in results
            if "physicalLocation" in r["locations"][0]
        ]
        assert located
        assert all(
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            == fixture
            for r in located
        )

    def test_lint_json_alias_still_works(self, capsys):
        assert main(["lint", "K_Amazon", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == "K_Amazon"
