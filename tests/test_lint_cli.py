"""Tests for the ``repro lint`` command."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestLintCli:
    def test_builtins_all_clean(self, capsys):
        code = main(["lint", "all"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("K_Amazon", "K_Clbooks", "K1", "K2", "K_map", "K_realty"):
            assert f"{name}:" in out
        assert "0 error" in out

    def test_single_spec(self, capsys):
        assert main(["lint", "K_Clbooks"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_comma_separated_specs(self, capsys):
        assert main(["lint", "K1,K2"]) == 0
        out = capsys.readouterr().out
        assert "K1:" in out and "K2:" in out

    def test_unknown_spec(self, capsys):
        assert main(["lint", "K_nope"]) == 2
        assert "unknown specification" in capsys.readouterr().err

    def test_fail_on_threshold(self, capsys):
        # Builtins carry VM010 infos: failing at info flips the exit code.
        assert main(["lint", "K_Amazon", "--fail-on", "info"]) == 1
        capsys.readouterr()
        assert main(["lint", "K_Amazon", "--fail-on", "error"]) == 0

    def test_bad_severity_value(self, capsys):
        assert main(["lint", "K_Amazon", "--severity", "fatal"]) == 2
        assert "unknown severity" in capsys.readouterr().err

    def test_spec_file_with_errors_fails(self, capsys):
        code = main(["lint", "-f", str(FIXTURES / "vm_unsound.json"), "all"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VM003" in out and "VM004" in out

    def test_severity_filter_hides_infos(self, capsys):
        assert main(["lint", "K_Amazon", "--severity", "warning"]) == 0
        assert "VM010" not in capsys.readouterr().out

    def test_code_filter(self, capsys):
        code = main(
            [
                "lint",
                "-f",
                str(FIXTURES / "vm_unsound.json"),
                "all",
                "--code",
                "VM004",
            ]
        )
        assert code == 0  # VM003 filtered out, only the warning remains
        out = capsys.readouterr().out
        assert "VM004" in out and "VM003" not in out

    def test_json_output(self, capsys):
        assert main(["lint", "K_Amazon", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == "K_Amazon"
        assert payload["ok"] is True
        assert all(d["code"] == "VM010" for d in payload["diagnostics"])

    def test_json_multiple_specs_is_a_list(self, capsys):
        assert main(["lint", "K1,K2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [report["spec"] for report in payload] == ["K1", "K2"]

    def test_vocab_enables_reference_checks(self, capsys):
        code = main(
            [
                "lint",
                "-f",
                str(FIXTURES / "vm_vocab_spec.json"),
                "all",
                "--vocab",
                str(FIXTURES / "vm_vocab.json"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VM001" in out and "VM002" in out and "VM009" in out

    def test_capability_enables_expressibility(self, capsys):
        code = main(
            [
                "lint",
                "-f",
                str(FIXTURES / "vm_inexpressible.json"),
                "all",
                "--capability",
                str(FIXTURES / "vm_capability.json"),
            ]
        )
        assert code == 1
        assert "VM012" in capsys.readouterr().out

    def test_verbose_prints_details(self, capsys):
        assert main(["lint", "K_Amazon", "-v"]) == 0
        assert "attributes: fn, ln" in capsys.readouterr().out
