"""repro.registry: versioned publish/rollback and the change watcher.

The contracts under test:

* Publishing assigns monotonically increasing versions, keyed by the
  spec's content digest — republishing the active payload is an
  idempotent no-op, never a new version.
* The lint gate rejects payloads whose diagnostics reach the threshold,
  and the registry is left untouched by a rejected publish.
* Rollback is a non-destructive pointer move: every version's payload
  file survives, and rolling forward again needs no re-publish.
* The on-disk layout is crash-safe by construction: payload files land
  before the index pointer, and both are written via atomic rename.
* :class:`RegistryWatcher` fires exactly once per digest change, filters
  by name, and survives callback failures.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.registry import PublishRejected, RegistryError, SpecRegistry, SpecVersion
from repro.registry.watch import RegistryWatcher

V1 = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author-word", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "v1: ln -> author-word",
        },
        {
            "name": "V2",
            "match": [{"attr": "publisher", "op": "=", "bind": "N"}],
            "where": [{"cond": "value_is", "vars": ["N"]}],
            "emit": {"attr": "publisher", "op": "=", "value": "$N"},
            "exact": True,
            "doc": "v1: publisher rename",
        },
    ],
}

V2 = {
    "name": "K_Amazon",
    "target": "Amazon",
    "rules": [
        {
            "name": "V1",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "v2: ln -> author",
        }
    ],
}


class TestPublish:
    def test_first_publish_is_version_one_and_active(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        version = registry.publish(V1)
        assert isinstance(version, SpecVersion)
        assert (version.name, version.version, version.active) == ("K_Amazon", 1, True)
        assert registry.active_version("K_Amazon").version == 1
        assert registry.names() == ["K_Amazon"]

    def test_publish_assigns_increasing_versions(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        assert registry.publish(V1).version == 1
        assert registry.publish(V2).version == 2
        assert registry.active_version("K_Amazon").version == 2

    def test_republishing_active_payload_is_idempotent(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        first = registry.publish(V1)
        again = registry.publish(copy.deepcopy(V1))
        assert again.version == first.version
        assert len(registry.history("K_Amazon")) == 1

    def test_payload_round_trips_bit_identically(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        assert registry.load_raw("K_Amazon") == V1
        # And the file itself is the canonical JSON of the payload.
        version = registry.history("K_Amazon")[0]
        from pathlib import Path

        assert json.loads(Path(version.path).read_text(encoding="utf-8")) == V1

    def test_load_builds_a_runnable_specification(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        spec = registry.load("K_Amazon")
        assert spec.name == "K_Amazon"
        assert len(spec.rules) == 2

    def test_state_maps_names_to_active_digests(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        v = registry.publish(V1)
        assert registry.state() == {"K_Amazon": v.digest}

    def test_two_registries_share_the_directory(self, tmp_path):
        SpecRegistry(tmp_path).publish(V1)
        assert SpecRegistry(tmp_path).active_version("K_Amazon").version == 1

    def test_rejects_unsafe_spec_names(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        with pytest.raises(RegistryError):
            registry.publish({**V1, "name": "../escape"})

    def test_rejects_foreign_index_file(self, tmp_path):
        (tmp_path / "registry.json").write_text(
            json.dumps({"kind": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(RegistryError, match="not a"):
            SpecRegistry(tmp_path).names()


#: A rule that emits the negation of its own match: the linter confirms
#: the soundness violation (VM003, error severity) deterministically.
UNSOUND = {
    "name": "K_Bad",
    "target": "T",
    "rules": [
        {
            "name": "A",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["L"]}],
            "emit": {"not": {"attr": "ln", "op": "=", "value": "$L"}},
            "exact": True,
            "doc": "emits the negation of its own match",
        }
    ],
}

#: A rule whose condition references a binding the match never creates:
#: every sampled head binding raises, a warning-severity finding (VM011).
CRASHY = {
    "name": "K_Crashy",
    "target": "T",
    "rules": [
        {
            "name": "A",
            "match": [{"attr": "ln", "op": "=", "bind": "L"}],
            "where": [{"cond": "value_is", "vars": ["NOPE"]}],
            "emit": {"attr": "author", "op": "=", "value": "$L"},
            "exact": True,
            "doc": "condition uses an unbound variable",
        }
    ],
}


class TestLintGate:
    def test_gate_rejects_at_threshold_and_leaves_registry_untouched(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        with pytest.raises(PublishRejected) as excinfo:
            registry.publish(UNSOUND, fail_on="error")
        assert any(d.code == "VM003" for d in excinfo.value.diagnostics)
        assert registry.names() == []

    def test_warning_threshold_is_stricter(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        # The crashy rule only warns (VM011): passes the default error
        # gate but is rejected once the operator tightens to warnings.
        assert registry.publish(CRASHY, fail_on="error").version == 1
        with pytest.raises(PublishRejected):
            SpecRegistry(tmp_path / "strict").publish(CRASHY, fail_on="warning")

    def test_no_gate_bypasses_the_linter(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        version = registry.publish(UNSOUND, gate=False)
        assert version.version == 1


class TestRollback:
    def test_rollback_defaults_to_previous_version(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        registry.publish(V2)
        version = registry.rollback("K_Amazon")
        assert version.version == 1
        assert registry.active_version("K_Amazon").version == 1
        assert registry.load_raw("K_Amazon") == V1

    def test_rollback_is_non_destructive(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        registry.publish(V2)
        registry.rollback("K_Amazon")
        history = registry.history("K_Amazon")
        assert [v.version for v in history] == [1, 2]
        assert [v.active for v in history] == [True, False]
        # Roll forward again without republishing.
        assert registry.rollback("K_Amazon", to_version=2).version == 2

    def test_rollback_without_older_version_fails(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        with pytest.raises(RegistryError, match="no version before"):
            registry.rollback("K_Amazon")

    def test_rollback_unknown_name_fails(self, tmp_path):
        with pytest.raises(RegistryError, match="no specification"):
            SpecRegistry(tmp_path).rollback("ghost")

    def test_publish_after_rollback_continues_version_numbers(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        registry.publish(V2)
        registry.rollback("K_Amazon")
        v3 = copy.deepcopy(V2)
        v3["rules"][0]["doc"] = "v3: ln -> author, republished"
        assert registry.publish(v3).version == 3


class TestWatcher:
    def test_initial_fire_applies_current_state(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        seen: list[tuple[str, dict]] = []
        watcher = RegistryWatcher(registry, lambda n, p: seen.append((n, p)))
        assert watcher.poll_once() == 1
        assert seen == [("K_Amazon", V1)]

    def test_fires_once_per_digest_change(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        seen: list[dict] = []
        watcher = RegistryWatcher(registry, lambda n, p: seen.append(p))
        watcher.poll_once()
        assert watcher.poll_once() == 0  # no change, no callback
        registry.publish(V2)
        assert watcher.poll_once() == 1
        registry.rollback("K_Amazon")
        assert watcher.poll_once() == 1
        assert seen == [V1, V2, V1]

    def test_name_filter(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        seen: list[str] = []
        watcher = RegistryWatcher(
            registry, lambda n, p: seen.append(n), names={"other"}
        )
        assert watcher.poll_once() == 0
        assert seen == []

    def test_callback_errors_do_not_stop_the_watch(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        errors: list[str] = []

        def explode(name, payload):
            raise RuntimeError("boom")

        watcher = RegistryWatcher(
            registry, explode, on_error=lambda n, e: errors.append(f"{n}: {e}")
        )
        assert watcher.poll_once() == 0
        assert errors == ["K_Amazon: boom"]
        # The failing digest is marked seen — no retry storm...
        assert watcher.poll_once() == 0
        # ...but a new publish fires again.
        registry.publish(V2)
        watcher.callback = lambda n, p: None
        assert watcher.poll_once() == 1

    def test_thread_lifecycle(self, tmp_path):
        registry = SpecRegistry(tmp_path)
        registry.publish(V1)
        seen: list[str] = []
        watcher = RegistryWatcher(
            registry, lambda n, p: seen.append(n), interval=0.05
        ).start()
        try:
            deadline = 100
            while not seen and deadline:
                deadline -= 1
                import time

                time.sleep(0.02)
            assert seen
        finally:
            watcher.stop()

    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            RegistryWatcher(SpecRegistry(tmp_path), lambda n, p: None, interval=0)
