"""One assertion per worked example of the paper, in order.

This file is the executable version of the paper's narrative: each test
reproduces one numbered example's claimed outcome, referencing the section
it comes from.  The figure-level artifacts (Figure 2 rows, Figure 7
annotations, Figure 12 partitions) live in the benches and in the focused
unit-test files; this file keeps the end-to-end story auditable in one
place.
"""

from repro.core.ast import TRUE, C
from repro.core.dnf_mapper import dnf_map
from repro.core.filters import build_filter
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.core.psafe import psafe_partition
from repro.core.safety import is_safe_base
from repro.core.scm import scm
from repro.core.subsume import prop_equivalent
from repro.core.tdqm import tdqm, tdqm_translate
from repro.mediator import bookstore_mediator, faculty_mediator
from repro.rules import K1, K2, K_AMAZON, K_CLBOOKS
from repro.workloads.paper_queries import (
    example1_query,
    example2_query,
    example3_query,
    example13_qa,
    example13_qb,
    example13_spec,
    figure2_q1,
    figure2_q2,
    qbook,
)


def test_example1_amazon_translation():
    """S(Q) = [author = "Clancy, Tom"] at Amazon."""
    assert to_text(tdqm(example1_query(), K_AMAZON)) == '[author = "Clancy, Tom"]'


def test_example1_clbooks_relaxation_and_filter():
    """Q_c = [author contains Tom] ∧ [author contains Clancy]; F = Q."""
    plan = build_filter(example1_query(), {"Clbooks": K_CLBOOKS})
    assert to_text(plan.mappings["Clbooks"]) == (
        "[author contains tom] and [author contains clancy]"
    )
    assert plan.filter == plan.query


def test_example1_false_positives_filtered_end_to_end():
    """'Clancy, Joe Tom' comes back from Clbooks and is filtered out."""
    med = bookstore_mediator("clbooks")
    q = example1_query()
    answer = med.answer_mediated(q)
    assert med.check_equivalence(q)
    assert len(answer.rows) < len(
        med.sources["Clbooks"].select_rows(
            "catalog", answer.plan.mappings["Clbooks"]
        )
    )


def test_example2_dependencies_respected():
    """Qb (minimal) is produced, not the suboptimal Qa."""
    mapping = tdqm(example2_query(), K_AMAZON)
    assert to_text(mapping) == (
        '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
    )


def test_example3_per_source_mappings_and_filter():
    """S1 = x1 ∧ x2 ∧ x3 (relaxed near), S2 = [prof.dept = 230], F = c."""
    plan = build_filter(example3_query(), {"T1": K1, "T2": K2})
    t1 = to_text(plan.mappings["T1"])
    assert "fac.aubib.name = pub.paper.au" in t1  # x1: joint join mapping
    assert "fac.aubib.bib contains data (and) mining" in t1  # x2 ∧ x3
    assert to_text(plan.mappings["T2"]) == "[fac.prof.dept = 230]"
    assert to_text(plan.filter) == "[fac.bib contains data (near) mining]"


def test_example3_end_to_end():
    med = faculty_mediator()
    assert med.check_equivalence(example3_query())


def test_example4_scm_outputs_s1():
    """SCM(Q̂1, K_Amazon) = S1 (Figure 2)."""
    s1 = scm(figure2_q1(), K_AMAZON)
    assert to_text(s1) == (
        '[author = "Smith"] and [ti-word contains java (and) jdk] and '
        "[pdate during May/97] and "
        "([ti-word contains www] or [subject-word contains www])"
    )


def test_figure2_q2_outputs_s2():
    s2 = scm(figure2_q2(), K_AMAZON)
    assert to_text(s2) == (
        '[publisher = "oreilly"] and [title starts "jdk for java"] and '
        '[subject = "programming"] and [isbn = "081815181Y"]'
    )


def test_example5_dnf_route_gives_same_minimal_mapping():
    mapping = dnf_map(example2_query(), K_AMAZON)
    assert to_text(mapping) == (
        '[author = "Clancy, Tom"] or [author = "Klancy, Tom"]'
    )


def test_example6_tdqm_structure_and_compactness():
    """TDQM rewrites only {Č2, Č3} and beats the DNF mapping's size."""
    result = tdqm_translate(qbook(), K_AMAZON)
    assert result.stats.blocks_rewritten == 1
    dnf_mapping = dnf_map(qbook(), K_AMAZON)
    assert result.mapping.node_count() < dnf_mapping.node_count()
    assert prop_equivalent(result.mapping, dnf_mapping)


def test_example7_cross_matching_unsafe():
    conjuncts = [
        frozenset({C("ln", "=", "Smith"), C("fn", "=", "John")}),
        frozenset({C("pyear", "=", 1997)}),
        frozenset({C("pmonth", "=", 5)}),
    ]
    assert not is_safe_base(conjuncts, K_AMAZON.matcher())


def test_example12_qbook_partition():
    blocks = psafe_partition(list(qbook().children), K_AMAZON.matcher())
    assert blocks == [[0], [1, 2]]


def test_example13_14_partitions():
    spec = example13_spec()
    assert psafe_partition(list(example13_qa().children), spec.matcher()) == [
        [0, 1],
        [2],
    ]
    assert psafe_partition(list(example13_qb().children), spec.matcher()) == [
        [0, 1, 2],
    ]


def test_theorem1_scm_equals_tdqm_on_simple_conjunctions():
    for q in (figure2_q1(), figure2_q2()):
        assert prop_equivalent(scm(q, K_AMAZON), tdqm(q, K_AMAZON))


def test_fn_alone_is_true_at_amazon():
    """Example 2's S(f3) = True: no Amazon constraint for fn alone."""
    assert tdqm(C("fn", "=", "Tom"), K_AMAZON) is TRUE
