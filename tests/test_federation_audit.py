"""Tests for the federation-wide static analyzer (repro.analysis.federation)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    FEDERATION_CATALOG,
    Federation,
    FederationSource,
    Severity,
    audit_federation,
    builtin_federations,
    catalog_entry,
    federation_from_dict,
    federation_from_mediator,
    load_federation,
)
from repro.mediator.builtin import bookstore_federation
from repro.rules import builtin_specifications

FIXTURES = Path(__file__).parent / "fixtures"

#: Every known-bad fixture and the VF code it was built to fire.
FIXTURE_CODES = [
    ("vf_gap.json", "VF001"),
    ("vf_contradict.json", "VF002"),
    ("vf_drift.json", "VF003"),
    ("vf_divergent.json", "VF004"),
    ("vf_dead.json", "VF005"),
    ("vf_shadow.json", "VF006"),
    ("vf_dup.json", "VF007"),
]


class TestCatalog:
    def test_every_vf_code_registered(self):
        assert sorted(FEDERATION_CATALOG) == [
            "VF001", "VF002", "VF003", "VF004", "VF005", "VF006", "VF007",
        ]
        for code, info in FEDERATION_CATALOG.items():
            assert catalog_entry(code) is info
            assert info.title and info.summary

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError, match="unknown diagnostic code"):
            catalog_entry("VF999")


class TestBuiltinFederationsClean:
    """The acceptance bar: no false positives on the shipped federations."""

    @pytest.mark.parametrize("name", ["bookstore", "faculty", "map", "realty"])
    def test_builtin_federation_has_no_warnings(self, name):
        report = audit_federation(builtin_federations()[name])
        worst = report.max_severity
        assert worst is None or worst <= Severity.INFO, report.render(
            verbose=True
        )
        assert not report.proposals

    def test_builtin_names(self):
        assert sorted(builtin_federations()) == [
            "bookstore", "faculty", "map", "realty",
        ]


class TestKnownBadFixtures:
    @pytest.mark.parametrize("filename,code", FIXTURE_CODES)
    def test_fixture_fires_its_code(self, filename, code):
        report = audit_federation(load_federation(str(FIXTURES / filename)))
        codes = {d.code for d in report.diagnostics}
        assert code in codes, (
            f"{filename} should fire {code}; got {sorted(codes)}"
        )

    def test_seeded_federation_reports_every_planted_defect(self):
        """The 3-source acceptance federation: all four defects, no extras."""
        report = audit_federation(
            load_federation(str(FIXTURES / "vf_seeded.json"))
        )
        vf_codes = {d.code for d in report.diagnostics if d.code.startswith("VF")}
        assert vf_codes == {"VF001", "VF002", "VF006", "VF007"}
        # The coverage gap names the right constraint.
        (gap,) = [d for d in report.diagnostics if d.code == "VF001"]
        assert "gap" in gap.message
        # The contradiction involves the deviant source.
        contradictions = [d for d in report.diagnostics if d.code == "VF002"]
        assert contradictions
        assert all("S3" in d.message for d in contradictions)
        # The merge proposal drops one of the planted duplicates.
        assert len(report.proposals) == 1
        proposal = report.proposals[0]
        assert proposal.verified
        assert proposal.kind == "duplicate"
        assert {proposal.keep, proposal.drop} == {"R_dup_a", "R_dup_b"}
        # Shadowing is mutual: both same-target g1 rules are flagged.
        shadowed = {d.rule for d in report.diagnostics if d.code == "VF006"}
        assert shadowed == {"R_g1", "R_g1_b"}

    def test_dead_rule_names_capability(self):
        report = audit_federation(load_federation(str(FIXTURES / "vf_dead.json")))
        (dead,) = [d for d in report.diagnostics if d.code == "VF005"]
        assert dead.rule == "R_t"
        assert dead.spec == "K_dead_s1"


class TestReportContainer:
    def _seeded(self):
        return audit_federation(load_federation(str(FIXTURES / "vf_seeded.json")))

    def test_diagnostics_deterministically_ordered(self):
        report = self._seeded()
        codes = [d.code for d in report.diagnostics]
        assert codes == sorted(codes)

    def test_filter_by_severity_and_code(self):
        report = self._seeded()
        errors = report.filter(severity=Severity.ERROR)
        assert errors.diagnostics
        assert all(d.severity >= Severity.ERROR for d in errors.diagnostics)
        only_gap = report.filter(codes={"VF001"})
        assert {d.code for d in only_gap.diagnostics} == {"VF001"}

    def test_to_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(self._seeded().to_dict()))
        assert payload["federation"] == "fed_seeded"
        assert payload["ok"] is False
        assert payload["summary"]["error"] >= 2
        assert payload["coverage"]["sources"] == ["S1", "S2", "S3"]
        assert payload["proposals"][0]["kind"] == "duplicate"
        assert payload["stats"]["audit.sources"] == 3

    def test_render_shows_matrix_when_verbose(self):
        report = self._seeded()
        assert "coverage" in report.render(verbose=True)
        assert "VF001" in report.render()

    def test_coverage_matrix_statuses(self):
        matrix = self._seeded().matrix
        row = dict(zip(matrix.terms, matrix.cells))
        gap_row = row['[gap = "x"]']
        assert set(gap_row) == {"uncovered"}
        g1_row = row['[g1 = "v1"]']
        assert "exact" in g1_row

    def test_stats_track_work(self):
        stats = dict(self._seeded().stats)
        assert stats["audit.sources"] == 3
        assert stats["audit.probe_constraints"] >= 3
        assert stats["audit.matchings"] >= 3


class TestLoaders:
    def test_from_dict_requires_name_and_sources(self):
        with pytest.raises(ValueError, match="needs a 'federation' name"):
            federation_from_dict({"sources": []})
        with pytest.raises(ValueError, match="declares no sources"):
            federation_from_dict({"federation": "empty"})

    def test_from_mediator_mirrors_specs_and_capabilities(self):
        federation = federation_from_mediator("books", bookstore_federation())
        assert isinstance(federation, Federation)
        assert {s.spec.name for s in federation.sources} == {
            "K_Amazon", "K_Clbooks",
        }
        assert all(s.capability is not None for s in federation.sources)

    def test_source_lookup(self):
        spec = builtin_specifications()["K_Amazon"]
        federation = Federation(
            name="solo", sources=(FederationSource(name="A", spec=spec),)
        )
        assert federation.source("A").spec is spec
        with pytest.raises(KeyError):
            federation.source("missing")


class TestAuditKnobs:
    def test_no_lint_skips_vm_codes(self):
        federation = load_federation(str(FIXTURES / "vf_dup.json"))
        report = audit_federation(federation, lint_sources=False)
        assert not report.source_reports
        assert all(d.code.startswith("VF") for d in report.diagnostics)
        assert len(report.proposals) == 1  # consolidation still runs

    def test_no_consolidate_skips_proposals(self):
        federation = load_federation(str(FIXTURES / "vf_dup.json"))
        report = audit_federation(federation, consolidate=False)
        assert not report.proposals
        assert "VF007" not in {d.code for d in report.diagnostics}
