"""Unit tests for the query AST (repro.core.ast)."""

import pytest

from repro.core.ast import (
    FALSE,
    TRUE,
    And,
    AttrRef,
    C,
    Constraint,
    Or,
    attr,
    conj,
    disj,
)


class TestAttrRef:
    def test_bare_attribute(self):
        ref = attr("ti")
        assert ref.path == ("ti",)
        assert ref.attr == "ti"
        assert ref.view is None
        assert ref.index is None
        assert str(ref) == "ti"

    def test_view_qualified(self):
        ref = attr("fac.ln")
        assert ref.view == "fac"
        assert ref.attr == "ln"
        assert str(ref) == "fac.ln"

    def test_indexed_instance(self):
        ref = attr("fac[2].ln")
        assert ref.index == 2
        assert ref.view == "fac"
        assert str(ref) == "fac[2].ln"

    def test_deep_qualification(self):
        ref = attr("fac.aubib.bib")
        assert ref.qualifier == ("fac", "aubib")
        assert ref.attr == "bib"

    def test_unqualified_strips_everything(self):
        assert attr("fac[1].ln").unqualified() == attr("ln")

    def test_with_index(self):
        assert attr("fac.ln").with_index(3) == attr("fac[3].ln")

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            AttrRef(())

    def test_bad_component_rejected(self):
        with pytest.raises(ValueError):
            AttrRef(("fac", ""))

    def test_hashable_and_equal(self):
        assert attr("fac.ln") == attr("fac.ln")
        assert hash(attr("fac.ln")) == hash(attr("fac.ln"))
        assert attr("fac[1].ln") != attr("fac[2].ln")


class TestConstraint:
    def test_selection(self):
        c = C("ln", "=", "Clancy")
        assert c.is_selection and not c.is_join
        assert str(c) == '[ln = "Clancy"]'

    def test_join(self):
        c = Constraint(attr("fac.ln"), "=", attr("pub.ln"))
        assert c.is_join
        assert str(c) == "[fac.ln = pub.ln]"

    def test_rejects_non_attr_lhs(self):
        with pytest.raises(TypeError):
            Constraint("ln", "=", "x")  # type: ignore[arg-type]

    def test_rejects_unhashable_rhs(self):
        with pytest.raises(TypeError):
            C("ln", "=", ["list", "value"])

    def test_node_count_and_depth(self):
        c = C("ln", "=", "x")
        assert c.node_count() == 1
        assert c.depth() == 1

    def test_constraints_returns_self(self):
        c = C("ln", "=", "x")
        assert c.constraints() == frozenset([c])


class TestJunctions:
    def test_and_requires_two_children(self):
        with pytest.raises(ValueError):
            And([C("a", "=", 1)])

    def test_no_nested_same_type(self):
        inner = And([C("a", "=", 1), C("b", "=", 2)])
        with pytest.raises(ValueError):
            And([inner, C("c", "=", 3)])

    def test_alternation_allowed(self):
        inner = Or([C("a", "=", 1), C("b", "=", 2)])
        node = And([inner, C("c", "=", 3)])
        assert node.node_count() == 5
        assert node.depth() == 3

    def test_immutability(self):
        node = And([C("a", "=", 1), C("b", "=", 2)])
        with pytest.raises(AttributeError):
            node.children = ()

    def test_equality_and_hash(self):
        a = And([C("a", "=", 1), C("b", "=", 2)])
        b = And([C("a", "=", 1), C("b", "=", 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Or([C("a", "=", 1), C("b", "=", 2)])

    def test_iter_constraints_preserves_repeats(self):
        c = C("a", "=", 1)
        node = Or([And([c, C("b", "=", 2)]), c])
        assert list(node.iter_constraints()).count(c) == 2
        assert len(node.constraints()) == 2


class TestSmartConstructors:
    def test_conj_flattens(self):
        q = conj([conj([C("a", "=", 1), C("b", "=", 2)]), C("c", "=", 3)])
        assert isinstance(q, And)
        assert len(q.children) == 3

    def test_conj_true_identity(self):
        c = C("a", "=", 1)
        assert conj([TRUE, c]) == c
        assert conj([TRUE, TRUE]) is TRUE

    def test_conj_false_absorbs(self):
        assert conj([C("a", "=", 1), FALSE]) is FALSE

    def test_disj_false_identity(self):
        c = C("a", "=", 1)
        assert disj([FALSE, c]) == c
        assert disj([]) is FALSE

    def test_disj_true_absorbs(self):
        assert disj([C("a", "=", 1), TRUE]) is TRUE

    def test_empty_conj_is_true(self):
        assert conj([]) is TRUE

    def test_idempotent_dedup(self):
        c = C("a", "=", 1)
        assert conj([c, c]) == c
        assert disj([c, c]) == c

    def test_single_child_collapses(self):
        c = C("a", "=", 1)
        assert conj([c]) == c
        assert disj([c]) == c

    def test_operator_overloads(self):
        a, b = C("a", "=", 1), C("b", "=", 2)
        assert (a & b) == conj([a, b])
        assert (a | b) == disj([a, b])


class TestBoolConst:
    def test_truthiness(self):
        assert bool(TRUE) and not bool(FALSE)

    def test_str(self):
        assert str(TRUE) == "true"
        assert str(FALSE) == "false"

    def test_no_constraints(self):
        assert TRUE.constraints() == frozenset()
