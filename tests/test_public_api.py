"""The public API surface: every exported name exists and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.rules",
    "repro.engine",
    "repro.mediator",
    "repro.obs",
    "repro.perf",
    "repro.text",
    "repro.workloads",
    "repro.conversions",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__ and module.__doc__.strip(), f"{package} undocumented"


def test_public_callables_are_documented():
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, type):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"undocumented public callables: {undocumented}"


def test_public_classes_are_documented():
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) and not (obj.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"undocumented public classes: {undocumented}"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_cli_module_importable():
    from repro.cli import build_arg_parser

    parser = build_arg_parser()
    assert parser.prog == "repro"
