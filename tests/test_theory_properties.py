"""Property tests: the constraint theory is sound w.r.t. evaluation.

If :func:`constraint_implies` claims ``c1 ⟹ c2``, then every row the
engine accepts for ``c1`` must also satisfy ``c2``; if
:func:`conjunction_satisfiable` says "provably unsatisfiable", no row may
satisfy all constraints; and :func:`simplify_query` must preserve the
selected set exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ast import C, Query, conj, disj
from repro.core.theory import (
    conjunction_satisfiable,
    constraint_implies,
    simplify_query,
)
from repro.core.values import Month, Year
from repro.engine.eval import evaluate_row

ATTRS = ("a", "b")
OPS = ("=", "!=", "<", "<=", ">", ">=")


def random_constraint(rng: random.Random):
    attr_name = rng.choice(ATTRS)
    roll = rng.random()
    if roll < 0.7:
        return C(attr_name, rng.choice(OPS), rng.randint(0, 6))
    if roll < 0.8:
        return C(attr_name, "in", tuple(sorted({rng.randint(0, 6) for _ in range(2)})))
    if roll < 0.9:
        return C(attr_name, "=", rng.choice(["x", "y", "z"]))
    period = Month(1997, rng.randint(1, 3)) if rng.random() < 0.5 else Year(1997)
    return C(attr_name, "during", period)


def random_rows(rng: random.Random) -> list[dict]:
    from repro.core.values import Date

    rows = []
    for a in range(-1, 8):
        for b in ("x", "y", 0, 3, 6):
            rows.append({"a": a, "b": b})
    for month in (1, 2, 3, 7):
        rows.append({"a": Date(1997, month), "b": Date(1996, month)})
    return rows


def _safe_eval(constraint, row) -> bool | None:
    from repro.core.errors import EvaluationError

    try:
        return evaluate_row(constraint, row)
    except EvaluationError:
        return None  # incomparable types for this row: skip


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_constraint_implies_is_sound(seed):
    rng = random.Random(seed)
    c1 = random_constraint(rng)
    c2 = random_constraint(rng)
    if not constraint_implies(c1, c2):
        return
    for row in random_rows(rng):
        v1 = _safe_eval(c1, row)
        v2 = _safe_eval(c2, row)
        if v1 is True:
            assert v2 is True, (str(c1), str(c2), row)


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_unsat_verdicts_are_sound(seed):
    rng = random.Random(seed)
    constraints = [random_constraint(rng) for _ in range(rng.randint(2, 4))]
    if conjunction_satisfiable(constraints):
        return
    for row in random_rows(rng):
        values = [_safe_eval(c, row) for c in constraints]
        assert not all(v is True for v in values), (
            [str(c) for c in constraints],
            row,
        )


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_simplify_preserves_selected_set(seed):
    rng = random.Random(seed)

    def build(depth: int) -> Query:
        if depth >= 2 or rng.random() < 0.4:
            return random_constraint(rng)
        parts = [build(depth + 1) for _ in range(rng.randint(2, 3))]
        return conj(parts) if rng.random() < 0.5 else disj(parts)

    query = build(0)
    simplified = simplify_query(query)
    for row in random_rows(rng):
        original = _eval_query(query, row)
        reduced = _eval_query(simplified, row)
        if original is None or reduced is None:
            continue
        assert original == reduced, (str(query), str(simplified), row)


def _eval_query(query, row) -> bool | None:
    from repro.core.errors import EvaluationError

    try:
        return evaluate_row(query, row)
    except EvaluationError:
        return None
