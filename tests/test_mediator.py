"""End-to-end mediation tests: Eq. 1 ≡ Eq. 2 on every workload."""

import pytest

from repro.core.ast import TRUE
from repro.core.parser import parse_query
from repro.core.printer import to_text
from repro.mediator import bookstore_mediator, faculty_mediator, map_mediator
from repro.workloads.datasets import (
    grid_points,
    random_books,
    random_papers_and_aubib,
    random_profs,
)

BOOK_QUERIES = [
    '[ln = "Clancy"] and [fn = "Tom"]',
    '[ln = "Clancy"]',
    '([ln = "Clancy"] or [ln = "Klancy"]) and [fn = "Tom"]',
    "[pyear = 1997] and [pmonth = 5]",
    "[pyear = 1997]",
    '[publisher = "oreilly"] and [category = "D.3"]',
    "[ti contains java (near) jdk]",
    "[kwd contains www]",
    '([kwd contains www] or ([ln = "Smith"] and [fn = "John"])) and '
    "[pyear = 1997] and ([pmonth = 5] or [pmonth = 6])",
    '[id-no = "081815181Y"]',
    "true",
]


class TestBookstoreAmazon:
    @pytest.mark.parametrize("text", BOOK_QUERIES)
    def test_equivalence(self, amazon_mediator, text):
        assert amazon_mediator.check_equivalence(parse_query(text))

    def test_false_positive_removal(self, amazon_mediator):
        # [ti = T] relaxes to [title starts T]: the source over-returns and
        # the filter must trim; here no longer title shares the prefix so
        # the counts already agree, but the plan must keep the conjunct.
        q = parse_query('[ti = "jdk for java"]')
        answer = amazon_mediator.answer_mediated(q)
        assert answer.plan.filter == q


class TestBookstoreClbooks:
    CLBOOKS_QUERIES = [
        '[ln = "Clancy"] and [fn = "Tom"]',
        '[ln = "Clancy"] or [ln = "Klancy"]',
        "[ti contains java (near) jdk]",
        '[publisher = "oreilly"]',
    ]

    @pytest.mark.parametrize("text", CLBOOKS_QUERIES)
    def test_equivalence(self, clbooks_mediator, text):
        assert clbooks_mediator.check_equivalence(parse_query(text))

    def test_filter_removes_clbooks_false_positives(self, clbooks_mediator):
        # Example 1: the source returns "Clancy, Joe Tom" too; the filter
        # (the original query) drops it.
        q = parse_query('[ln = "Clancy"] and [fn = "Tom"]')
        answer = clbooks_mediator.answer_mediated(q)
        lasts = {
            dict(row[0][2])["ln"] + "/" + dict(row[0][2])["fn"]
            for row in answer.rows
        }
        assert lasts == {"Clancy/Tom"}


FACULTY_QUERIES = [
    "[fac.ln = pub.ln] and [fac.fn = pub.fn] and "
    "[fac.bib contains data (near) mining] and [fac.dept = cs]",
    "[fac.dept = cs]",
    '[fac.ln = "Ullman"]',
    "[fac.bib contains data (and) mining]",
    '[pub.ti = "Mediators for the Web"]',
    '[fac.ln = pub.ln] and [fac.fn = pub.fn]',
    '[fac.dept = cs] or [fac.dept = ee]',
]


class TestFacultyMediator:
    @pytest.mark.parametrize("text", FACULTY_QUERIES)
    def test_equivalence(self, fac_mediator, text):
        assert fac_mediator.check_equivalence(parse_query(text))

    def test_example3_answer(self, fac_mediator):
        q = parse_query(
            "[fac.ln = pub.ln] and [fac.fn = pub.fn] and "
            "[fac.bib contains data (near) mining] and [fac.dept = cs]"
        )
        answer = fac_mediator.answer_mediated(q)
        assert to_text(answer.plan.mappings["T2"]) == "[fac.prof.dept = 230]"
        assert len(answer.rows) == 3  # Ullman, Molina, Han papers

    def test_self_join(self, fac_mediator):
        q = parse_query("[fac[1].ln = fac[2].ln] and [fac[1].dept = cs]")
        assert fac_mediator.check_equivalence(q)


class TestMapMediator:
    MAP_QUERIES = [
        "[x_min = 10] and [x_max = 30] and [y_min = 20] and [y_max = 40]",
        "[x_min = 10] and [x_max = 30]",
        "[x_min = 10] and [y_min = 20]",
        "[x_min = 10]",
        "([x_min = 10] or [x_min = 20]) and [x_max = 40] and [y_min = 0] and [y_max = 50]",
    ]

    @pytest.mark.parametrize("text", MAP_QUERIES)
    def test_equivalence(self, geo_mediator, text):
        assert geo_mediator.check_equivalence(parse_query(text))

    def test_full_rectangle_needs_no_filter(self, geo_mediator):
        q = parse_query(
            "[x_min = 10] and [x_max = 30] and [y_min = 20] and [y_max = 40]"
        )
        assert geo_mediator.answer_mediated(q).plan.filter is TRUE

    def test_lone_bound_runs_as_filter(self, geo_mediator):
        q = parse_query("[x_min = 25]")
        answer = geo_mediator.answer_mediated(q)
        assert answer.plan.mappings["G"] is TRUE
        assert answer.plan.filter == q
        assert geo_mediator.check_equivalence(q)


class TestRandomizedDatasets:
    def test_amazon_on_random_books(self):
        med = bookstore_mediator("amazon", rows=random_books(60, seed=7))
        for text in BOOK_QUERIES:
            assert med.check_equivalence(parse_query(text)), text

    def test_faculty_on_random_data(self):
        papers, aubib = random_papers_and_aubib(8, seed=3)
        profs = random_profs(aubib, seed=4)
        med = faculty_mediator(papers=papers, aubib=aubib, prof=profs)
        for text in FACULTY_QUERIES:
            assert med.check_equivalence(parse_query(text)), text

    def test_map_on_fine_grid(self):
        med = map_mediator(rows=grid_points(step=3, limit=45))
        for text in TestMapMediator.MAP_QUERIES:
            assert med.check_equivalence(parse_query(text)), text
