"""Tests for subsumption checks (repro.core.subsume)."""

from repro.core.ast import FALSE, TRUE, C, conj, disj
from repro.core.subsume import (
    empirical_equivalent,
    empirical_subsumes,
    evaluate_assignment,
    prop_equivalent,
    prop_implies,
)
from repro.engine.eval import evaluate_row

A, B, Cc = C("a", "=", 1), C("b", "=", 1), C("c", "=", 1)


class TestEvaluateAssignment:
    def test_basic(self):
        q = conj([A, disj([B, Cc])])
        assert evaluate_assignment(q, {A: True, B: False, Cc: True})
        assert not evaluate_assignment(q, {A: False, B: True, Cc: True})

    def test_constants(self):
        assert evaluate_assignment(TRUE, {})
        assert not evaluate_assignment(FALSE, {})


class TestPropositional:
    def test_conjunction_implies_conjunct(self):
        assert prop_implies(conj([A, B]), A)
        assert not prop_implies(A, conj([A, B]))

    def test_disjunct_implies_disjunction(self):
        assert prop_implies(A, disj([A, B]))
        assert not prop_implies(disj([A, B]), A)

    def test_distribution_equivalence(self):
        left = conj([disj([A, B]), Cc])
        right = disj([conj([A, Cc]), conj([B, Cc])])
        assert prop_equivalent(left, right)

    def test_absorption(self):
        assert prop_equivalent(disj([A, conj([A, B])]), A)

    def test_true_false(self):
        assert prop_implies(FALSE, A)
        assert prop_implies(A, TRUE)
        assert not prop_equivalent(TRUE, FALSE)

    def test_inequivalent_atoms(self):
        assert not prop_equivalent(A, B)

    def test_large_atom_count_randomized(self):
        # 24 atoms exceeds the exhaustive limit; the sampled check should
        # still accept a tautological implication.
        atoms = [C(f"x{i}", "=", 1) for i in range(24)]
        big = conj(atoms)
        assert prop_implies(big, disj(atoms))


class TestEmpirical:
    ROWS = [{"x": x} for x in range(10)]

    @staticmethod
    def _eval(query, row):
        return evaluate_row(query, row)

    def test_subsumption_over_dataset(self):
        narrow = C("x", "=", 3)
        broad = C("x", ">=", 2)
        assert empirical_subsumes(broad, narrow, self.ROWS, self._eval)
        assert not empirical_subsumes(narrow, broad, self.ROWS, self._eval)

    def test_equivalence_over_dataset(self):
        left = conj([C("x", ">=", 2), C("x", "<=", 4)])
        right = disj([C("x", "=", 2), C("x", "=", 3), C("x", "=", 4)])
        assert empirical_equivalent(left, right, self.ROWS, self._eval)
        assert not empirical_equivalent(left, C("x", "=", 3), self.ROWS, self._eval)
