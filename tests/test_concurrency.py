"""Concurrency regression tests: shared cache, single-flight, tracer handoff.

ISSUE 5's headline bugfixes: the :class:`~repro.perf.TranslationCache`
LRU core is lock-guarded and single-flighted, and a :class:`~repro.obs.Tracer`
records exactly (no lost spans or counter updates) across a thread-pool
fan-out via :func:`repro.obs.bind`.  These tests hammer both from many
threads and assert the bookkeeping is *exact*, not just "did not crash".
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.core.tdqm import tdqm_translate
from repro.mediator import synthetic_federation
from repro.obs import trace as obs
from repro.perf import TranslationCache
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.workloads.generator import chain_query, synthetic_spec, vocabulary

N_THREADS = 8
N_ROUNDS = 40


def _workload(n_queries: int = 12):
    spec = synthetic_spec([], singletons=vocabulary(2 * n_queries), name="K_conc")
    queries = [chain_query(k) for k in range(4, 4 + n_queries)]
    return spec, queries


class TestCacheStress:
    """≥8 threads on one shared cache: stats exact, LRU bounded, results right."""

    def test_shared_cache_exact_bookkeeping(self):
        spec, queries = _workload()
        serial = {i: tdqm_translate(q, spec) for i, q in enumerate(queries)}
        cache = TranslationCache(maxsize=len(queries) // 2)  # force eviction churn
        start = threading.Barrier(N_THREADS)
        results: list[list] = [[] for _ in range(N_THREADS)]

        def worker(tid: int) -> None:
            start.wait()
            for round_ in range(N_ROUNDS):
                i = (tid + round_) % len(queries)
                results[tid].append((i, cache.tdqm(queries[i], spec)))

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        stats = cache.stats
        lookups = N_THREADS * N_ROUNDS
        assert stats.hits + stats.misses == lookups  # no lost/torn updates
        assert stats.size <= cache.maxsize
        assert len(cache) <= cache.maxsize
        assert stats.misses >= 1 and stats.hits >= 1
        # Every concurrent translation is bit-identical to the serial run.
        for per_thread in results:
            assert len(per_thread) == N_ROUNDS  # every request got a response
            for i, result in per_thread:
                assert result.mapping == serial[i].mapping
                assert result.exact == serial[i].exact

    def test_concurrent_invalidate_and_lookup(self):
        spec, queries = _workload(8)
        cache = TranslationCache(maxsize=64)
        stop = threading.Event()

        def invalidator() -> None:
            while not stop.is_set():
                cache.invalidate(spec)
                cache.clear()

        chaos = threading.Thread(target=invalidator)
        chaos.start()
        try:
            with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
                list(
                    pool.map(
                        lambda tid: [
                            cache.tdqm(queries[(tid + r) % len(queries)], spec)
                            for r in range(N_ROUNDS)
                        ],
                        range(N_THREADS),
                    )
                )
        finally:
            stop.set()
            chaos.join()
        stats = cache.stats
        assert stats.hits + stats.misses == N_THREADS * N_ROUNDS
        assert stats.size <= cache.maxsize


class TestSingleFlight:
    """N concurrent misses on one fingerprint run one translation, not N."""

    def _stampede(self, n_threads: int) -> None:
        spec, queries = _workload(2)
        cache = TranslationCache()
        release = threading.Event()
        calls: list[int] = []
        real = tdqm_translate

        def slow_translate(query, spec_):
            calls.append(1)
            release.wait(timeout=10.0)
            return real(query, spec_)

        out: list[object] = [None] * n_threads

        def requester(tid: int) -> None:
            out[tid] = cache.tdqm(queries[0], spec)

        with mock.patch("repro.core.tdqm.tdqm_translate", side_effect=slow_translate):
            threads = [
                threading.Thread(target=requester, args=(tid,))
                for tid in range(n_threads)
            ]
            for t in threads:
                t.start()
            # Followers count a hit *before* waiting on the flight, so the
            # stats tell us deterministically when everyone has joined.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                s = cache.stats
                if s.hits + s.misses >= n_threads:
                    break
                time.sleep(0.001)
            release.set()
            for t in threads:
                t.join(timeout=10.0)

        assert sum(calls) == 1  # one leader translated; N-1 followers waited
        first = out[0]
        assert all(result is first for result in out)  # identical object
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == n_threads - 1
        assert stats.coalesced == n_threads - 1

    def test_stampede_coalesces(self):
        self._stampede(N_THREADS)

    @settings(max_examples=8, deadline=None)
    @given(n_threads=st.integers(min_value=2, max_value=12))
    def test_property_identical_object_for_all_waiters(self, n_threads: int):
        self._stampede(n_threads)

    def test_leader_failure_propagates_and_is_not_cached(self):
        spec, queries = _workload(2)
        cache = TranslationCache()

        def boom(query, spec_):
            raise RuntimeError("translation exploded")

        with mock.patch("repro.core.tdqm.tdqm_translate", side_effect=boom):
            with pytest.raises(RuntimeError):
                cache.tdqm(queries[0], spec)
        assert len(cache) == 0
        # The failure was not memoized: the next call translates for real.
        ok = cache.tdqm(queries[0], spec)
        assert ok.mapping == tdqm_translate(queries[0], spec).mapping


class TestTracerHandoff:
    """No span loss and exact counters across a worker pool (obs.bind)."""

    def test_bound_workers_record_into_parent_trace(self):
        n_jobs = 12
        with obs.tracing("t") as tracer:
            with obs.span("fanout"):
                handoffs = [obs.bind("job", index=i) for i in range(n_jobs)]

                def work(entry):
                    i, handoff = entry
                    with handoff:
                        with obs.span("inner"):
                            obs.count("work.done")
                            obs.count("work.units", i)
                        obs.gauge_max("work.high", i)

                with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
                    list(pool.map(work, enumerate(handoffs)))

        fanout = tracer.root.find("fanout")
        assert fanout is not None
        jobs = [s for s in fanout.children if s.name == "job"]
        assert len(jobs) == n_jobs  # zero spans lost
        # Deterministic placement: bind-call order, not scheduler order.
        assert [s.attrs["index"] for s in jobs] == list(range(n_jobs))
        for span in jobs:
            assert [c.name for c in span.children] == ["inner"]
            assert span.elapsed >= 0.0
        assert tracer.counters["work.done"] == n_jobs
        assert tracer.counters["work.units"] == sum(range(n_jobs))
        assert tracer.gauges["work.high"] == n_jobs - 1

    def test_bind_without_tracer_is_noop(self):
        handoff = obs.bind("job")
        with handoff:  # must not raise or install anything
            assert obs.current_tracer() is None
            obs.count("dropped")
        assert obs.current_tracer() is None

    def test_concurrent_counts_are_exact(self):
        per_thread = 2000
        with obs.tracing("t") as tracer:
            handoffs = [obs.bind("w") for _ in range(N_THREADS)]

            def bump(handoff):
                with handoff:
                    for _ in range(per_thread):
                        obs.count("n")

            with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
                list(pool.map(bump, handoffs))
        assert tracer.counters["n"] == N_THREADS * per_thread  # no lost updates


class TestResilientFanOutTracing:
    """The fan-out pool no longer drops worker spans/counters."""

    def test_fanout_records_every_source_call(self):
        config = ResilienceConfig(
            retry=RetryPolicy(retries=0, jitter=0.0), max_workers=8
        )
        mediator = synthetic_federation(resilience=config)
        query = parse_query("[v0.a0 = 2] and [v1.a1 = 3] and [v2.a2 = 4]")
        with obs.tracing("t") as tracer:
            answer = mediator.answer_mediated(query)
        assert answer.complete
        assert tracer.counters["resilience.calls"] == 3
        fanout = tracer.root.find("mediator.fanout")
        assert fanout is not None
        calls = [s for s in fanout.children if s.name == "mediator.call"]
        assert [s.attrs["source"] for s in calls] == ["S0", "S1", "S2"]
        # Worker latency gauges survived the pool boundary.
        assert any(name.startswith("resilience.S") for name in tracer.gauges)
